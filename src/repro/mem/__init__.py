"""Memory-system substrate: caches, TLB, stride prefetcher, DRAM timing."""

from repro.mem.cache import Cache, CacheStats
from repro.mem.dram import DRAM, DRAMTimings
from repro.mem.tlb import TLB
from repro.mem.prefetcher import StridePrefetcher
from repro.mem.hierarchy import MemoryHierarchy

__all__ = [
    "Cache",
    "CacheStats",
    "DRAM",
    "DRAMTimings",
    "TLB",
    "StridePrefetcher",
    "MemoryHierarchy",
]
