"""Fully-associative data TLB with LRU replacement."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """Models the paper's 48-entry fully-associative L1 data TLB.

    ``translate`` returns the *extra* latency charged on top of the cache
    access: zero on a hit, ``miss_penalty`` cycles for a page walk on a
    miss.  Page faults are modelled separately by the fault model in the
    functional executor.
    """

    def __init__(self, entries: int = 48, page_bits: int = 12, miss_penalty: int = 30) -> None:
        self.entries = entries
        self.page_bits = page_bits
        self.miss_penalty = miss_penalty
        self._lru: OrderedDict[int, None] = OrderedDict()
        self.stats = TLBStats()

    def translate(self, addr: int) -> int:
        page = addr >> self.page_bits
        self.stats.accesses += 1
        if page in self._lru:
            self._lru.move_to_end(page)
            return 0
        self.stats.misses += 1
        self._lru[page] = None
        if len(self._lru) > self.entries:
            self._lru.popitem(last=False)
        return self.miss_penalty

    def flush(self) -> None:
        self._lru.clear()
