"""DDR3-style DRAM timing model (open-page, per-bank row buffers).

Models the latency-relevant behaviour of the paper's memory configuration
(DDR3-1600, 2 ranks/channel, 8 banks/rank, 8 KB rows, tCAS=tRCD=tRP=13.75 ns):
row-buffer hits pay tCAS, row conflicts pay tRP+tRCD+tCAS.  Queueing
contention is not modelled (single-core study).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMTimings:
    """DRAM timing parameters converted to core cycles."""

    core_ghz: float = 2.0
    tcas_ns: float = 13.75
    trcd_ns: float = 13.75
    trp_ns: float = 13.75
    bus_ns: float = 5.0  # channel/bus transfer + controller overhead
    ranks: int = 2
    banks_per_rank: int = 8
    row_bytes: int = 8192

    def cycles(self, ns: float) -> int:
        return max(1, round(ns * self.core_ghz))

    @property
    def row_hit_latency(self) -> int:
        return self.cycles(self.tcas_ns + self.bus_ns)

    @property
    def row_miss_latency(self) -> int:
        return self.cycles(self.trp_ns + self.trcd_ns + self.tcas_ns + self.bus_ns)


@dataclass
class DRAMStats:
    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0


class DRAM:
    """Open-page DRAM with one row buffer per (rank, bank)."""

    def __init__(self, timings: DRAMTimings | None = None) -> None:
        self.timings = timings or DRAMTimings()
        total_banks = self.timings.ranks * self.timings.banks_per_rank
        self._open_rows: list[int | None] = [None] * total_banks
        self.stats = DRAMStats()

    def _bank_row(self, addr: int) -> tuple[int, int]:
        t = self.timings
        row = addr // t.row_bytes
        total_banks = t.ranks * t.banks_per_rank
        return row % total_banks, row // total_banks

    def access(self, addr: int, is_write: bool, cycle: int) -> int:
        bank, row = self._bank_row(addr)
        self.stats.accesses += 1
        if self._open_rows[bank] == row:
            self.stats.row_hits += 1
            return self.timings.row_hit_latency
        self.stats.row_misses += 1
        self._open_rows[bank] = row
        return self.timings.row_miss_latency
