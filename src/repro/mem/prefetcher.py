"""PC-indexed stride prefetcher (degree 1), as in the paper's Table I."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _Entry:
    last_addr: int = 0
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Classic reference-prediction-table stride prefetcher.

    On every demand load the table entry for the load's PC is trained with
    the observed stride; once the same stride is seen twice in a row the
    prefetcher issues a degree-1 prefetch of ``addr + stride`` into the
    target cache.
    """

    def __init__(self, table_size: int = 256, degree: int = 1, threshold: int = 2) -> None:
        if table_size & (table_size - 1):
            raise ValueError("prefetcher table size must be a power of two")
        self.mask = table_size - 1
        self.degree = degree
        self.threshold = threshold
        self.table: dict[int, _Entry] = {}
        self.issued = 0

    def observe(self, pc: int, addr: int, cache, cycle: int) -> None:
        index = pc & self.mask
        entry = self.table.get(index)
        if entry is None:
            self.table[index] = _Entry(last_addr=addr)
            return
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.confidence = 0
            entry.stride = stride
        entry.last_addr = addr
        if entry.confidence >= self.threshold and entry.stride != 0:
            for i in range(1, self.degree + 1):
                cache.prefetch(addr + i * entry.stride, cycle)
                self.issued += 1
