"""The full memory hierarchy of Table I, wired together.

L1-I (48 KB 3-way, 1 cycle) and L1-D (32 KB 2-way, 1 cycle) both back into
a unified L2 (1 MB 16-way, 12 cycles) over DDR3-1600 DRAM.  Data accesses
go through the 48-entry fully-associative TLB, and demand loads train a
degree-1 stride prefetcher that fills into L1-D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mem.cache import Cache
from repro.mem.dram import DRAM, DRAMTimings
from repro.mem.prefetcher import StridePrefetcher
from repro.mem.tlb import TLB


@dataclass
class HierarchyConfig:
    line_bytes: int = 64
    l1i_size: int = 48 * 1024
    l1i_assoc: int = 3
    l1i_latency: int = 1
    l1d_size: int = 32 * 1024
    l1d_assoc: int = 2
    l1d_latency: int = 1
    l2_size: int = 1024 * 1024
    l2_assoc: int = 16
    l2_latency: int = 12
    tlb_entries: int = 48
    tlb_miss_penalty: int = 30
    prefetcher_degree: int = 1
    enable_prefetcher: bool = True


class MemoryHierarchy:
    """Single-core cache hierarchy + TLB + prefetcher + DRAM."""

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        self.config = config or HierarchyConfig()
        cfg = self.config
        self.dram = DRAM(DRAMTimings())
        self.l2 = Cache("L2", cfg.l2_size, cfg.l2_assoc, cfg.line_bytes,
                        cfg.l2_latency, next_level=self.dram)
        self.l1d = Cache("L1D", cfg.l1d_size, cfg.l1d_assoc, cfg.line_bytes,
                         cfg.l1d_latency, next_level=self.l2)
        self.l1i = Cache("L1I", cfg.l1i_size, cfg.l1i_assoc, cfg.line_bytes,
                         cfg.l1i_latency, next_level=self.l2)
        self.tlb = TLB(cfg.tlb_entries, miss_penalty=cfg.tlb_miss_penalty)
        self.prefetcher = StridePrefetcher(degree=cfg.prefetcher_degree) \
            if cfg.enable_prefetcher else None

    def data_access(self, pc: int, addr: int, is_write: bool, cycle: int) -> int:
        """Latency of a demand data access (TLB + caches)."""
        latency = self.tlb.translate(addr)
        latency += self.l1d.access(addr, is_write, cycle)
        if self.prefetcher is not None and not is_write:
            self.prefetcher.observe(pc, addr, self.l1d, cycle)
        return latency

    def inst_fetch(self, addr: int, is_write: bool, cycle: int) -> int:
        """Latency of an instruction fetch (L1-I path).

        Signature matches ``Cache.access`` so the fetch unit can use either
        a raw cache or the hierarchy.
        """
        return self.l1i.access(addr, False, cycle)

    # Allow the FetchUnit to treat the hierarchy as its "icache".
    access = inst_fetch
