"""Set-associative write-back cache with LRU replacement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    prefetches: int = 0
    prefetch_hits: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class _Set:
    """One cache set: list of (tag, dirty) kept in LRU order (MRU last)."""

    __slots__ = ("tags", "dirty")

    def __init__(self) -> None:
        self.tags: list[int] = []
        self.dirty: list[bool] = []

    def find(self, tag: int) -> int:
        try:
            return self.tags.index(tag)
        except ValueError:
            return -1

    def touch(self, way: int) -> None:
        tag = self.tags.pop(way)
        dirty = self.dirty.pop(way)
        self.tags.append(tag)
        self.dirty.append(dirty)

    def insert(self, tag: int, dirty: bool, assoc: int) -> Optional[tuple[int, bool]]:
        """Insert; returns the evicted (tag, dirty) if any."""
        victim = None
        if len(self.tags) >= assoc:
            victim = (self.tags.pop(0), self.dirty.pop(0))
        self.tags.append(tag)
        self.dirty.append(dirty)
        return victim

    def remove(self, tag: int) -> Optional[bool]:
        way = self.find(tag)
        if way < 0:
            return None
        self.tags.pop(way)
        return self.dirty.pop(way)


class Cache:
    """A cache level.

    ``access`` returns the total latency (cycles) of the access including
    lower levels on a miss.  ``next_level`` is either another Cache or a
    DRAM object; both expose the same ``access(addr, is_write, cycle)``
    signature.  Writes are write-back/write-allocate; evicted dirty lines
    charge a writeback at the next level (latency not added to the critical
    path, as with a write buffer).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_bytes: int,
        hit_latency: int,
        next_level=None,
    ) -> None:
        if size_bytes % (assoc * line_bytes):
            raise ValueError(f"{name}: size not divisible by assoc*line")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.next_level = next_level
        self.num_sets = size_bytes // (assoc * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self._sets = [_Set() for _ in range(self.num_sets)]
        self.stats = CacheStats()
        #: lines brought in by the prefetcher and not yet demanded
        self._prefetched: set[int] = set()

    # ------------------------------------------------------------------ layout
    def _index_tag(self, addr: int) -> tuple[int, int]:
        block = addr // self.line_bytes
        return block % self.num_sets, block // self.num_sets

    def _block(self, addr: int) -> int:
        return addr // self.line_bytes

    # ------------------------------------------------------------------ access
    def access(self, addr: int, is_write: bool, cycle: int, _prefetch: bool = False) -> int:
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        way = cache_set.find(tag)

        if not _prefetch:
            self.stats.accesses += 1

        if way >= 0:
            if not _prefetch:
                self.stats.hits += 1
                block = self._block(addr)
                if block in self._prefetched:
                    self._prefetched.discard(block)
                    self.stats.prefetch_hits += 1
            cache_set.touch(way)
            if is_write:
                cache_set.dirty[-1] = True
            return self.hit_latency

        # miss: fill from below
        if not _prefetch:
            self.stats.misses += 1
        lower_latency = 0
        if self.next_level is not None:
            lower_latency = self.next_level.access(addr, False, cycle)
        victim = cache_set.insert(tag, is_write, self.assoc)
        if victim is not None and victim[1]:
            self.stats.writebacks += 1
            if self.next_level is not None:
                self.next_level.access(self._victim_addr(index, victim[0]), True, cycle)
        if _prefetch:
            self._prefetched.add(self._block(addr))
        return self.hit_latency + lower_latency

    def prefetch(self, addr: int, cycle: int) -> None:
        """Bring a line in without charging a demand access."""
        index, tag = self._index_tag(addr)
        if self._sets[index].find(tag) >= 0:
            return
        self.stats.prefetches += 1
        self.access(addr, False, cycle, _prefetch=True)

    def contains(self, addr: int) -> bool:
        index, tag = self._index_tag(addr)
        return self._sets[index].find(tag) >= 0

    def _victim_addr(self, index: int, tag: int) -> int:
        return (tag * self.num_sets + index) * self.line_bytes

    def reset_stats(self) -> None:
        self.stats = CacheStats()
