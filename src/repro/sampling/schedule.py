"""Sampling schedules: (period, window, warmup) in instructions.

A schedule divides the dynamic instruction stream into periods of
``period`` instructions.  Each period is fast-forwarded functionally
except for a detailed tail of ``warmup + window`` instructions: the
warmup portion runs through the full out-of-order pipeline but is
discarded (it fills the ROB/IQ/caches and settles the rename state), the
window portion is measured.  A seeded random *phase offset* shifts the
whole pattern so windows do not systematically align with the workload's
loop structure (the classic systematic-sampling failure mode).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: documented starting point for ``--sampling``/``REPRO_SAMPLING``:
#: 17.5% detailed, ~20 windows at the full-scale instruction counts
DEFAULT_SPEC = "2000:250:100"


@dataclass(frozen=True)
class SamplingSchedule:
    """One interval-sampling schedule with a seeded phase offset."""

    period: int
    window: int
    warmup: int = 0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("sampling window must be >= 1 instruction")
        if self.warmup < 0:
            raise ValueError("sampling warmup must be >= 0")
        if self.period <= self.window + self.warmup:
            raise ValueError(
                f"sampling period ({self.period}) must exceed "
                f"window + warmup ({self.window + self.warmup}); "
                f"otherwise nothing is fast-forwarded — use exact mode")

    @property
    def detail(self) -> int:
        """Detailed instructions per period (warmup + window)."""
        return self.window + self.warmup

    @property
    def fast_forward(self) -> int:
        """Fast-forwarded instructions per period."""
        return self.period - self.detail

    @property
    def spec(self) -> str:
        """The canonical ``PERIOD:WINDOW:WARMUP`` spec string."""
        return f"{self.period}:{self.window}:{self.warmup}"

    def window_offset(self, k: int) -> int:
        """Deterministic pseudo-random offset of window ``k`` within its
        period, in ``[0, fast_forward]``.

        Each period gets an independently drawn offset (stratified random
        sampling) so detailed windows cannot systematically align with
        the workload's loop structure — the classic aliasing failure of
        fixed-stride sampling.  A pure function of (schedule, seed, k):
        the same inputs always produce the identical sampling pattern,
        which the determinism tests (jobs=1 vs jobs=N vs cached) rely on.
        """
        rng = random.Random(
            (self.seed * 0x9E3779B1) ^ (k * 0x85EBCA77)
            ^ (self.period << 20) ^ (self.window << 10) ^ self.warmup
        )
        return rng.randrange(self.fast_forward + 1)

    def phase_offset(self) -> int:
        """Offset of the first detailed window (= ``window_offset(0)``)."""
        return self.window_offset(0)


def parse_schedule(spec: str, seed: int = 1) -> SamplingSchedule:
    """Parse a ``PERIOD:WINDOW:WARMUP`` spec (e.g. ``2000:250:100``)."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"sampling spec {spec!r} must be PERIOD:WINDOW:WARMUP "
            f"(e.g. {DEFAULT_SPEC})")
    try:
        period, window, warmup = (int(part) for part in parts)
    except ValueError:
        raise ValueError(
            f"sampling spec {spec!r}: all three fields must be integers")
    return SamplingSchedule(period=period, window=window, warmup=warmup,
                            seed=seed)


def as_schedule(sampling, seed: int = 1) -> SamplingSchedule:
    """Coerce a spec string or schedule to a :class:`SamplingSchedule`."""
    if isinstance(sampling, SamplingSchedule):
        return sampling
    return parse_schedule(sampling, seed=seed)
