"""Interval-sampled simulation: fast-forward + detailed windows.

The engine alternates between two execution modes over one dynamic
instruction stream:

* **functional fast-forward** — the :class:`~repro.sampling.warmer.FunctionalWarmer`
  consumes instructions at full speed, training the branch predictor and
  the PC-indexed rename predictors so that long-lived microarchitectural
  state survives the skipped regions;
* **detailed windows** — a fresh :class:`~repro.pipeline.processor.Processor`
  (sharing the warmed :class:`~repro.frontend.branch_predictor.BranchUnit`
  and importing the warmed predictor tables) runs ``warmup`` instructions
  whose measurements are discarded, then ``window`` instructions whose
  counter deltas become one sample.

Per-window counter deltas are summed and scaled by
``total_insts / sampled_insts`` into a whole-stream estimate; per-window
metric samples drive the standard-error / confidence-interval fields of
:class:`~repro.pipeline.stats.SampledStats`.

Window processors always run with ``verify_values=False`` (a window's
pipeline renames from scratch, so the first consumers of pre-window
values would read stale physical-register contents) and cannot attach
the commit-time oracle for the same reason — ``--exact`` exists for
verification runs.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Union

from repro.frontend.branch_predictor import BranchUnit
from repro.isa.dyninst import DynInst
from repro.isa.executor import FunctionalExecutor
from repro.isa.program import Program
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import Processor
from repro.pipeline.stats import (SampledStats, SimStats, add_counters,
                                  delta_counters, scale_counters)
from repro.sampling.schedule import SamplingSchedule
from repro.sampling.warmer import FunctionalWarmer


class _SampledSource:
    """Single-pass counting wrapper around the instruction stream.

    Serves both consumers — the warmer (via :meth:`take`) and window
    processors (via the :class:`~repro.frontend.fetch.InstSource`
    protocol's ``next_inst``) — so ``consumed`` is the one authoritative
    stream position.  Windows overshoot their budget by whatever the
    dropped processor still held in flight (fetch queue + ROB); the
    absolute-position schedule in :func:`sampled_simulate` absorbs that
    drift instead of accumulating it.
    """

    __slots__ = ("_take", "limit", "consumed", "exhausted")

    def __init__(self, take_fn, limit: Optional[int] = None) -> None:
        self._take = take_fn
        self.limit = limit
        self.consumed = 0
        self.exhausted = False

    def take(self) -> Optional[DynInst]:
        if self.exhausted:
            return None
        if self.limit is not None and self.consumed >= self.limit:
            self.exhausted = True
            return None
        dyn = self._take()
        if dyn is None:
            self.exhausted = True
            return None
        self.consumed += 1
        return dyn

    # InstSource protocol (window processors fetch through the same counter)
    def next_inst(self) -> Optional[DynInst]:
        return self.take()


def _window_metrics(delta: dict) -> tuple[int, int, float, float, float]:
    """(committed, cycles, ipc, reuse_rate, alloc_saved_rate) of one window."""
    committed = delta.get("committed") or 0
    cycles = delta.get("cycles") or 0
    ipc = committed / cycles if cycles else 0.0
    rstats = delta.get("renamer_stats") or {}
    dest = rstats.get("dest_insts") or 0
    reuses = rstats.get("reuses") or 0
    reuse_rate = reuses / dest if dest else 0.0
    alloc_saved = reuses / committed if committed else 0.0
    return committed, cycles, ipc, reuse_rate, alloc_saved


def _shadow_occupancy(renamer) -> float:
    """Point sample: shadow cells holding a live reused version."""
    hist = renamer.live_version_histogram()
    return float(sum((v - 1) * n for v, n in hist.items() if v > 1))


#: instructions of full (cache + predictor) warming directly before each
#: detailed window; further out, fast-forward only trains the branch
#: predictor — older cache/def-use state would be overwritten anyway
DEFAULT_WARM_ZONE = 3000


def sampled_simulate(
    config: MachineConfig,
    workload: Union[Program, Iterable[DynInst]],
    schedule: SamplingSchedule,
    total_insts: Optional[int] = None,
    fault_model=None,
    program_budget: int = 10_000_000,
    pool=None,
    naive_loop: Optional[bool] = None,
    warm_zone: int = DEFAULT_WARM_ZONE,
) -> SampledStats:
    """Run one interval-sampled simulation; returns a :class:`SampledStats`.

    ``total_insts`` caps the stream and anchors the scaling ratio; when
    ``None`` the stream's own length (it must be finite) is used.
    Streams shorter than one period degrade gracefully to a single
    whole-stream detailed window (an exact measurement).
    """
    if config.verify_values:
        config = dataclasses.replace(config, verify_values=False)

    if isinstance(workload, Program):
        executor = FunctionalExecutor(workload, fault_model=fault_model,
                                      pool=pool)
        it = executor.run(program_budget)
        source = _SampledSource(lambda: next(it, None), limit=total_insts)
    elif hasattr(workload, "next_inst"):
        source = _SampledSource(workload.next_inst, limit=total_insts)
    else:
        it = iter(workload)
        source = _SampledSource(lambda: next(it, None), limit=total_insts)

    branch_unit = BranchUnit(kind=config.branch_predictor,
                             table_size=config.predictor_table,
                             btb_entries=config.btb_entries,
                             ras_depth=config.ras_depth)
    # one memory hierarchy for the whole run: the warmer touches it during
    # fast-forward, so windows start with realistic cache/TLB contents
    hierarchy = config.make_hierarchy()

    def window_processor() -> Processor:
        return Processor(config, source, fault_model=fault_model,
                         recycle=pool, naive_loop=naive_loop,
                         branch_unit=branch_unit, hierarchy=hierarchy)

    # --- degenerate schedule: stream shorter than one period -----------------
    if total_insts is not None and total_insts < schedule.period:
        proc = window_processor()
        stats = proc.run()
        payload = stats.to_dict()
        committed, cycles, ipc, reuse_rate, alloc_saved = \
            _window_metrics(payload)
        return SampledStats(
            est=stats,
            schedule=(schedule.period, schedule.window, schedule.warmup),
            schedule_seed=schedule.seed,
            phase_offset=0,
            windows=1,
            insts_total=committed,
            insts_sampled=committed,
            insts_warmup=0,
            insts_fast_forwarded=0,
            cycles_sampled=cycles,
            window_ipc=[ipc],
            window_reuse_rate=[reuse_rate],
            window_alloc_saved_rate=[alloc_saved],
            window_shadow_occupancy=[_shadow_occupancy(proc.renamer)],
        )

    warmer = FunctionalWarmer(config, branch_unit, hierarchy=hierarchy)
    phase = schedule.phase_offset()

    deltas: list[dict] = []
    window_ipc: list[float] = []
    window_reuse_rate: list[float] = []
    window_alloc_saved: list[float] = []
    window_shadow: list[float] = []
    insts_sampled = 0
    insts_warmup = 0
    cycles_sampled = 0

    k = 0
    while not source.exhausted:
        # stratified sampling: each period draws its own window offset
        next_detail = k * schedule.period + schedule.window_offset(k)
        k += 1
        gap = next_detail - source.consumed
        if gap > warm_zone:
            warmer.skim(source, gap - warm_zone)
            gap = next_detail - source.consumed
        if gap > 0:
            warmer.fast_forward(source, gap)
        if source.exhausted:
            break

        proc = window_processor()
        proc.renamer.import_predictor_state(warmer.export_predictor_state())
        if schedule.warmup:
            proc.run(max_insts=schedule.warmup)
            start = proc.stats.to_dict()
        else:
            start = None
        proc.run(max_insts=schedule.detail)
        end = proc.stats.to_dict()
        delta = delta_counters(end, start) if start is not None else end

        committed, cycles, ipc, reuse_rate, alloc_saved = \
            _window_metrics(delta)
        if committed > 0:
            deltas.append(delta)
            insts_sampled += committed
            cycles_sampled += cycles
            window_ipc.append(ipc)
            window_reuse_rate.append(reuse_rate)
            window_alloc_saved.append(alloc_saved)
            window_shadow.append(_shadow_occupancy(proc.renamer))
        if start is not None:
            insts_warmup += start.get("committed") or 0

        # the window's renamer trained its predictors exactly; carry that
        # state back into the warmer for the next fast-forward stretch
        warmer.import_predictor_state(proc.renamer.export_predictor_state())
        warmer.reset_live()

    total = source.consumed
    if deltas:
        summed = deltas[0]
        for delta in deltas[1:]:
            summed = add_counters(summed, delta)
        ratio = total / insts_sampled if insts_sampled else 1.0
        payload = scale_counters(summed, ratio)
        payload["committed"] = total
        est = SimStats.from_dict(payload)
    else:
        # stream ended inside the first fast-forward stretch: nothing
        # measured — an all-zero estimate (callers should size total_insts
        # to cover at least one period, or use exact mode)
        est = SimStats()

    return SampledStats(
        est=est,
        schedule=(schedule.period, schedule.window, schedule.warmup),
        schedule_seed=schedule.seed,
        phase_offset=phase,
        windows=len(deltas),
        insts_total=total,
        insts_sampled=insts_sampled,
        insts_warmup=insts_warmup,
        insts_fast_forwarded=total - insts_sampled - insts_warmup,
        cycles_sampled=cycles_sampled,
        window_ipc=window_ipc,
        window_reuse_rate=window_reuse_rate,
        window_alloc_saved_rate=window_alloc_saved,
        window_shadow_occupancy=window_shadow,
    )
