"""Interval-sampled simulation: fast-forward + detailed windows.

The engine alternates between two execution modes over one dynamic
instruction stream:

* **functional fast-forward** — the :class:`~repro.sampling.warmer.FunctionalWarmer`
  consumes instructions at full speed, training the branch predictor and
  the PC-indexed rename predictors so that long-lived microarchitectural
  state survives the skipped regions;
* **detailed windows** — a fresh :class:`~repro.pipeline.processor.Processor`
  (sharing the warmed :class:`~repro.frontend.branch_predictor.BranchUnit`
  and importing the warmed predictor tables) runs ``warmup`` instructions
  whose measurements are discarded, then ``window`` instructions whose
  counter deltas become one sample.

Per-window counter deltas are summed and scaled by
``total_insts / sampled_insts`` into a whole-stream estimate; per-window
metric samples drive the standard-error / confidence-interval fields of
:class:`~repro.pipeline.stats.SampledStats`.

Window processors always run with ``verify_values=False`` (a window's
pipeline renames from scratch, so the first consumers of pre-window
values would read stale physical-register contents) and cannot attach
the commit-time oracle for the same reason — ``--exact`` exists for
verification runs.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Union

from repro.frontend.branch_predictor import BranchUnit
from repro.isa.dyninst import DynInst
from repro.isa.executor import FunctionalExecutor
from repro.isa.program import Program
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import Processor
from repro.pipeline.stats import (SampledStats, SimStats, add_counters,
                                  delta_counters, scale_counters)
from repro.sampling.schedule import SamplingSchedule
from repro.sampling.warmer import FunctionalWarmer


class _SampledSource:
    """Single-pass counting wrapper around the instruction stream.

    Serves both consumers — the warmer (via :meth:`take`) and window
    processors (via the :class:`~repro.frontend.fetch.InstSource`
    protocol's ``next_inst``) — so ``consumed`` is the one authoritative
    stream position.  Windows overshoot their budget by whatever the
    dropped processor still held in flight (fetch queue + ROB); the
    absolute-position schedule in :func:`sampled_simulate` absorbs that
    drift instead of accumulating it.
    """

    __slots__ = ("_take", "limit", "consumed", "exhausted")

    def __init__(self, take_fn, limit: Optional[int] = None) -> None:
        self._take = take_fn
        self.limit = limit
        self.consumed = 0
        self.exhausted = False

    def take(self) -> Optional[DynInst]:
        if self.exhausted:
            return None
        if self.limit is not None and self.consumed >= self.limit:
            self.exhausted = True
            return None
        dyn = self._take()
        if dyn is None:
            self.exhausted = True
            return None
        self.consumed += 1
        return dyn

    def take_batch(self, n: int) -> list:
        """Up to ``n`` instructions in one call.

        The fast-forward paths consume the stream through this instead of
        paying a Python-level :meth:`take` call per skimmed instruction.
        Exhaustion semantics mirror a ``take()`` loop exactly: the flag is
        set only when the request reaches *past* the limit or the stream
        end, never when it merely lands on it.
        """
        if self.exhausted or n <= 0:
            return []
        cap = n
        if self.limit is not None:
            remaining = self.limit - self.consumed
            if remaining <= 0:
                self.exhausted = True
                return []
            if remaining < cap:
                cap = remaining
        take = self._take
        out: list = []
        append = out.append
        for _ in range(cap):
            dyn = take()
            if dyn is None:
                self.exhausted = True
                break
            append(dyn)
        self.consumed += len(out)
        if cap < n:
            self.exhausted = True
        return out

    # InstSource protocol (window processors fetch through the same counter)
    def next_inst(self) -> Optional[DynInst]:
        return self.take()


class _ColumnarSource:
    """Zero-materialization counting source over parsed trace columns.

    Fast-forward consumes *index ranges* (:meth:`advance`) that the
    warmer scans straight from the packed columns — skimmed instructions
    never become Python objects at all.  Only detailed windows (and
    their in-flight overshoot) materialize :class:`DynInst` objects,
    chunk-wise, via :meth:`~repro.workloads.trace_codec.TraceColumns.
    materialize_range`.  Exhaustion semantics mirror
    :class:`_SampledSource` exactly: the flag is set when a request
    reaches *past* the stream end or the limit, never when it merely
    lands on it — the engine's loop structure (and therefore the
    resulting :class:`SampledStats`) is bit-identical either way.
    """

    __slots__ = ("cols", "limit", "consumed", "exhausted", "_buf",
                 "_buf_base")

    #: instructions materialized per window-side buffer refill; one
    #: window (warmup + detail + in-flight overshoot) typically fits
    CHUNK = 512

    def __init__(self, cols, limit: Optional[int] = None) -> None:
        self.cols = cols
        # a limit beyond the stream end and the stream end itself exhaust
        # identically (reading past either sets the flag), so fold them
        self.limit = cols.count if limit is None else min(limit, cols.count)
        self.consumed = 0
        self.exhausted = False
        self._buf: list = []
        self._buf_base = 0

    def advance(self, count: int) -> tuple[int, int]:
        """Consume ``count`` stream positions for warming; returns the
        ``(lo, hi)`` index range actually consumed."""
        lo = self.consumed
        if self.exhausted or count <= 0:
            return lo, lo
        avail = self.limit - lo
        n = count if count <= avail else avail
        hi = lo + n
        self.consumed = hi
        if count > avail:
            self.exhausted = True
        return lo, hi

    def take(self) -> Optional[DynInst]:
        if self.exhausted:
            return None
        consumed = self.consumed
        if consumed >= self.limit:
            self.exhausted = True
            return None
        i = consumed - self._buf_base
        buf = self._buf
        if 0 <= i < len(buf):
            dyn = buf[i]
        else:
            self._buf_base = consumed
            self._buf = buf = self.cols.materialize_range(
                consumed, min(consumed + self.CHUNK, self.limit))
            dyn = buf[0]
        self.consumed = consumed + 1
        return dyn

    def take_batch(self, n: int) -> list:
        if self.exhausted or n <= 0:
            return []
        lo = self.consumed
        avail = self.limit - lo
        if avail <= 0:
            self.exhausted = True
            return []
        cap = n if n <= avail else avail
        out = self.cols.materialize_range(lo, lo + cap)
        self.consumed = lo + cap
        if cap < n:
            self.exhausted = True
        return out

    # InstSource protocol (window processors fetch through the same counter)
    next_inst = take


def _trace_columns(workload):
    """Parsed :class:`TraceColumns` for workloads that carry them.

    Accepts the columns object itself or any lazy handle with a
    ``columns()`` accessor (:class:`~repro.harness.cache.TraceStream`);
    returns ``None`` for everything else — those run the per-inst path.
    """
    if hasattr(workload, "materialize_range"):
        return workload
    columns = getattr(workload, "columns", None)
    if callable(columns):
        cols = columns()
        if hasattr(cols, "materialize_range"):
            return cols
    return None


def _window_metrics(delta: dict) -> tuple[int, int, float, float, float]:
    """(committed, cycles, ipc, reuse_rate, alloc_saved_rate) of one window."""
    committed = delta.get("committed") or 0
    cycles = delta.get("cycles") or 0
    ipc = committed / cycles if cycles else 0.0
    rstats = delta.get("renamer_stats") or {}
    dest = rstats.get("dest_insts") or 0
    reuses = rstats.get("reuses") or 0
    reuse_rate = reuses / dest if dest else 0.0
    alloc_saved = reuses / committed if committed else 0.0
    return committed, cycles, ipc, reuse_rate, alloc_saved


def _shadow_occupancy(renamer) -> float:
    """Point sample: shadow cells holding a live reused version."""
    hist = renamer.live_version_histogram()
    return float(sum((v - 1) * n for v, n in hist.items() if v > 1))


#: instructions of full (cache + predictor) warming directly before each
#: detailed window; further out, fast-forward only trains the branch
#: predictor — older cache/def-use state would be overwritten anyway
DEFAULT_WARM_ZONE = 3000


def sampled_simulate(
    config: MachineConfig,
    workload: Union[Program, Iterable[DynInst]],
    schedule: SamplingSchedule,
    total_insts: Optional[int] = None,
    fault_model=None,
    program_budget: int = 10_000_000,
    pool=None,
    naive_loop: Optional[bool] = None,
    warm_zone: int = DEFAULT_WARM_ZONE,
) -> SampledStats:
    """Run one interval-sampled simulation; returns a :class:`SampledStats`.

    ``total_insts`` caps the stream and anchors the scaling ratio; when
    ``None`` the stream's own length (it must be finite) is used.
    Streams shorter than one period degrade gracefully to a single
    whole-stream detailed window (an exact measurement).
    """
    if config.verify_values:
        config = dataclasses.replace(config, verify_values=False)

    if isinstance(workload, Program):
        executor = FunctionalExecutor(workload, fault_model=fault_model,
                                      pool=pool)
        it = executor.run(program_budget)
        source = _SampledSource(lambda: next(it, None), limit=total_insts)
    elif hasattr(workload, "next_inst"):
        source = _SampledSource(workload.next_inst, limit=total_insts)
    else:
        cols = _trace_columns(workload)
        if cols is not None:
            source = _ColumnarSource(cols, limit=total_insts)
        else:
            it = iter(workload)
            source = _SampledSource(lambda: next(it, None),
                                    limit=total_insts)

    branch_unit = BranchUnit(kind=config.branch_predictor,
                             table_size=config.predictor_table,
                             btb_entries=config.btb_entries,
                             ras_depth=config.ras_depth)
    # one memory hierarchy for the whole run: the warmer touches it during
    # fast-forward, so windows start with realistic cache/TLB contents
    hierarchy = config.make_hierarchy()

    def window_processor() -> Processor:
        return Processor(config, source, fault_model=fault_model,
                         recycle=pool, naive_loop=naive_loop,
                         branch_unit=branch_unit, hierarchy=hierarchy)

    # --- degenerate schedule: stream shorter than one period -----------------
    if total_insts is not None and total_insts < schedule.period:
        proc = window_processor()
        stats = proc.run()
        payload = stats.to_dict()
        committed, cycles, ipc, reuse_rate, alloc_saved = \
            _window_metrics(payload)
        return SampledStats(
            est=stats,
            schedule=(schedule.period, schedule.window, schedule.warmup),
            schedule_seed=schedule.seed,
            phase_offset=0,
            windows=1,
            insts_total=committed,
            insts_sampled=committed,
            insts_warmup=0,
            insts_fast_forwarded=0,
            cycles_sampled=cycles,
            window_ipc=[ipc],
            window_reuse_rate=[reuse_rate],
            window_alloc_saved_rate=[alloc_saved],
            window_shadow_occupancy=[_shadow_occupancy(proc.renamer)],
        )

    warmer = FunctionalWarmer(config, branch_unit, hierarchy=hierarchy)
    phase = schedule.phase_offset()

    deltas: list[dict] = []
    window_ipc: list[float] = []
    window_reuse_rate: list[float] = []
    window_alloc_saved: list[float] = []
    window_shadow: list[float] = []
    insts_sampled = 0
    insts_warmup = 0
    cycles_sampled = 0

    k = 0
    while not source.exhausted:
        # stratified sampling: each period draws its own window offset
        next_detail = k * schedule.period + schedule.window_offset(k)
        k += 1
        gap = next_detail - source.consumed
        if gap > warm_zone:
            warmer.skim(source, gap - warm_zone)
            gap = next_detail - source.consumed
        if gap > 0:
            warmer.fast_forward(source, gap)
        if source.exhausted:
            break

        proc = window_processor()
        proc.renamer.import_predictor_state(warmer.export_predictor_state())
        if schedule.warmup:
            proc.run(max_insts=schedule.warmup)
            start = proc.stats.to_dict()
        else:
            start = None
        proc.run(max_insts=schedule.detail)
        end = proc.stats.to_dict()
        delta = delta_counters(end, start) if start is not None else end

        committed, cycles, ipc, reuse_rate, alloc_saved = \
            _window_metrics(delta)
        if committed > 0:
            deltas.append(delta)
            insts_sampled += committed
            cycles_sampled += cycles
            window_ipc.append(ipc)
            window_reuse_rate.append(reuse_rate)
            window_alloc_saved.append(alloc_saved)
            window_shadow.append(_shadow_occupancy(proc.renamer))
        if start is not None:
            insts_warmup += start.get("committed") or 0

        # the window's renamer trained its predictors exactly; carry that
        # state back into the warmer for the next fast-forward stretch
        warmer.import_predictor_state(proc.renamer.export_predictor_state())
        warmer.reset_live()

    total = source.consumed
    if deltas:
        summed = deltas[0]
        for delta in deltas[1:]:
            summed = add_counters(summed, delta)
        ratio = total / insts_sampled if insts_sampled else 1.0
        payload = scale_counters(summed, ratio)
        payload["committed"] = total
        est = SimStats.from_dict(payload)
    else:
        # stream ended inside the first fast-forward stretch: nothing
        # measured — an all-zero estimate (callers should size total_insts
        # to cover at least one period, or use exact mode)
        est = SimStats()

    return SampledStats(
        est=est,
        schedule=(schedule.period, schedule.window, schedule.warmup),
        schedule_seed=schedule.seed,
        phase_offset=phase,
        windows=len(deltas),
        insts_total=total,
        insts_sampled=insts_sampled,
        insts_warmup=insts_warmup,
        insts_fast_forwarded=total - insts_sampled - insts_warmup,
        cycles_sampled=cycles_sampled,
        window_ipc=window_ipc,
        window_reuse_rate=window_reuse_rate,
        window_alloc_saved_rate=window_alloc_saved,
        window_shadow_occupancy=window_shadow,
    )
