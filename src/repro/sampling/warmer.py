"""Functional fast-forward with microarchitectural predictor warming.

The fast-forward mode of the sampling engine consumes the dynamic
instruction stream at full speed — no renaming, no scheduling, no memory
hierarchy — while still training the predictors whose state must carry
across measurement windows:

* the **branch predictor** (shared :class:`~repro.frontend.branch_predictor.BranchUnit`
  object, also used by the detailed windows) observes every branch;
* the **register-type predictor** and **single-use predictor** are
  trained against an architectural def-use model of the sharing scheme:
  per logical register the warmer tracks the live value's consumer count,
  first-consumer PC and the reuse chain of its backing register, and
  replays the paper's training rules (release decrement, extra-use reset,
  shadow-starvation increment, single-use confirm/deny) without
  simulating physical registers.

The warmed tables are handed to each detailed window's renamer through
:meth:`~repro.core.renamer.BaseRenamer.import_predictor_state`, and the
window's (exactly trained) tables are read back afterwards, so
fast-forward only ever has to *bridge* the gaps between windows.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional

from repro.frontend.branch_predictor import BranchUnit
from repro.isa.dyninst import DynInst
from repro.pipeline.config import MachineConfig
from repro.workloads.trace_codec import F_TAKEN, OP_INFO_TABLE

#: per-inst fallback batch size (one Python call per this many insts)
_BATCH = 1024


class _LiveValue:
    """One live logical-register value and its backing reuse chain."""

    __slots__ = ("alloc_index", "bank", "version", "uses", "first_pc",
                 "multi_use", "stale", "reused_by_pc")

    def __init__(self, alloc_index: int, bank: int, version: int = 0) -> None:
        self.alloc_index = alloc_index  # type-predictor entry that allocated
        self.bank = bank  # predicted bank == shadow cells available
        self.version = version  # reuses performed on the backing register
        self.uses = 0  # consumers of the current value
        self.first_pc: Optional[int] = None  # first consumer's PC
        self.multi_use = False  # a second consumer appeared
        self.stale = False  # register usurped by a predicted reuse
        self.reused_by_pc = 0  # the reusing consumer's PC (repair training)


class FunctionalWarmer:
    """Consumes instructions functionally while warming the predictors."""

    def __init__(self, config: MachineConfig, branch_unit: BranchUnit,
                 hierarchy=None) -> None:
        self.branch_unit = branch_unit
        self.hierarchy = hierarchy
        # i-fetch warming is line-grained (as in the detailed fetch unit):
        # consecutive pcs on one line touch the L1-I once
        self._line_bytes = (hierarchy.config.line_bytes
                            if hierarchy is not None else 64)
        self._last_fetch_line = -1
        self.track = config.scheme in ("sharing", "hinted")
        self.live: dict = {}  # RegRef -> _LiveValue
        self._first_use: list = []  # reused per-inst scratch (no allocs)
        if self.track:
            # probe renamer: guarantees the warmed tables match the window
            # renamers' predictor geometry exactly (banks, entries)
            probe = config.make_renamer()
            self.predictor = probe.predictor
            self.single_use = probe.single_use
            self.max_version = next(
                iter(probe.domains.values())).prt.max_version
        else:
            self.predictor = None
            self.single_use = None
            self.max_version = 0

    # ------------------------------------------------------------------ state handoff
    def export_predictor_state(self) -> dict:
        if not self.track:
            return {}
        return {
            "type_predictor": list(self.predictor.table),
            "single_use": list(self.single_use.table),
        }

    def import_predictor_state(self, state: dict) -> None:
        if not self.track or not state:
            return
        for name, target in (("type_predictor", self.predictor),
                             ("single_use", self.single_use)):
            table = state.get(name)
            if table is None:
                continue
            if len(table) != len(target.table):
                # a geometry mismatch silently discarding warmed state
                # would corrupt every downstream window measurement
                raise ValueError(
                    f"{name} geometry mismatch: imported table has "
                    f"{len(table)} entries, warmer expects "
                    f"{len(target.table)}")
            target.table = list(table)

    def reset_live(self) -> None:
        """Drop def-use records (a detailed window made them stale)."""
        self.live.clear()

    # ------------------------------------------------------------------ fast-forward
    def fast_forward(self, source, count: int) -> int:
        """Consume up to ``count`` instructions with full warming.

        Columnar sources (:class:`~repro.sampling.engine._ColumnarSource`)
        are warmed straight from the packed trace columns without ever
        materializing a :class:`DynInst`; everything else falls back to
        batched per-instruction consumption.
        """
        cols = getattr(source, "cols", None)
        if cols is not None:
            lo, hi = source.advance(count)
            if hi > lo:
                if self.track:
                    self._warm_columns_tracked(cols, lo, hi)
                else:
                    self._warm_columns(cols, lo, hi)
            return hi - lo
        if self.track:
            observe = self.observe
            consumed = 0
            take_batch = getattr(source, "take_batch", None)
            if take_batch is not None:
                while consumed < count:
                    batch = take_batch(min(count - consumed, _BATCH))
                    if not batch:
                        break
                    consumed += len(batch)
                    for dyn in batch:
                        observe(dyn)
                return consumed
            take = source.take
            for _ in range(count):
                dyn = take()
                if dyn is None:
                    break
                observe(dyn)
                consumed += 1
            return consumed
        # untracked schemes: branch + memory warming only, inlined
        branch_observe = self.branch_unit.observe
        hierarchy = self.hierarchy
        line_bytes = self._line_bytes
        consumed = 0
        take_batch = getattr(source, "take_batch", None)
        while consumed < count:
            if take_batch is not None:
                batch = take_batch(min(count - consumed, _BATCH))
            else:
                take = source.take
                batch = []
                for _ in range(count - consumed):
                    dyn = take()
                    if dyn is None:
                        break
                    batch.append(dyn)
            if not batch:
                break
            consumed += len(batch)
            for dyn in batch:
                info = dyn.info
                if info.is_branch:
                    branch_observe(dyn)
                if hierarchy is None:
                    continue
                line = dyn.pc // line_bytes
                if line != self._last_fetch_line:
                    self._last_fetch_line = line
                    hierarchy.inst_fetch(dyn.pc, False, 0)
                if dyn.mem_addr is not None \
                        and (info.is_load or info.is_store):
                    hierarchy.data_access(dyn.pc, dyn.mem_addr,
                                          info.is_store, 0)
        return consumed

    def skim(self, source, count: int) -> int:
        """Consume up to ``count`` instructions warming only the branch
        predictor (its global history must stay continuous and it is
        cheap to train).  Used far ahead of the next window, where
        cache/def-use warming would be overwritten before it is sampled
        — the engine switches to :meth:`fast_forward` for the warming
        zone directly preceding each window.

        Over a columnar source this is a branch-index scan: only the
        branch instructions of the skipped range are ever touched.
        """
        cols = getattr(source, "cols", None)
        if cols is not None:
            lo, hi = source.advance(count)
            consumed = hi - lo
            if consumed:
                self._skim_columns(cols, lo, hi)
        else:
            branch_unit = self.branch_unit
            consumed = 0
            take_batch = getattr(source, "take_batch", None)
            if take_batch is not None:
                observe = branch_unit.observe
                while consumed < count:
                    batch = take_batch(min(count - consumed, _BATCH))
                    if not batch:
                        break
                    consumed += len(batch)
                    for dyn in batch:
                        if dyn.info.is_branch:
                            observe(dyn)
            else:
                take = source.take
                for _ in range(count):
                    dyn = take()
                    if dyn is None:
                        break
                    if dyn.info.is_branch:
                        branch_unit.observe(dyn)
                    consumed += 1
        if consumed and self.track:
            # def-use records refer to values the skim skipped over
            self.live.clear()
        return consumed

    # ------------------------------------------------------------ columnar
    def _skim_columns(self, cols, lo: int, hi: int) -> None:
        """Branch-predictor training for ``[lo, hi)`` from the columns."""
        idx = cols.branch_indices()
        a = bisect_left(idx, lo)
        b = bisect_left(idx, hi)
        if a == b:
            return
        observe = self.branch_unit.observe_packed
        infos = OP_INFO_TABLE
        ops = cols.op_bytes
        flags = cols.flags
        pcs = cols.pcs
        next_pcs = cols.next_pcs
        for i in idx[a:b]:
            observe(infos[ops[i]], pcs[i], (flags[i] & F_TAKEN) != 0,
                    next_pcs[i])

    def _warm_columns(self, cols, lo: int, hi: int) -> None:
        """Untracked full warming for ``[lo, hi)`` from the columns.

        Walks a three-way merge of the branch / fetch-line-start / memory
        event indexes instead of every instruction.  Event order within
        one instruction is branch, then i-fetch line check, then data
        access — the same order as the per-inst path, which matters
        because the hierarchy's LRU, prefetcher and writeback state are
        order-dependent.
        """
        observe = self.branch_unit.observe_packed
        infos = OP_INFO_TABLE
        ops = cols.op_bytes
        flags = cols.flags
        pcs = cols.pcs
        next_pcs = cols.next_pcs
        bidx = cols.branch_indices()
        blist = bidx[bisect_left(bidx, lo):bisect_left(bidx, hi)]
        hierarchy = self.hierarchy
        if hierarchy is None:
            for i in blist:
                observe(infos[ops[i]], pcs[i], (flags[i] & F_TAKEN) != 0,
                        next_pcs[i])
            return
        line_bytes = self._line_bytes
        mem_addrs = cols.mem_addrs
        fidx = cols.fetch_line_starts(line_bytes)
        flist = fidx[bisect_left(fidx, lo):bisect_left(fidx, hi)]
        if not flist or flist[0] != lo:
            # the range may start mid-run: index lo still needs its line
            # check against the tracking carried in from before the range
            flist.insert(0, lo)
        midx = cols.mem_indices()
        mlist = midx[bisect_left(midx, lo):bisect_left(midx, hi)]
        inst_fetch = hierarchy.inst_fetch
        data_access = hierarchy.data_access
        last_line = self._last_fetch_line
        nb, nf, nm = len(blist), len(flist), len(mlist)
        ib = jf = km = 0
        while True:
            b = blist[ib] if ib < nb else hi
            f = flist[jf] if jf < nf else hi
            m = mlist[km] if km < nm else hi
            i = b if b <= f else f
            if m < i:
                i = m
            if i >= hi:
                break
            if b == i:
                observe(infos[ops[i]], pcs[i], (flags[i] & F_TAKEN) != 0,
                        next_pcs[i])
                ib += 1
            if f == i:
                # conditional for every event: a run start always differs
                # from the previous line, so this only ever filters the
                # synthetic event at lo — exactly the per-inst behaviour
                line = pcs[i] // line_bytes
                if line != last_line:
                    last_line = line
                    inst_fetch(pcs[i], False, 0)
                jf += 1
            if m == i:
                data_access(pcs[i], mem_addrs[i],
                            infos[ops[i]].is_store, 0)
                km += 1
        self._last_fetch_line = last_line

    def _warm_columns_tracked(self, cols, lo: int, hi: int) -> None:
        """Tracked (sharing/hinted) full warming for ``[lo, hi)``.

        Branch and hierarchy warming go through the same event merge as
        the untracked path; the def-use model — which needs every
        instruction's sources and destination — runs as a second,
        tracking-only pass.  The two passes mutate disjoint state
        (branch unit / caches / fetch-line tracking vs. live set /
        type and single-use predictor tables) and neither reads the
        other's, so the phase split leaves every table bit-identical to
        the per-inst interleaved order.
        """
        self._warm_columns(cols, lo, hi)
        track = self._track_fields
        pcs = cols.pcs
        srcss = cols.srcss
        dests = cols.dests
        for i in range(lo, hi):
            track(pcs[i], srcss[i], dests[i])

    def observe(self, dyn: DynInst) -> None:
        """Warm the predictors with one architecturally executed inst."""
        self.observe_fields(dyn.info, dyn.pc, dyn.taken, dyn.next_pc,
                            dyn.mem_addr, dyn.srcs, dyn.dest)

    def observe_fields(self, info, pc: int, taken, next_pc: int,
                       mem_addr, srcs, dest) -> None:
        """:meth:`observe` on unpacked fields — shared by the per-inst
        and columnar warming paths, so their predictor-training sequences
        are identical by construction."""
        if info.is_branch:
            self.branch_unit.observe_packed(info, pc, taken, next_pc)
        hierarchy = self.hierarchy
        if hierarchy is not None:
            line = pc // self._line_bytes
            if line != self._last_fetch_line:
                self._last_fetch_line = line
                hierarchy.inst_fetch(pc, False, 0)
            if mem_addr is not None and (info.is_load or info.is_store):
                hierarchy.data_access(pc, mem_addr, info.is_store, 0)
        if self.track:
            self._track_fields(pc, srcs, dest)

    def _track_fields(self, pc: int, srcs, dest) -> None:
        """One instruction's def-use tracking (type/single-use predictor
        training) — the tracking half of :meth:`observe_fields`, shared
        by the per-inst and columnar paths."""
        if dest is None and not srcs:
            return
        live = self.live
        predictor = self.predictor
        single_use = self.single_use

        # ---- sources: consumer counting + stale-value repairs -------------
        first_use = self._first_use  # (RegRef, _LiveValue) scratch
        first_use.clear()
        for j, src in enumerate(srcs):
            if j and (src == srcs[0]
                      or (j >= 2 and src in srcs[1:j])):
                continue  # same operand twice (e.g. ADD r1, r1, r1)
            rec = live.get(src)
            if rec is None:
                continue
            if rec.stale:
                # single-use misprediction: a predicted reuse took this
                # value's register, yet here is another consumer — repair
                # (train the reuser down, reset the allocating entry) and
                # model the evacuation as a fresh allocation
                single_use.train_bad(rec.reused_by_pc)
                predictor.on_extra_use(rec.alloc_index)
                bank, index = predictor.predict(pc)
                rec.alloc_index = index
                rec.bank = bank
                rec.version = 0
                rec.stale = False
                rec.multi_use = False
            rec.uses += 1
            if rec.uses == 1:
                rec.first_pc = pc
                first_use.append((src, rec))
            elif rec.uses == 2 and not rec.multi_use:
                rec.multi_use = True
                if rec.bank > 0:
                    # predicted single-use, observed multi-consumer: reset
                    predictor.on_extra_use(rec.alloc_index)

        # ---- destination: reuse-chain / allocation modelling ---------------
        if dest is None:
            return
        old = live.get(dest)
        reused = False

        # guaranteed reuse: the instruction redefines a register whose
        # value it just consumed first (src == dest)
        if old is not None and not old.stale \
                and any(ref == dest for ref, _rec in first_use):
            if old.version >= self.max_version:
                pass  # chain counter saturated: lost reuse, no training
            elif old.version >= old.bank:
                predictor.on_shadow_starvation(old.alloc_index)
            else:
                old.version += 1
                old.uses = 0
                old.first_pc = None
                old.multi_use = False
                reused = True

        # predicted reuse: first consumer of another value, predicted to be
        # the only consumer — the value's register hosts the new value
        if not reused:
            for ref, rec in first_use:
                if ref == dest or ref.cls is not dest.cls or rec.uses != 1:
                    continue
                if not single_use.predict(pc):
                    continue
                if rec.version >= self.max_version:
                    continue
                if rec.version >= rec.bank:
                    predictor.on_shadow_starvation(rec.alloc_index)
                    continue
                fresh = _LiveValue(rec.alloc_index, rec.bank, rec.version + 1)
                rec.stale = True
                rec.reused_by_pc = pc
                live[dest] = fresh
                reused = True
                break

        if not reused:
            bank, index = predictor.predict(pc)
            live[dest] = _LiveValue(index, bank)

        if old is not None and live[dest] is not old:
            self._close(old)

    def _close(self, rec: _LiveValue) -> None:
        """The value died (redefined): release-time predictor training."""
        if rec.stale:
            return  # register lives on under the reusing value's record
        if rec.uses == 1 and rec.first_pc is not None and not rec.multi_use:
            # confirmed single-use value that was not reused
            self.single_use.train_good(rec.first_pc, was_denied=True)
        self.predictor.on_release(
            alloc_index=rec.alloc_index,
            predicted_bank=rec.bank,
            actual_reuses=rec.version,
            extra_use=False,
            lost_reuse=0,
        )
