"""Functional fast-forward with microarchitectural predictor warming.

The fast-forward mode of the sampling engine consumes the dynamic
instruction stream at full speed — no renaming, no scheduling, no memory
hierarchy — while still training the predictors whose state must carry
across measurement windows:

* the **branch predictor** (shared :class:`~repro.frontend.branch_predictor.BranchUnit`
  object, also used by the detailed windows) observes every branch;
* the **register-type predictor** and **single-use predictor** are
  trained against an architectural def-use model of the sharing scheme:
  per logical register the warmer tracks the live value's consumer count,
  first-consumer PC and the reuse chain of its backing register, and
  replays the paper's training rules (release decrement, extra-use reset,
  shadow-starvation increment, single-use confirm/deny) without
  simulating physical registers.

The warmed tables are handed to each detailed window's renamer through
:meth:`~repro.core.renamer.BaseRenamer.import_predictor_state`, and the
window's (exactly trained) tables are read back afterwards, so
fast-forward only ever has to *bridge* the gaps between windows.
"""

from __future__ import annotations

from typing import Optional

from repro.frontend.branch_predictor import BranchUnit
from repro.isa.dyninst import DynInst
from repro.pipeline.config import MachineConfig


class _LiveValue:
    """One live logical-register value and its backing reuse chain."""

    __slots__ = ("alloc_index", "bank", "version", "uses", "first_pc",
                 "multi_use", "stale", "reused_by_pc")

    def __init__(self, alloc_index: int, bank: int, version: int = 0) -> None:
        self.alloc_index = alloc_index  # type-predictor entry that allocated
        self.bank = bank  # predicted bank == shadow cells available
        self.version = version  # reuses performed on the backing register
        self.uses = 0  # consumers of the current value
        self.first_pc: Optional[int] = None  # first consumer's PC
        self.multi_use = False  # a second consumer appeared
        self.stale = False  # register usurped by a predicted reuse
        self.reused_by_pc = 0  # the reusing consumer's PC (repair training)


class FunctionalWarmer:
    """Consumes instructions functionally while warming the predictors."""

    def __init__(self, config: MachineConfig, branch_unit: BranchUnit,
                 hierarchy=None) -> None:
        self.branch_unit = branch_unit
        self.hierarchy = hierarchy
        # i-fetch warming is line-grained (as in the detailed fetch unit):
        # consecutive pcs on one line touch the L1-I once
        self._line_bytes = (hierarchy.config.line_bytes
                            if hierarchy is not None else 64)
        self._last_fetch_line = -1
        self.track = config.scheme in ("sharing", "hinted")
        self.live: dict = {}  # RegRef -> _LiveValue
        if self.track:
            # probe renamer: guarantees the warmed tables match the window
            # renamers' predictor geometry exactly (banks, entries)
            probe = config.make_renamer()
            self.predictor = probe.predictor
            self.single_use = probe.single_use
            self.max_version = next(
                iter(probe.domains.values())).prt.max_version
        else:
            self.predictor = None
            self.single_use = None
            self.max_version = 0

    # ------------------------------------------------------------------ state handoff
    def export_predictor_state(self) -> dict:
        if not self.track:
            return {}
        return {
            "type_predictor": list(self.predictor.table),
            "single_use": list(self.single_use.table),
        }

    def import_predictor_state(self, state: dict) -> None:
        if not self.track or not state:
            return
        table = state.get("type_predictor")
        if table is not None and len(table) == len(self.predictor.table):
            self.predictor.table = list(table)
        table = state.get("single_use")
        if table is not None and len(table) == len(self.single_use.table):
            self.single_use.table = list(table)

    def reset_live(self) -> None:
        """Drop def-use records (a detailed window made them stale)."""
        self.live.clear()

    # ------------------------------------------------------------------ fast-forward
    def fast_forward(self, source, count: int) -> int:
        """Consume up to ``count`` instructions with full warming."""
        if self.track:
            take = source.take
            observe = self.observe
            consumed = 0
            for _ in range(count):
                dyn = take()
                if dyn is None:
                    break
                observe(dyn)
                consumed += 1
            return consumed
        # untracked schemes: branch + memory warming only, inlined
        take = source.take
        branch_observe = self.branch_unit.observe
        hierarchy = self.hierarchy
        line_bytes = self._line_bytes
        consumed = 0
        for _ in range(count):
            dyn = take()
            if dyn is None:
                break
            consumed += 1
            info = dyn.info
            if info.is_branch:
                branch_observe(dyn)
            if hierarchy is None:
                continue
            line = dyn.pc // line_bytes
            if line != self._last_fetch_line:
                self._last_fetch_line = line
                hierarchy.inst_fetch(dyn.pc, False, 0)
            if dyn.mem_addr is not None and (info.is_load or info.is_store):
                hierarchy.data_access(dyn.pc, dyn.mem_addr, info.is_store, 0)
        return consumed

    def skim(self, source, count: int) -> int:
        """Consume up to ``count`` instructions warming only the branch
        predictor (its global history must stay continuous and it is
        cheap to train).  Used far ahead of the next window, where
        cache/def-use warming would be overwritten before it is sampled
        — the engine switches to :meth:`fast_forward` for the warming
        zone directly preceding each window.
        """
        take = source.take
        branch_unit = self.branch_unit
        consumed = 0
        for _ in range(count):
            dyn = take()
            if dyn is None:
                break
            if dyn.info.is_branch:
                branch_unit.observe(dyn)
            consumed += 1
        if consumed and self.track:
            # def-use records refer to values the skim skipped over
            self.live.clear()
        return consumed

    def observe(self, dyn: DynInst) -> None:
        """Warm the predictors with one architecturally executed inst."""
        info = dyn.info
        pc = dyn.pc
        if info.is_branch:
            self.branch_unit.observe(dyn)
        hierarchy = self.hierarchy
        if hierarchy is not None:
            line = pc // self._line_bytes
            if line != self._last_fetch_line:
                self._last_fetch_line = line
                hierarchy.inst_fetch(pc, False, 0)
            if dyn.mem_addr is not None and (info.is_load or info.is_store):
                hierarchy.data_access(pc, dyn.mem_addr, info.is_store, 0)
        if not self.track:
            return
        live = self.live
        predictor = self.predictor
        single_use = self.single_use

        # ---- sources: consumer counting + stale-value repairs -------------
        first_use: list[tuple] = []  # (RegRef, _LiveValue)
        seen: list = []
        for src in dyn.srcs:
            if src in seen:  # same operand twice (e.g. ADD r1, r1, r1)
                continue
            seen.append(src)
            rec = live.get(src)
            if rec is None:
                continue
            if rec.stale:
                # single-use misprediction: a predicted reuse took this
                # value's register, yet here is another consumer — repair
                # (train the reuser down, reset the allocating entry) and
                # model the evacuation as a fresh allocation
                single_use.train_bad(rec.reused_by_pc)
                predictor.on_extra_use(rec.alloc_index)
                bank, index = predictor.predict(pc)
                rec.alloc_index = index
                rec.bank = bank
                rec.version = 0
                rec.stale = False
                rec.multi_use = False
            rec.uses += 1
            if rec.uses == 1:
                rec.first_pc = pc
                first_use.append((src, rec))
            elif rec.uses == 2 and not rec.multi_use:
                rec.multi_use = True
                if rec.bank > 0:
                    # predicted single-use, observed multi-consumer: reset
                    predictor.on_extra_use(rec.alloc_index)

        # ---- destination: reuse-chain / allocation modelling ---------------
        dest = dyn.dest
        if dest is None:
            return
        old = live.get(dest)
        reused = False

        # guaranteed reuse: the instruction redefines a register whose
        # value it just consumed first (src == dest)
        if old is not None and not old.stale \
                and any(ref == dest for ref, _rec in first_use):
            if old.version >= self.max_version:
                pass  # chain counter saturated: lost reuse, no training
            elif old.version >= old.bank:
                predictor.on_shadow_starvation(old.alloc_index)
            else:
                old.version += 1
                old.uses = 0
                old.first_pc = None
                old.multi_use = False
                reused = True

        # predicted reuse: first consumer of another value, predicted to be
        # the only consumer — the value's register hosts the new value
        if not reused:
            for ref, rec in first_use:
                if ref == dest or ref.cls is not dest.cls or rec.uses != 1:
                    continue
                if not single_use.predict(pc):
                    continue
                if rec.version >= self.max_version:
                    continue
                if rec.version >= rec.bank:
                    predictor.on_shadow_starvation(rec.alloc_index)
                    continue
                fresh = _LiveValue(rec.alloc_index, rec.bank, rec.version + 1)
                rec.stale = True
                rec.reused_by_pc = pc
                live[dest] = fresh
                reused = True
                break

        if not reused:
            bank, index = predictor.predict(pc)
            live[dest] = _LiveValue(index, bank)

        if old is not None and live[dest] is not old:
            self._close(old)

    def _close(self, rec: _LiveValue) -> None:
        """The value died (redefined): release-time predictor training."""
        if rec.stale:
            return  # register lives on under the reusing value's record
        if rec.uses == 1 and rec.first_pc is not None and not rec.multi_use:
            # confirmed single-use value that was not reused
            self.single_use.train_good(rec.first_pc, was_denied=True)
        self.predictor.on_release(
            alloc_index=rec.alloc_index,
            predicted_bank=rec.bank,
            actual_reuses=rec.version,
            extra_use=False,
            lost_reuse=0,
        )
