"""Interval-sampled simulation (SMARTS-style fast-forward + windows).

Public surface:

* :class:`~repro.sampling.schedule.SamplingSchedule` /
  :func:`~repro.sampling.schedule.parse_schedule` /
  :func:`~repro.sampling.schedule.as_schedule` — ``PERIOD:WINDOW:WARMUP``
  schedules with a seeded random phase offset;
* :class:`~repro.sampling.warmer.FunctionalWarmer` — functional
  fast-forward that keeps the branch / register-type / single-use
  predictors warm between windows;
* :func:`~repro.sampling.engine.sampled_simulate` — the engine; usually
  reached through ``repro.pipeline.processor.simulate(..., sampling=...)``
  or the CLI's ``--sampling`` flag.
"""

from repro.sampling.engine import sampled_simulate
from repro.sampling.schedule import (DEFAULT_SPEC, SamplingSchedule,
                                     as_schedule, parse_schedule)
from repro.sampling.warmer import FunctionalWarmer

__all__ = [
    "DEFAULT_SPEC",
    "SamplingSchedule",
    "FunctionalWarmer",
    "as_schedule",
    "parse_schedule",
    "sampled_simulate",
]
