"""Random-program fuzzer for the rename schemes.

Generates seeded random programs from a small JSON-able IR (weighted opcode
mix with loads/stores, forward branches, bounded counted loops, fma/csel,
and optional faults/interrupts/wrong-path variants), runs each program
under every applicable rename scheme with the commit-time oracle and
invariant checking enabled, and cross-checks that the committed-instruction
streams agree between schemes.  A failing program is **shrunk** — drop
instructions, reduce loop trip counts, flatten loops — to a minimal
reproducer that is written to disk for replay and regression.

The IR guarantees termination by construction: control transfers are
forward-only branches plus counted loops whose counter register (``x9``)
is reserved — generated instruction bodies never write it.  Register
conventions:

========  =====================================================
``x1-x6``  integer data registers (random dests/sources)
``f1-f6``  floating-point data registers
``x7``     pointer to the data page (``DATA_BASE``)
``x8``     pointer to a second page (``DATA_BASE + 4096``), so the
           first-touch fault model raises more than one fault
``x9``     loop counter (scaffolding only)
========  =====================================================

Replay a reproducer with ``python -m repro fuzz --replay FILE`` or the
golden-corpus test (``tests/test_corpus.py``).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.isa.executor import FirstTouchFaults
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import DATA_BASE, Program
from repro.isa.registers import RegRef, freg, reg, xreg

#: All rename schemes the fuzzer exercises.
ALL_SCHEMES = ("conventional", "sharing", "hinted", "early")

#: Read-port schemes the fuzzer draws for each program (weighted toward
#: 'none' so most of the corpus still stresses the rename schemes alone).
PORT_SCHEMES = ("none", "bypass_filter", "banked_arbiter")

#: Run variants: ``plain`` exercises every scheme; the others need precise
#: state recovery (or wrong-path walk-back) and exclude early release.
VARIANTS = ("plain", "faults", "interrupts", "wrong_path")

_PAGE = 4096
_COUNTER = xreg(9)  # reserved loop counter

_INT_DESTS = [f"x{i}" for i in range(1, 7)]
_INT_SRCS = [f"x{i}" for i in range(0, 10)]  # incl. pointers/counter (reads ok)
_FP_DESTS = [f"f{i}" for i in range(1, 7)]
_FP_SRCS = [f"f{i}" for i in range(0, 8)]

_ALU3 = ["add", "sub", "and", "or", "xor", "slt", "mul"]
_ALUI = ["addi", "subi", "andi", "ori", "xori", "shli", "shri", "slti"]
_DIVS = ["div", "rem"]
_FP3 = ["fadd", "fsub", "fmul", "fmin", "fmax"]
_FP1 = ["fabs", "fneg", "fmov"]
_FPDIV = ["fdiv", "fsqrt"]
_FCMP = ["feq", "flt", "fle"]
_BRANCHES = ["beq", "bne", "blt", "bge", "beqz", "bnez"]


def schemes_for(variant: str, schemes=ALL_SCHEMES) -> tuple[str, ...]:
    """Schemes that can run a variant (early release has no precise state)."""
    if variant == "plain":
        return tuple(schemes)
    return tuple(s for s in schemes if s != "early")


# --------------------------------------------------------------------------- IR
@dataclass
class FuzzProgram:
    """A seeded random program in the fuzzer's shrinkable IR."""

    seed: int
    variant: str = "plain"
    items: list = field(default_factory=list)
    note: str = ""
    #: register-file read-port scheme (repro.core.read_ports) the case
    #: runs under; old reproducers without the field load as 'none'
    port_scheme: str = "none"

    # ------------------------------------------------------------ serialisation
    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "variant": self.variant,
             "items": self.items, "note": self.note,
             "port_scheme": self.port_scheme},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FuzzProgram":
        raw = json.loads(text)
        return cls(seed=raw["seed"], variant=raw["variant"],
                   items=raw["items"], note=raw.get("note", ""),
                   port_scheme=raw.get("port_scheme", "none"))

    def save(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "FuzzProgram":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------ shape helpers
    def replace_items(self, items: list) -> "FuzzProgram":
        return FuzzProgram(seed=self.seed, variant=self.variant,
                           items=items, note=self.note,
                           port_scheme=self.port_scheme)

    def instruction_count(self) -> int:
        """Static instruction count of the materialised body (no preamble)."""
        return sum(_item_size(item) for item in self.items)

    # ------------------------------------------------------------ materialise
    def build(self) -> Program:
        """Materialise the IR into an assembled :class:`Program`."""
        insts = list(_preamble())
        _emit(self.items, insts)
        insts.append(Instruction(Op.HALT))
        data = {DATA_BASE + 8 * i: i + 1 for i in range(16)}
        data.update({DATA_BASE + _PAGE + 8 * i: 100 - i for i in range(16)})
        return Program(insts=insts, data=data)


def _preamble() -> list[Instruction]:
    """Deterministic register init; never part of the shrinkable items."""
    out = [
        Instruction(Op.MOVI, dest=xreg(7), imm=DATA_BASE),
        Instruction(Op.MOVI, dest=xreg(8), imm=DATA_BASE + _PAGE),
    ]
    for i in range(1, 7):
        out.append(Instruction(Op.MOVI, dest=xreg(i), imm=3 * i - 7))
        out.append(Instruction(Op.FLI, dest=freg(i), imm=float(2 * i) - 5.5))
    return out


def _item_size(item: dict) -> int:
    """Static instructions one IR item expands to."""
    if item["kind"] == "loop":
        # movi counter; body; subi counter; bnez back-edge
        return 3 + sum(_item_size(sub) for sub in item["body"])
    return 1


def _refs(names) -> tuple[RegRef, ...]:
    return tuple(reg(name) for name in names)


def _emit(items: list, insts: list) -> None:
    """Append the instructions for ``items`` to ``insts``.

    Forward-branch targets are resolved from item sizes before emission
    (``Instruction`` is frozen, so targets must be known at construction).
    """
    sizes = [_item_size(item) for item in items]
    for idx, item in enumerate(items):
        kind = item["kind"]
        pos = len(insts)
        if kind == "op":
            insts.append(Instruction(
                Op(item["op"]),
                dest=reg(item["dest"]) if item.get("dest") else None,
                srcs=_refs(item.get("srcs", [])),
                imm=item.get("imm"),
            ))
        elif kind == "load":
            insts.append(Instruction(
                Op(item["op"]), dest=reg(item["dest"]),
                srcs=(reg(item["base"]),), imm=item["imm"],
            ))
        elif kind == "store":
            insts.append(Instruction(
                Op(item["op"]),
                srcs=(reg(item["value"]), reg(item["base"])),
                imm=item["imm"],
            ))
        elif kind == "branch":
            # skip up to `skip` following items of this body (clamped, so
            # any item subset the shrinker produces stays well-formed)
            skip = min(item["skip"], len(items) - idx - 1)
            target = pos + 1 + sum(sizes[idx + 1: idx + 1 + skip])
            insts.append(Instruction(
                Op(item["op"]), srcs=_refs(item["srcs"]), target=target,
            ))
        elif kind == "trap":
            insts.append(Instruction(Op.TRAP))
        elif kind == "loop":
            insts.append(Instruction(Op.MOVI, dest=_COUNTER,
                                     imm=item["count"]))
            body_start = pos + 1
            _emit(item["body"], insts)
            insts.append(Instruction(Op.SUBI, dest=_COUNTER,
                                     srcs=(_COUNTER,), imm=1))
            insts.append(Instruction(Op.BNEZ, srcs=(_COUNTER,),
                                     target=body_start))
        else:  # pragma: no cover - corrupt reproducer file
            raise ValueError(f"unknown IR item kind {kind!r}")


# --------------------------------------------------------------------- generate
def _random_item(rng: random.Random, allow_control: bool = True,
                 allow_trap: bool = True) -> dict:
    """One weighted random IR item."""
    choices = [
        ("alu3", 20), ("alui", 12), ("movi", 4), ("mov", 2), ("div", 2),
        ("csel", 3), ("fp3", 8), ("fmadd", 3), ("fp1", 2), ("fpdiv", 1),
        ("fcvt", 1), ("ftoi", 1), ("fcmp", 2), ("fli", 2),
        ("load", 8), ("store", 8),
    ]
    if allow_control:
        choices += [("branch", 6), ("loop", 2)]
        if allow_trap:
            choices += [("trap", 1)]
    kinds, weights = zip(*choices)
    kind = rng.choices(kinds, weights=weights)[0]

    if kind == "alu3":
        return {"kind": "op", "op": rng.choice(_ALU3),
                "dest": rng.choice(_INT_DESTS),
                "srcs": [rng.choice(_INT_SRCS), rng.choice(_INT_SRCS)]}
    if kind == "alui":
        return {"kind": "op", "op": rng.choice(_ALUI),
                "dest": rng.choice(_INT_DESTS),
                "srcs": [rng.choice(_INT_SRCS)],
                "imm": rng.randint(-16, 16)}
    if kind == "movi":
        return {"kind": "op", "op": "movi", "dest": rng.choice(_INT_DESTS),
                "imm": rng.randint(-64, 64)}
    if kind == "mov":
        return {"kind": "op", "op": "mov", "dest": rng.choice(_INT_DESTS),
                "srcs": [rng.choice(_INT_SRCS)]}
    if kind == "div":
        return {"kind": "op", "op": rng.choice(_DIVS),
                "dest": rng.choice(_INT_DESTS),
                "srcs": [rng.choice(_INT_SRCS), rng.choice(_INT_SRCS)]}
    if kind == "csel":
        return {"kind": "op", "op": "csel", "dest": rng.choice(_INT_DESTS),
                "srcs": [rng.choice(_INT_SRCS), rng.choice(_INT_SRCS),
                         rng.choice(_INT_SRCS)]}
    if kind == "fp3":
        return {"kind": "op", "op": rng.choice(_FP3),
                "dest": rng.choice(_FP_DESTS),
                "srcs": [rng.choice(_FP_SRCS), rng.choice(_FP_SRCS)]}
    if kind == "fmadd":
        return {"kind": "op", "op": "fmadd", "dest": rng.choice(_FP_DESTS),
                "srcs": [rng.choice(_FP_SRCS), rng.choice(_FP_SRCS),
                         rng.choice(_FP_SRCS)]}
    if kind == "fp1":
        return {"kind": "op", "op": rng.choice(_FP1),
                "dest": rng.choice(_FP_DESTS), "srcs": [rng.choice(_FP_SRCS)]}
    if kind == "fpdiv":
        op = rng.choice(_FPDIV)
        srcs = [rng.choice(_FP_SRCS)]
        if op == "fdiv":
            srcs.append(rng.choice(_FP_SRCS))
        return {"kind": "op", "op": op, "dest": rng.choice(_FP_DESTS),
                "srcs": srcs}
    if kind == "fcvt":
        return {"kind": "op", "op": "fcvt", "dest": rng.choice(_FP_DESTS),
                "srcs": [rng.choice(_INT_SRCS)]}
    if kind == "ftoi":
        return {"kind": "op", "op": "ftoi", "dest": rng.choice(_INT_DESTS),
                "srcs": [rng.choice(_FP_SRCS)]}
    if kind == "fcmp":
        return {"kind": "op", "op": rng.choice(_FCMP),
                "dest": rng.choice(_INT_DESTS),
                "srcs": [rng.choice(_FP_SRCS), rng.choice(_FP_SRCS)]}
    if kind == "fli":
        return {"kind": "op", "op": "fli", "dest": rng.choice(_FP_DESTS),
                "imm": round(rng.uniform(-8.0, 8.0), 3)}
    if kind == "load":
        fp = rng.random() < 0.3
        return {"kind": "load", "op": "fld" if fp else "ld",
                "dest": rng.choice(_FP_DESTS if fp else _INT_DESTS),
                "base": "x8" if rng.random() < 0.25 else "x7",
                "imm": 8 * rng.randint(0, 63)}
    if kind == "store":
        fp = rng.random() < 0.3
        return {"kind": "store", "op": "fst" if fp else "st",
                "value": rng.choice(_FP_SRCS if fp else _INT_SRCS),
                "base": "x8" if rng.random() < 0.25 else "x7",
                "imm": 8 * rng.randint(0, 63)}
    if kind == "branch":
        op = rng.choice(_BRANCHES)
        nsrcs = 1 if op in ("beqz", "bnez") else 2
        return {"kind": "branch", "op": op,
                "srcs": [rng.choice(_INT_SRCS) for _ in range(nsrcs)],
                "skip": rng.randint(1, 4)}
    if kind == "trap":
        return {"kind": "trap"}
    # loop: bounded count, non-nested body (counter x9 is reserved)
    body = [_random_item(rng, allow_control=False)
            for _ in range(rng.randint(2, 6))]
    return {"kind": "loop", "count": rng.randint(2, 6), "body": body}


def generate(seed: int, size: int = 40,
             variant: Optional[str] = None) -> FuzzProgram:
    """Generate one seeded random program (``size`` top-level IR items).

    ``variant`` overrides the seeded variant draw (the draw is still
    consumed, keeping the rng stream aligned with the unforced generator);
    the fault-injection campaign forces ``"plain"`` to keep its workloads
    exception-free — injected adversity must be the *only* adversity in a
    faulted run.
    """
    rng = random.Random(seed)
    drawn = rng.choices(VARIANTS, weights=(5, 3, 2, 2))[0]
    if variant is None:
        variant = drawn
    elif variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    # the plain variant runs under early release too, which cannot take a
    # precise exception — so no TRAPs there (no other item can fault)
    items = [_random_item(rng, allow_trap=variant != "plain")
             for _ in range(size)]
    # drawn *after* the items so every pre-existing seed still generates
    # the identical program body (rng stream compatibility)
    port_scheme = rng.choices(PORT_SCHEMES, weights=(2, 1, 1))[0]
    return FuzzProgram(seed=seed, variant=variant, items=items,
                       port_scheme=port_scheme)


# -------------------------------------------------------------------- execution
class FuzzFailure(AssertionError):
    """One fuzz case failed: carries the scheme and underlying cause."""

    def __init__(self, fp: FuzzProgram, scheme: str, cause: str) -> None:
        super().__init__(
            f"fuzz seed {fp.seed} variant {fp.variant!r} failed under "
            f"scheme {scheme!r}: {cause}"
        )
        self.fuzz_program = fp
        self.scheme = scheme
        self.cause = cause


def fuzz_config(scheme: str, variant: str, port_scheme: str = "none"):
    """Pipeline configuration for fuzz runs.

    Small register files maximise reuse/release pressure; a tight cycle
    budget makes genuine failures (deadlock, livelock) fail fast so the
    shrinker stays quick.
    """
    from repro.core.read_ports import apply_port_scheme
    from repro.pipeline.config import MachineConfig

    config = MachineConfig(
        scheme=scheme,
        int_regs=48,
        fp_regs=48,
        counter_bits=2,
        verify_values=True,
        model_wrong_path=(variant == "wrong_path"),
        interrupt_interval=300 if variant == "interrupts" else None,
        max_cycles=60_000,
    )
    return apply_port_scheme(config, port_scheme)


def run_case(fp: FuzzProgram, schemes=ALL_SCHEMES) -> dict:
    """Run one fuzz program under every applicable scheme.

    Each run has the commit-time oracle and invariant checking attached;
    afterwards the committed streams are cross-checked between schemes.
    Returns ``{scheme: committed instruction count}`` on success; raises
    :class:`FuzzFailure` on the first failing scheme or stream mismatch.
    """
    from repro.pipeline.debug import check_invariants
    from repro.verify.oracle import CommitRecorder

    program = fp.build()
    fault = fp.variant == "faults"
    signatures: dict[str, list] = {}
    counts: dict[str, int] = {}
    for scheme in schemes_for(fp.variant, schemes):
        config = fuzz_config(scheme, fp.variant, fp.port_scheme)
        record = CommitRecorder()

        try:
            from repro.frontend.fetch import IterSource
            from repro.isa.executor import FunctionalExecutor
            from repro.pipeline.processor import Processor
            from repro.verify.oracle import OracleChecker

            executor = FunctionalExecutor(
                program,
                fault_model=FirstTouchFaults() if fault else None,
            )
            source = executor.run(100_000)
            if scheme == "hinted":
                from repro.workloads.lookahead import annotate_hints

                source = annotate_hints(source)
            processor = Processor(
                config, IterSource(source),
                fault_model=FirstTouchFaults() if fault else None,
                on_cycle=check_invariants, on_cycle_interval=8,
                on_commit=record,
                oracle=OracleChecker(program=program,
                                     source_state=executor.state),
            )
            stats = processor.run()
        except Exception as exc:
            raise FuzzFailure(fp, scheme,
                              f"{type(exc).__name__}: {exc}") from exc
        signatures[scheme] = record.stream
        counts[scheme] = stats.committed

    baseline_scheme = next(iter(signatures))
    baseline = signatures[baseline_scheme]
    for scheme, stream in signatures.items():
        if stream != baseline:
            first = next(
                (i for i, (a, b) in enumerate(zip(baseline, stream)) if a != b),
                min(len(baseline), len(stream)),
            )
            raise FuzzFailure(
                fp, scheme,
                f"committed stream diverges from {baseline_scheme!r} at "
                f"commit #{first} "
                f"({baseline[first] if first < len(baseline) else '<end>'} vs "
                f"{stream[first] if first < len(stream) else '<end>'})",
            )
    return counts


# ---------------------------------------------------------------------- shrink
def _shrink_item(item: dict) -> list[dict]:
    """Smaller candidate replacements for one IR item (best first)."""
    if item["kind"] != "loop":
        return []
    candidates = []
    if item["count"] > 1:
        candidates.append({**item, "count": 1})
    candidates.append({**item, "body": item["body"][: len(item["body"]) // 2]})
    return candidates


def shrink(
    fp: FuzzProgram,
    fails: Callable[[FuzzProgram], bool],
    max_attempts: int = 2000,
) -> FuzzProgram:
    """Greedy delta-debugging: minimise ``fp`` while ``fails`` holds.

    Alternates chunked item removal (halving chunk sizes, ddmin-style)
    with per-item reductions (loop trip count -> 1, loop body halving,
    loop flattened to its body) until a fixpoint or the attempt budget.
    """
    attempts = 0

    def check(candidate: FuzzProgram) -> bool:
        nonlocal attempts
        attempts += 1
        if attempts > max_attempts:
            return False
        try:
            return fails(candidate)
        except Exception:
            return False  # a *different* crash in the predicate: reject

    current = fp
    improved = True
    while improved:
        improved = False
        # pass 1: drop chunks of items
        chunk = max(1, len(current.items) // 2)
        while chunk >= 1:
            idx = 0
            while idx < len(current.items):
                candidate = current.replace_items(
                    current.items[:idx] + current.items[idx + chunk:]
                )
                if candidate.items != current.items and check(candidate):
                    current = candidate
                    improved = True
                else:
                    idx += chunk
            chunk //= 2
        # pass 2: reduce surviving loops in place
        for idx, item in enumerate(list(current.items)):
            if item["kind"] == "loop":
                flattened = current.replace_items(
                    current.items[:idx] + item["body"]
                    + current.items[idx + 1:]
                )
                if check(flattened):
                    current = flattened
                    improved = True
                    continue
            for repl in _shrink_item(item):
                candidate = current.replace_items(
                    current.items[:idx] + [repl] + current.items[idx + 1:]
                )
                if check(candidate):
                    current = candidate
                    improved = True
                    break
    return current


# ------------------------------------------------------------------- campaign
def fuzz(
    count: int = 25,
    seed_base: int = 0,
    size: int = 40,
    schemes=ALL_SCHEMES,
    out_dir: Optional[str] = None,
    log: Callable[[str], None] = lambda msg: None,
) -> list[FuzzFailure]:
    """Run a fuzzing campaign of ``count`` seeded programs.

    Failing programs are shrunk and written to ``out_dir`` (when given) as
    ``repro_seed<N>.json`` reproducers.  Returns the list of failures
    (empty = clean campaign).
    """
    failures: list[FuzzFailure] = []
    for offset in range(count):
        seed = seed_base + offset
        fp = generate(seed, size=size)
        try:
            counts = run_case(fp, schemes=schemes)
        except FuzzFailure as failure:
            log(f"seed {seed} ({fp.variant}): FAIL — {failure.cause}")

            def still_fails(candidate: FuzzProgram) -> bool:
                try:
                    run_case(candidate, schemes=schemes)
                except FuzzFailure:
                    return True
                return False

            minimal = shrink(fp, still_fails)
            minimal.note = failure.cause
            log(f"seed {seed}: shrunk {fp.instruction_count()} -> "
                f"{minimal.instruction_count()} instructions")
            if out_dir is not None:
                path = Path(out_dir)
                path.mkdir(parents=True, exist_ok=True)
                minimal.save(path / f"repro_seed{seed}.json")
                log(f"seed {seed}: reproducer written to "
                    f"{path / f'repro_seed{seed}.json'}")
            failure.fuzz_program = minimal
            failures.append(failure)
        else:
            schemes_run = schemes_for(fp.variant, schemes)
            log(f"seed {seed} ({fp.variant}): ok — "
                f"{counts[schemes_run[0]]} insts × {len(schemes_run)} schemes")
    return failures
