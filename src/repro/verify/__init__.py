"""End-to-end verification: differential oracle + random-program fuzzer.

The sharing renamer's whole value proposition is that register reuse,
versioned tags and shadow-cell checkpointing are *invisible* to
architectural state.  This package is the correctness backstop that keeps
that claim true as the simulator grows:

* :mod:`repro.verify.oracle` — a **commit-time differential oracle**.
  :class:`OracleChecker` runs the in-order :class:`~repro.isa.executor.FunctionalExecutor`
  in lockstep with the out-of-order :class:`~repro.pipeline.processor.Processor`
  and compares, at every commit, the committed destination value (read
  through the rename tag from the physical register file), memory effects
  and control flow — and at halt the full architectural register state.
  Any mismatch raises :class:`DivergenceError` pinpointing the first
  divergent instruction with a window of the preceding commits.

* :mod:`repro.verify.fuzz` — a **random-program fuzzer**.  Seeded random
  programs (weighted opcode mix with loads/stores, branches, fma/csel,
  faults and interrupts) run under all rename schemes with the oracle and
  invariant checking enabled; committed-instruction streams are
  cross-checked between schemes, and failing programs are shrunk to a
  minimal reproducer written to disk for replay.

Run it from the command line::

    python -m repro verify --scheme sharing     # oracle-checked battery
    python -m repro fuzz --count 25             # fuzz 25 seeded programs
    python -m repro fuzz --replay repro.json    # replay a reproducer
"""

from repro.verify.oracle import (CommitRecord, DivergenceError, OracleChecker,
                                 lockstep_run)

__all__ = [
    "CommitRecord",
    "DivergenceError",
    "OracleChecker",
    "lockstep_run",
    # lazily re-exported from repro.verify.fuzz (see __getattr__)
    "FuzzFailure",
    "FuzzProgram",
    "fuzz",
    "generate",
    "run_case",
    "shrink",
]

_FUZZ_NAMES = {"FuzzFailure", "FuzzProgram", "fuzz", "generate", "run_case",
               "shrink"}


def __getattr__(name):
    # fuzz imports the pipeline; loading it lazily keeps
    # ``repro.pipeline.processor`` -> ``repro.verify.oracle`` import-cycle
    # free when the processor wires up an oracle.
    if name in _FUZZ_NAMES:
        from repro.verify import fuzz as _fuzz

        return getattr(_fuzz, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
