"""Commit-time differential oracle.

:class:`OracleChecker` runs the in-order :class:`~repro.isa.executor.FunctionalExecutor`
in lockstep with the out-of-order pipeline, one reference step per committed
(non-micro-op) instruction, and cross-checks every architecturally visible
effect the moment it retires:

* the committed destination value, read from the **physical register file
  through the rename tag** — so a wrong version woken, a premature reuse or
  a bad recovery shows up as a value mismatch at the first affected commit,
  not as a skewed IPC thousands of cycles later;
* memory effects (effective address and store data) and branch outcomes
  (next PC);
* at halt, the full architectural register state read through the
  retirement map, and — when the producing executor's state is supplied —
  the final memory image.

Any mismatch raises :class:`DivergenceError` pinpointing the first
divergent instruction together with a window of the commits leading up to
it.

Two modes:

**program mode** (``OracleChecker(program=...)``) — the oracle owns a fresh
:class:`FunctionalExecutor` over the same program with ``NoFaults`` and its
own memory.  Faults and interrupts are architecturally invisible (a
faulting access is serviced and replayed, committing exactly once), so the
committed non-micro-op stream must match the clean in-order execution 1:1.

**stream mode** (no program) — for synthetic workloads with no re-executable
program, the oracle checks commit order (strictly increasing ``seq``) and
that the value standing in the physical register file at commit equals the
functionally recorded result carried by the :class:`DynInst` itself.

Renamers that release registers before their redefiner commits declare
``commit_time_value_stable = False`` (early release): for those the
per-commit PRF value check is skipped — the value may legitimately be gone
— but stream/order/memory checks and the end-of-program state comparison
still apply.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.isa.dyninst import DynInst
from repro.isa.executor import ArchState, FunctionalExecutor, NoFaults
from repro.isa.opcodes import Op
from repro.isa.program import Program


def values_equal(a, b) -> bool:
    """Value equality with NaN == NaN (verification semantics)."""
    if a is None or b is None:
        return a is b
    if a == b:
        return True
    return a != a and b != b


def canon_value(value):
    """Canonical form for commit-stream comparison (NaN-safe, -0.0 == 0.0)."""
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value == 0.0:
            return 0.0
    return value


class CommitRecorder:
    """``on_commit`` hook that collects a canonical committed-instruction
    signature: one ``(seq, pc, op, mem_addr, store_value, result)`` tuple
    per architectural commit (micro-ops and wrong-path fetches excluded),
    values canonicalised with :func:`canon_value`.

    Two runs of the same program are architecturally equivalent iff their
    signatures match — the fuzzer uses this to cross-check schemes against
    each other, and the fault-injection campaign to compare a faulted run
    against its clean reference.
    """

    def __init__(self) -> None:
        self.stream: list[tuple] = []

    def __call__(self, processor, dyn: DynInst) -> None:
        if dyn.micro_op or dyn.wrong_path:
            return
        self.stream.append((
            dyn.seq, dyn.pc, dyn.op.value, dyn.mem_addr,
            canon_value(dyn.store_value), canon_value(dyn.result),
        ))

    def signature(self) -> tuple:
        return tuple(self.stream)


@dataclass(frozen=True)
class CommitRecord:
    """One committed instruction as the oracle saw it."""

    seq: int
    pc: int
    op: str
    cycle: int
    dest: Optional[str] = None
    value: object = None
    mem_addr: Optional[int] = None
    store_value: object = None

    def __str__(self) -> str:
        parts = [f"[{self.seq}@{self.pc}] {self.op} (cycle {self.cycle})"]
        if self.dest is not None:
            parts.append(f"{self.dest}={self.value!r}")
        if self.mem_addr is not None:
            if self.store_value is not None:
                parts.append(f"mem[{self.mem_addr:#x}]<-{self.store_value!r}")
            else:
                parts.append(f"mem[{self.mem_addr:#x}]")
        return " ".join(parts)


class DivergenceError(AssertionError):
    """The pipeline's committed state diverged from the reference model.

    Carries the first divergent instruction (``dyn``), what diverged
    (``field``, ``expected``, ``actual``) and the window of commits that
    led up to it (``window``).
    """

    def __init__(self, message: str, dyn: Optional[DynInst] = None,
                 field: str = "", expected=None, actual=None,
                 window: tuple = ()) -> None:
        lines = [message]
        if dyn is not None:
            lines.append(f"  first divergent instruction: {dyn}")
        if field:
            lines.append(f"  {field}: expected {expected!r}, got {actual!r}")
        if window:
            lines.append("  preceding commits:")
            lines.extend(f"    {record}" for record in window)
        super().__init__("\n".join(lines))
        self.dyn = dyn
        self.field = field
        self.expected = expected
        self.actual = actual
        self.window = window


class OracleChecker:
    """Differential commit-time checker (see module docstring).

    Attach via ``Processor(..., oracle=OracleChecker(program=p))`` or the
    ``Processor(..., oracle=True)`` convenience (stream mode); the pipeline
    calls :meth:`on_commit` for every retired instruction and
    :meth:`on_halt` when the run ends.
    """

    def __init__(
        self,
        program: Optional[Program] = None,
        source_state: Optional[ArchState] = None,
        window: int = 8,
    ) -> None:
        #: in-order golden model (program mode only); runs fault-free on its
        #: own memory — faults/interrupts must be architecturally invisible
        self.reference: Optional[FunctionalExecutor] = (
            FunctionalExecutor(program, fault_model=NoFaults())
            if program is not None else None
        )
        #: state of the executor feeding the pipeline, for the final memory
        #: comparison (program mode; optional)
        self.source_state = source_state
        self.window: deque[CommitRecord] = deque(maxlen=window)
        self.commits = 0
        self.last_seq = -1

    # ------------------------------------------------------------------ helpers
    def _fail(self, processor, dyn: DynInst, field: str,
              expected, actual) -> None:
        raise DivergenceError(
            f"commit-time divergence under scheme "
            f"{processor.config.scheme!r} at cycle {processor.cycle} "
            f"(commit #{self.commits})",
            dyn=dyn, field=field, expected=expected, actual=actual,
            window=tuple(self.window),
        )

    def _committed_value(self, processor, dyn: DynInst):
        try:
            return processor.renamer.read(dyn.dest_tag)
        except Exception as exc:
            raise DivergenceError(
                f"committed destination tag {dyn.dest_tag} unreadable at "
                f"cycle {processor.cycle}",
                dyn=dyn, field="dest_tag", expected="readable", actual=exc,
                window=tuple(self.window),
            ) from exc

    # ------------------------------------------------------------------ hooks
    def on_commit(self, processor, dyn: DynInst) -> None:
        """Called by the pipeline for every committed ROB head."""
        if dyn.micro_op or dyn.wrong_path:
            return  # repair µops / wrong path are microarchitectural only

        if dyn.seq <= self.last_seq:
            self._fail(processor, dyn, "commit order (seq)",
                       f"> {self.last_seq}", dyn.seq)
        self.last_seq = dyn.seq
        self.commits += 1

        if self.reference is not None:
            expected = self._step_reference(processor, dyn)
        else:
            expected = dyn.result  # functionally recorded by the producer

        value = None
        if (dyn.dest_tag is not None and expected is not None
                and processor.renamer.commit_time_value_stable):
            value = self._committed_value(processor, dyn)
            if not values_equal(value, expected):
                self._fail(processor, dyn,
                           f"committed value of {dyn.dest} (tag {dyn.dest_tag})",
                           expected, value)

        self.window.append(CommitRecord(
            seq=dyn.seq, pc=dyn.pc, op=dyn.op.value, cycle=processor.cycle,
            dest=str(dyn.dest) if dyn.dest is not None else None,
            value=value if value is not None else expected,
            mem_addr=dyn.mem_addr, store_value=dyn.store_value,
        ))

    def _step_reference(self, processor, dyn: DynInst):
        """Advance the golden model one instruction; cross-check effects."""
        ref = self.reference.step()
        if ref is None:
            self._fail(processor, dyn, "instruction stream",
                       "reference already halted", f"commit of {dyn}")
        if ref.seq != dyn.seq:
            self._fail(processor, dyn, "sequence number", ref.seq, dyn.seq)
        if ref.pc != dyn.pc:
            self._fail(processor, dyn, "pc", ref.pc, dyn.pc)
        if ref.op is not dyn.op:
            self._fail(processor, dyn, "opcode", ref.op, dyn.op)
        if ref.mem_addr != dyn.mem_addr:
            self._fail(processor, dyn, "effective address",
                       ref.mem_addr, dyn.mem_addr)
        if not values_equal(ref.store_value, dyn.store_value):
            self._fail(processor, dyn, "store value",
                       ref.store_value, dyn.store_value)
        if dyn.info.is_branch and ref.next_pc != dyn.next_pc:
            self._fail(processor, dyn, "branch next_pc",
                       ref.next_pc, dyn.next_pc)
        return ref.result

    def on_halt(self, processor, complete: bool = True) -> None:
        """End-of-run architectural state comparison.

        ``complete`` is False when the run was cut short (``max_insts``):
        the reference then simply stops alongside the pipeline.  The
        committed-register comparison is still valid for renamers with
        stable commit-time values (retirement state always trails the
        reference by zero instructions); for early release it is only
        meaningful at a true program end, when the retirement map has
        quiesced and its targets can no longer have been recycled.
        """
        if self.reference is None:
            return
        if not complete and not processor.renamer.commit_time_value_stable:
            return
        state = self.reference.state
        int_regs, fp_regs = processor.architectural_state()
        diffs = state.diff_regs(int_regs, fp_regs)
        if diffs:
            raise DivergenceError(
                f"final architectural register state diverged under scheme "
                f"{processor.config.scheme!r} after {self.commits} commits: "
                f"{', '.join(diffs)}",
                window=tuple(self.window),
            )
        if complete and self.source_state is not None \
                and self.source_state.mem != state.mem:
            raise DivergenceError(
                "final memory image diverged from the fault-free reference "
                f"after {self.commits} commits (faults/interrupts must be "
                "architecturally invisible)",
                window=tuple(self.window),
            )


def lockstep_run(
    config,
    program: Program,
    fault_model=None,
    max_insts: Optional[int] = None,
    program_budget: int = 10_000_000,
    on_cycle=None,
    on_cycle_interval: int = 16,
    on_commit=None,
    naive_loop: Optional[bool] = None,
):
    """Run ``program`` through the pipeline with the oracle attached.

    Builds the functional source (with hint annotation for the hinted
    scheme), wires up a program-mode :class:`OracleChecker` plus an
    optional ``on_cycle`` hook (e.g. ``check_invariants``), runs to
    completion and returns the stats.  Raises :class:`DivergenceError` on
    the first architectural mismatch.
    """
    from repro.frontend.fetch import IterSource
    from repro.pipeline.processor import Processor

    executor = FunctionalExecutor(program, fault_model=fault_model)
    stream = executor.run(program_budget)
    if config.scheme == "hinted":
        from repro.workloads.lookahead import annotate_hints

        stream = annotate_hints(stream)
    oracle = OracleChecker(program=program, source_state=executor.state)
    processor = Processor(
        config, IterSource(stream), fault_model=fault_model,
        on_cycle=on_cycle, on_cycle_interval=on_cycle_interval,
        on_commit=on_commit, naive_loop=naive_loop,
        oracle=oracle,
    )
    return processor.run(max_insts=max_insts)
