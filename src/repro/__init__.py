"""repro — reproduction of "A Novel Register Renaming Technique for
Out-of-Order Processors" (Tabani, Arnau, Tubella, González — HPCA 2018).

Public API quickstart::

    from repro import MachineConfig, simulate, assemble

    program = assemble(open("kernel.s").read())
    baseline = simulate(MachineConfig(scheme="conventional", int_regs=64), program)
    proposed = simulate(MachineConfig(scheme="sharing", int_regs=64), program)
    print(proposed.ipc / baseline.ipc)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.isa import (
    DynInst,
    FirstTouchFaults,
    FunctionalExecutor,
    Program,
    RegClass,
    RegRef,
    assemble,
)
from repro.pipeline import MachineConfig, Processor, SimStats, simulate
from repro.core import (
    ConventionalRenamer,
    RegisterFileConfig,
    SharingRenamer,
)

__version__ = "1.0.0"

__all__ = [
    "DynInst",
    "FirstTouchFaults",
    "FunctionalExecutor",
    "Program",
    "RegClass",
    "RegRef",
    "assemble",
    "MachineConfig",
    "Processor",
    "SimStats",
    "simulate",
    "ConventionalRenamer",
    "RegisterFileConfig",
    "SharingRenamer",
    "__version__",
]
