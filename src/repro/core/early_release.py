"""Early-release renaming (the related-work comparator, Section VII).

Implements the Moudgill/Akkary-style scheme the paper positions itself
against: a physical register is released as soon as

* its value has been produced,
* every renamed consumer has read it (a pending-reads counter), and
* the logical register has been redefined (the *unmapped* flag),

instead of waiting for the redefining instruction to commit.  This frees
registers earlier than the conventional scheme — but, exactly as the paper
argues, the released value is gone: **precise exceptions cannot be
supported** because the committed state may reference a register that was
released and reallocated while its redefiner was still speculative.
:meth:`EarlyReleaseRenamer.recover` therefore refuses to run; use this
scheme only on exception-free workloads (the benchmark harness does, to
quantify what the paper's scheme gives up — nothing — relative to the
aggressive-release upper bound).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.map_table import MapTable
from repro.core.register_file import BankedRegisterFile, RegisterFileConfig
from repro.core.renamer import BaseRenamer, ReadyFn, RenameStats, Tag, Value
from repro.isa.dyninst import DynInst
from repro.isa.registers import FP_REGS, INT_REGS, RegClass, RegRef


class PreciseStateUnavailable(RuntimeError):
    """Raised when an exception needs recovery under early release."""


class _PhysState:
    __slots__ = ("pending_reads", "produced", "unmapped", "released", "generation")

    def __init__(self) -> None:
        self.pending_reads = 0
        self.produced = False
        self.unmapped = False
        self.released = False
        self.generation = 0  # bumped at (re)allocation; guards stale releases

    def reset(self) -> None:
        self.pending_reads = 0
        self.produced = False
        self.unmapped = False
        self.released = False
        self.generation += 1


class _Domain:
    def __init__(self, num_logical: int, num_phys: int) -> None:
        if num_phys < num_logical + 1:
            raise ValueError(
                f"need at least {num_logical + 1} physical registers, got {num_phys}"
            )
        self.num_logical = num_logical
        self.config = RegisterFileConfig.flat(num_phys)
        self.rf = BankedRegisterFile(self.config)
        self.map = MapTable(num_logical)
        self.retire_map = MapTable(num_logical)
        # FIFO free list: deque so allocation (popleft) is O(1)
        self.free: deque[int] = deque(range(num_logical, num_phys))
        self.state = [_PhysState() for _ in range(num_phys)]
        for logical in range(num_logical):
            self.map.set(logical, (logical, 0))
            self.retire_map.set(logical, (logical, 0))
            self.state[logical].produced = True


class EarlyReleaseRenamer(BaseRenamer):
    """Release-on-last-read renaming (no precise exceptions)."""

    #: see ConventionalRenamer.codegen_id (exact-class kernel dispatch)
    codegen_id = "early"

    tracks_operand_reads = True

    #: a register can be released (and reallocated) as soon as its last
    #: consumer reads it — possibly before its producer commits — so the
    #: PRF value at commit time is unstable; only the quiesced final state
    #: (retirement map == rename map) is safe to inspect
    commit_time_value_stable = False

    def __init__(self, int_regs: int, fp_regs: int) -> None:
        self.domains = {
            RegClass.INT: _Domain(INT_REGS, int_regs),
            RegClass.FP: _Domain(FP_REGS, fp_regs),
        }
        #: domains indexed by RegClass.value (hot-path tag dispatch)
        self._domains_by_value = (
            self.domains[RegClass.INT], self.domains[RegClass.FP],
        )
        self.stats = RenameStats()
        self.early_releases = 0
        self.commit_releases = 0

    # ------------------------------------------------------------------ release
    def _try_release(self, domain: _Domain, phys: int) -> None:
        state = domain.state[phys]
        if (state.unmapped and state.produced and state.pending_reads == 0
                and not state.released):
            state.released = True
            domain.free.append(phys)
            self.early_releases += 1
            self.stats.releases += 1

    # ------------------------------------------------------------------ capacity
    def can_rename(self, dyn: DynInst) -> bool:
        if dyn.dest is None:
            return True
        return bool(self.domains[dyn.dest.cls].free)

    # ------------------------------------------------------------------ rename
    def rename(self, dyn: DynInst, is_ready: ReadyFn) -> list[DynInst]:
        self.stats.insts += 1
        src_tags = []
        for src in dyn.srcs:
            domain = self.domains[src.cls]
            phys, _version = domain.map.get(src.idx)
            domain.state[phys].pending_reads += 1
            src_tags.append((src.cls.value, phys, 0))
        dyn.src_tags = src_tags

        if dyn.dest is not None:
            self.stats.dest_insts += 1
            domain = self.domains[dyn.dest.cls]
            if not domain.free:
                raise AssertionError("rename called without a free register")
            phys = domain.free.popleft()
            domain.state[phys].reset()
            prev_phys, _ = domain.map.get(dyn.dest.idx)
            # remember the previous register *and its generation*: if it is
            # released early and reallocated before this instruction commits,
            # the commit-time release must not free the new tenant
            dyn.prev_map = (prev_phys, domain.state[prev_phys].generation)
            dyn.allocated_new = True
            domain.map.set(dyn.dest.idx, (phys, 0))
            dyn.dest_tag = (dyn.dest.cls.value, phys, 0)
            self.stats.allocations += 1
            self.stats.allocations_per_bank[0] += 1
            # the redefinition sets the previous register's unmapped flag
            prev_state = domain.state[prev_phys]
            prev_state.unmapped = True
            self._try_release(domain, prev_phys)
        return [dyn]

    # ------------------------------------------------------------------ hooks
    def on_operand_read(self, tag: Tag) -> None:
        """A consumer read its operand (called by the pipeline at issue)."""
        domain = self._domains_by_value[tag[0]]
        state = domain.state[tag[1]]
        state.pending_reads -= 1
        assert state.pending_reads >= 0, "pending-read underflow"
        self._try_release(domain, tag[1])

    # ------------------------------------------------------------------ commit
    def commit(self, dyn: DynInst) -> None:
        if dyn.dest is None or dyn.dest_tag is None:
            return
        domain = self.domains[dyn.dest.cls]
        new = dyn.dest_tag[1:]
        domain.retire_map.set(dyn.dest.idx, new)
        old_phys, old_generation = dyn.prev_map
        state = domain.state[old_phys]
        if (old_phys != new[0] and not state.released
                and state.generation == old_generation):
            # not released early (e.g. a never-read value): conventional path
            state.released = True
            domain.free.append(old_phys)
            self.commit_releases += 1
            self.stats.releases += 1

    # ------------------------------------------------------------------ recovery
    def recover(self) -> int:
        raise PreciseStateUnavailable(
            "early-release renaming discarded values still referenced by the "
            "committed state; precise exceptions are unsupported (this is the "
            "paper's Section VII argument against counter-based early release)"
        )

    # ------------------------------------------------------------------ values
    def write(self, tag: Tag, value: Value) -> None:
        domain = self._domains_by_value[tag[0]]
        domain.rf.write(tag[1], tag[2], value)
        state = domain.state[tag[1]]
        state.produced = True
        self._try_release(domain, tag[1])

    def read(self, tag: Tag) -> Value:
        return self._domains_by_value[tag[0]].rf.read(tag[1], tag[2])

    # ------------------------------------------------------------------ sampling warmup
    def export_predictor_state(self) -> dict:
        # releases are driven by read tracking, not PC-indexed prediction:
        # no predictor state to hand across sampling windows
        return {}

    def import_predictor_state(self, state: dict) -> None:
        pass

    # ------------------------------------------------------------------ setup
    def initial_tags(self) -> list[tuple[Tag, Value]]:
        pairs: list[tuple[Tag, Value]] = []
        for cls, domain in self.domains.items():
            zero: Value = 0 if cls is RegClass.INT else 0.0
            for logical in range(domain.num_logical):
                phys, version = domain.retire_map.get(logical)
                pairs.append(((cls.value, phys, version), zero))
        return pairs

    def committed_tag(self, ref: RegRef) -> Tag:
        return (ref.cls.value, *self.domains[ref.cls].retire_map.get(ref.idx))

    def free_registers(self, cls: RegClass) -> int:
        return len(self.domains[cls].free)

    # ------------------------------------------------------------------ fault injection
    def fault_targets(self) -> dict[str, list[Tag]]:
        """See :meth:`BaseRenamer.fault_targets`.

        No shadow cells, but one early-release subtlety: a *released*
        register may still be referenced by the retirement map (the paper's
        Section VII hazard — the redefiner that unmapped it has not
        committed).  Such cells classify as *live*: the final-state check
        reads them, so a flip there is expected to be detected, not masked.
        """
        targets: dict[str, list[Tag]] = {"live": [], "shadow": [], "free": []}
        for cls, domain in self.domains.items():
            free = set(domain.free)
            referenced = {tag[0] for tag in domain.map.entries}
            referenced |= {tag[0] for tag in domain.retire_map.entries}
            for phys, version, _value in domain.rf.cells():
                kind = "free" if phys in free and phys not in referenced \
                    else "live"
                targets[kind].append((cls.value, phys, version))
            for phys in free:
                if phys not in referenced and not domain.rf.has(phys, 0):
                    targets["free"].append((cls.value, phys, 0))
        return targets
