"""The paper's contribution: register renaming with physical register sharing.

This package implements both renaming schemes evaluated in the paper:

* :class:`~repro.core.conventional.ConventionalRenamer` — the baseline
  merged-register-file scheme: every renamed destination allocates a fresh
  physical register, released when the redefining instruction commits.
* :class:`~repro.core.sharing.SharingRenamer` — the proposed scheme:
  a Physical Register Table (PRT) with a *Read bit* and an N-bit version
  counter per physical register, a multi-bank register file whose banks
  carry 0/1/2/3 shadow cells, a PC-indexed register-type predictor, and
  repair micro-ops for single-use mispredictions.

Both expose the same interface to the pipeline (:class:`~repro.core.renamer.BaseRenamer`),
so the processor is scheme-agnostic.
"""

from repro.core.free_list import BankedFreeList
from repro.core.map_table import MapTable
from repro.core.prt import PhysicalRegisterTable
from repro.core.register_file import BankedRegisterFile, RegisterFileConfig
from repro.core.type_predictor import RegisterTypePredictor
from repro.core.renamer import BaseRenamer, RenameStats, Tag
from repro.core.conventional import ConventionalRenamer
from repro.core.sharing import SharingRenamer

__all__ = [
    "BankedFreeList",
    "MapTable",
    "PhysicalRegisterTable",
    "BankedRegisterFile",
    "RegisterFileConfig",
    "RegisterTypePredictor",
    "BaseRenamer",
    "RenameStats",
    "Tag",
    "ConventionalRenamer",
    "SharingRenamer",
]
