"""Register map tables (rename-time and retirement)."""

from __future__ import annotations

from typing import Optional

#: Per-class rename tag: (physical register id, version).
PhysTag = tuple[int, int]


class MapTable:
    """Logical-register to (physical register, version) mapping.

    The conventional scheme always uses version 0; the sharing scheme uses
    the PRT counter value at rename time.  Two instances exist per register
    class: the speculative rename map and the retirement map; precise-state
    recovery copies the latter onto the former (plus shadow-cell value
    recovery handled by the renamer).
    """

    __slots__ = ("entries",)

    def __init__(self, num_logical: int) -> None:
        self.entries: list[Optional[PhysTag]] = [None] * num_logical

    def get(self, logical: int) -> PhysTag:
        tag = self.entries[logical]
        if tag is None:
            raise AssertionError(f"logical register {logical} unmapped")
        return tag

    def set(self, logical: int, tag: PhysTag) -> None:
        self.entries[logical] = tag

    def copy_from(self, other: "MapTable") -> None:
        self.entries = list(other.entries)

    def snapshot(self) -> list[Optional[PhysTag]]:
        return list(self.entries)

    def physical_regs(self) -> set[int]:
        return {tag[0] for tag in self.entries if tag is not None}

    def diff_count(self, other: "MapTable") -> int:
        """Number of logical registers whose mapping differs (recovery cost)."""
        return sum(1 for a, b in zip(self.entries, other.entries) if a != b)

    def __len__(self) -> int:
        return len(self.entries)
