"""Free lists for the multi-bank register file."""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.register_file import RegisterFileConfig


class BankedFreeList:
    """One free list per bank, with closest-bank fallback allocation.

    Per Section IV-D: "If there are no free registers of the predicted
    type, a register with the closest number of shadow cells will be
    allocated."  Ties between equally distant banks are broken toward more
    shadow cells (reuse opportunity is never lost by over-provisioning,
    only by under-provisioning).
    """

    def __init__(self, config: RegisterFileConfig) -> None:
        self.config = config
        self._free: list[deque[int]] = [
            deque(config.bank_range(bank)) for bank in range(config.num_banks)
        ]
        self._count = config.total_regs
        #: bank id per physical register (bank_of is O(banks) per call)
        self._bank_of = tuple(
            config.bank_of(phys) for phys in range(config.total_regs)
        )
        #: membership bitmap mirroring the deques (O(1) double-free check)
        self._is_free = [True] * config.total_regs
        #: per-bank fallback orders, precomputed
        self._fallback = tuple(
            tuple(self.fallback_order(bank)) for bank in range(config.num_banks)
        )

    # ------------------------------------------------------------------ queries
    def free_count(self, bank: Optional[int] = None) -> int:
        if bank is None:
            return self._count
        return len(self._free[bank])

    def has_any(self) -> bool:
        return any(self._free)

    def fallback_order(self, bank: int) -> list[int]:
        """Banks to try, preferred first."""
        banks = range(self.config.num_banks)
        return sorted(banks, key=lambda b: (abs(b - bank), -b))

    # ------------------------------------------------------------------ alloc
    def allocate(self, bank: int) -> Optional[tuple[int, int]]:
        """Allocate preferring ``bank``; returns (phys, actual_bank) or None."""
        free = self._free
        for candidate in self._fallback[bank]:
            if free[candidate]:
                self._count -= 1
                phys = free[candidate].popleft()
                self._is_free[phys] = False
                return phys, candidate
        return None

    def release(self, phys: int) -> None:
        if self._is_free[phys]:
            raise AssertionError(f"double free of p{phys}")
        self._free[self._bank_of[phys]].append(phys)
        self._is_free[phys] = True
        self._count += 1

    def rebuild(self, live: set[int]) -> None:
        """Recovery: the free lists become exactly the non-live registers."""
        is_free = self._is_free
        for bank in range(self.config.num_banks):
            self._free[bank] = deque(
                phys for phys in self.config.bank_range(bank) if phys not in live
            )
        for phys in range(self.config.total_regs):
            is_free[phys] = phys not in live
        self._count = sum(len(q) for q in self._free)

    def contains(self, phys: int) -> bool:
        return self._is_free[phys]
