"""Free lists for the multi-bank register file."""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.register_file import RegisterFileConfig


class BankedFreeList:
    """One free list per bank, with closest-bank fallback allocation.

    Per Section IV-D: "If there are no free registers of the predicted
    type, a register with the closest number of shadow cells will be
    allocated."  Ties between equally distant banks are broken toward more
    shadow cells (reuse opportunity is never lost by over-provisioning,
    only by under-provisioning).
    """

    def __init__(self, config: RegisterFileConfig) -> None:
        self.config = config
        self._free: list[deque[int]] = [
            deque(config.bank_range(bank)) for bank in range(config.num_banks)
        ]
        self._count = config.total_regs

    # ------------------------------------------------------------------ queries
    def free_count(self, bank: Optional[int] = None) -> int:
        if bank is None:
            return self._count
        return len(self._free[bank])

    def has_any(self) -> bool:
        return any(self._free)

    def fallback_order(self, bank: int) -> list[int]:
        """Banks to try, preferred first."""
        banks = range(self.config.num_banks)
        return sorted(banks, key=lambda b: (abs(b - bank), -b))

    # ------------------------------------------------------------------ alloc
    def allocate(self, bank: int) -> Optional[tuple[int, int]]:
        """Allocate preferring ``bank``; returns (phys, actual_bank) or None."""
        for candidate in self.fallback_order(bank):
            if self._free[candidate]:
                self._count -= 1
                return self._free[candidate].popleft(), candidate
        return None

    def release(self, phys: int) -> None:
        bank = self.config.bank_of(phys)
        if phys in self._free[bank]:
            raise AssertionError(f"double free of p{phys}")
        self._free[bank].append(phys)
        self._count += 1

    def rebuild(self, live: set[int]) -> None:
        """Recovery: the free lists become exactly the non-live registers."""
        for bank in range(self.config.num_banks):
            self._free[bank] = deque(
                phys for phys in self.config.bank_range(bank) if phys not in live
            )
        self._count = sum(len(q) for q in self._free)

    def contains(self, phys: int) -> bool:
        return phys in self._free[self.config.bank_of(phys)]
