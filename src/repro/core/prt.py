"""Physical Register Table (PRT) — Section IV-A / Figure 4(b).

One entry per physical register holding:

* the **Read bit** — set when the *current* version of the register has
  been renamed as a source by at least one in-flight or committed
  instruction; a clear Read bit identifies the first consumer of a value;
* the **N-bit version counter** (2 bits in the paper) — appended to the
  physical register id in rename tags so the issue queue can distinguish up
  to ``2**N`` values sharing one register;
* bookkeeping for the register-type predictor: which predictor entry
  allocated this register and whether an extra (mispredicted) use was
  observed during its lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: bound on the per-register consumer training log
LOG_CAP = 16


@dataclass(slots=True)
class PRTEntry:
    read_bit: bool = False
    version: int = 0  # the N-bit counter: index of the current (newest) version
    alloc_index: int = -1  # predictor entry used to allocate this register
    #: the allocation-time single-use prediction (predicted bank > 0); kept
    #: separately from the actual bank because fallback allocation may put
    #: a not-predicted-single-use value into a shadow bank — such registers
    #: must not be speculatively reused through the predicted path
    predicted_single_use: bool = False
    extra_use: bool = False  # single-use misprediction observed this lifetime
    lost_reuse: int = 0  # reuse opportunities lost to missing shadow cells
    #: consumer-predictor training log: (consumer pc, version, reused?)
    consumers_log: list = field(default_factory=list)
    #: versions observed with more than one consumer
    multi_use_versions: set = field(default_factory=set)


class PhysicalRegisterTable:
    """PRT for one register class."""

    def __init__(self, num_regs: int, counter_bits: int = 2) -> None:
        self.num_regs = num_regs
        self.counter_bits = counter_bits
        self.max_version = (1 << counter_bits) - 1
        self.entries = [PRTEntry() for _ in range(num_regs)]

    def __getitem__(self, phys: int) -> PRTEntry:
        return self.entries[phys]

    def reset_entry(
        self, phys: int, alloc_index: int, predicted_single_use: bool = False
    ) -> None:
        """New allocation: Read bit and counter are cleared (Section IV-A2)."""
        entry = self.entries[phys]
        entry.read_bit = False
        entry.version = 0
        entry.alloc_index = alloc_index
        entry.predicted_single_use = predicted_single_use
        entry.extra_use = False
        entry.lost_reuse = 0
        entry.consumers_log = []
        entry.multi_use_versions = set()

    def mark_read(self, phys: int) -> bool:
        """Set the Read bit; returns its previous value."""
        entry = self.entries[phys]
        previous = entry.read_bit
        entry.read_bit = True
        return previous

    def reuse(self, phys: int) -> int:
        """Advance to the next version (a reuse); returns the new version.

        The Read bit is cleared: the new version has no consumers yet.
        """
        entry = self.entries[phys]
        if entry.version >= self.max_version:
            raise AssertionError(f"reuse of p{phys} with saturated counter")
        entry.version += 1
        entry.read_bit = False
        return entry.version

    def saturated(self, phys: int) -> bool:
        return self.entries[phys].version >= self.max_version

    def restore(self, phys: int, version: int) -> None:
        """Precise-state recovery: roll the entry back to a committed version.

        The Read bit is set conservatively — the committed value may still
        have unseen consumers after the replayed instructions, so it must
        not be treated as never-read (reuse is merely inhibited; this is
        safe, never incorrect).
        """
        entry = self.entries[phys]
        entry.version = version
        entry.read_bit = True

    def corrupt(self, phys: int, *, version: Optional[int] = None,
                read_bit: Optional[bool] = None) -> tuple[int, bool]:
        """Fault injection: force the version counter and/or Read bit.

        Bypasses every protocol check (saturation, walk-back ordering) —
        the point is to model a bit flip in the PRT SRAM itself and let the
        campaign observe whether the invariant checker / oracle surfaces
        it, or whether the repair machinery masks it.  Returns the entry's
        previous ``(version, read_bit)`` for the injection record.
        """
        entry = self.entries[phys]
        previous = (entry.version, entry.read_bit)
        if version is not None:
            entry.version = version
        if read_bit is not None:
            entry.read_bit = read_bit
        return previous
