"""Register type predictor — Section IV-D / Figure 7.

A 512-entry table of 2-bit counters indexed by a hash of the allocating
instruction's PC.  The entry value *is* the predicted bank: ``00`` means a
normal register (implicitly predicting the value is not single-use), and
``01``/``10``/``11`` predict registers with 1/2/3 shadow cells (the value
is predicted to be reused that many times).

Update rules, verbatim from the paper:

* at release, if not all allocated shadow copies were used, the entry that
  allocated the register is decremented;
* if a register predicted single-use is detected to be used more than
  once, the entry is reset to zero;
* if a first-use reuse attempt fails because the register has no free
  shadow cell, the entry is incremented so the next allocation gets a
  register with more shadow copies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PredictorStats:
    predictions: int = 0
    releases: int = 0
    exact_hits: int = 0  # predicted reuse count == actual reuse count
    # Figure 12 categories (classified at release):
    reuse_correct: int = 0  # predicted reused, was reused, no extra consumer
    reuse_incorrect: int = 0  # reused but an extra consumer appeared (repair)
    no_reuse_correct: int = 0  # predicted not reused, no reuse opportunity lost
    no_reuse_incorrect: int = 0  # reuse opportunity lost for lack of shadow cells
    reuse_unused: int = 0  # shadow cells allocated but never used (harmless)


class RegisterTypePredictor:
    """PC-indexed 2-bit bank predictor for new allocations."""

    def __init__(self, entries: int = 512, num_banks: int = 4) -> None:
        if entries & (entries - 1):
            raise ValueError("predictor size must be a power of two")
        self.entries = entries
        self.mask = entries - 1
        self.max_value = num_banks - 1
        self.table = [0] * entries
        self.stats = PredictorStats()

    def index_of(self, pc: int) -> int:
        """Simple hash of the PC (low bits folded with higher bits)."""
        return (pc ^ (pc >> 9)) & self.mask

    def predict(self, pc: int) -> tuple[int, int]:
        """Predicted bank for a new allocation; returns (bank, entry index)."""
        index = self.index_of(pc)
        self.stats.predictions += 1
        return self.table[index], index

    # ------------------------------------------------------------------ updates
    def on_release(
        self,
        alloc_index: int,
        predicted_bank: int,
        actual_reuses: int,
        extra_use: bool,
        lost_reuse: int,
    ) -> None:
        """Register released: train the allocating entry and classify (Fig 12)."""
        if alloc_index < 0:
            return  # initial-state register: no allocating prediction to train
        self.stats.releases += 1
        if actual_reuses == predicted_bank and not extra_use and lost_reuse == 0:
            self.stats.exact_hits += 1

        # --- Figure 12 classification --------------------------------------
        if extra_use:
            self.stats.reuse_incorrect += 1
        elif predicted_bank > 0 and actual_reuses > 0:
            self.stats.reuse_correct += 1
        elif predicted_bank > 0:
            self.stats.reuse_unused += 1
        elif lost_reuse > 0:
            self.stats.no_reuse_incorrect += 1
        else:
            self.stats.no_reuse_correct += 1

        # --- training -------------------------------------------------------
        if extra_use:
            self.table[alloc_index] = 0
        elif predicted_bank > 0 and actual_reuses < predicted_bank:
            self.table[alloc_index] = max(0, self.table[alloc_index] - 1)

    def on_shadow_starvation(self, alloc_index: int) -> None:
        """First-use reuse attempt failed: no free shadow cell (increment)."""
        if alloc_index >= 0:
            self.table[alloc_index] = min(self.max_value, self.table[alloc_index] + 1)

    def on_extra_use(self, alloc_index: int) -> None:
        """Register predicted single-use seen with a second consumer (reset)."""
        if alloc_index >= 0:
            self.table[alloc_index] = 0


@dataclass
class SingleUseStats:
    predictions: int = 0
    predicted_yes: int = 0
    confirmed_good: int = 0
    confirmed_bad: int = 0
    missed: int = 0  # denied a reuse that turned out to be single-use


class SingleUsePredictor:
    """Consumer-PC-indexed single-use predictor (Section IV-A2).

    When the first consumer of a value does *not* redefine the value's
    logical register, this predictor decides whether the consuming
    instruction is the value's only consumer and the physical register can
    be speculatively reused.  2-bit counters, initialised weakly-taken so
    cold sites speculate; sites whose reuses get repaired drift to
    not-taken, sites whose values are confirmed single-use saturate up.
    """

    def __init__(self, entries: int = 512, init: int = 2) -> None:
        if entries & (entries - 1):
            raise ValueError("predictor size must be a power of two")
        self.mask = entries - 1
        self.table = [init] * entries
        self.stats = SingleUseStats()

    def index_of(self, pc: int) -> int:
        return (pc ^ (pc >> 9)) & self.mask

    def predict(self, pc: int) -> bool:
        self.stats.predictions += 1
        yes = self.table[self.index_of(pc)] >= 2
        if yes:
            self.stats.predicted_yes += 1
        return yes

    def train_good(self, pc: int, was_denied: bool = False) -> None:
        """The value this consumer read turned out to be single-use."""
        index = self.index_of(pc)
        self.table[index] = min(3, self.table[index] + 1)
        if was_denied:
            self.stats.missed += 1
        else:
            self.stats.confirmed_good += 1

    def train_bad(self, pc: int) -> None:
        """A reuse by this consumer was repaired (extra consumer appeared)."""
        index = self.index_of(pc)
        self.table[index] = max(0, self.table[index] - 1)
        self.stats.confirmed_bad += 1
