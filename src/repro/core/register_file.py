"""Multi-bank register file with shadow cells.

The paper's register file (Section IV-C, Figure 5) is split into four
banks: a conventional bank (no shadow cells) and banks whose registers
embed one, two or three shadow cells.  A register in an *n*-shadow bank can
hold up to *n+1* versions simultaneously: the newest in the directly
accessible main cells, older ones in the port-independent shadow cells.

In simulation we store every live ``(physical register, version)`` value so
that (a) issue-time operand verification can check that renaming never
corrupts dataflow, and (b) precise-exception recovery can restore older
versions exactly as the shadow-cell hardware would.  Capacity constraints
(a register can only be reused while it has free shadow cells) are enforced
by the renamer at rename time, mirroring the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

Value = Union[int, float]


@dataclass(frozen=True)
class RegisterFileConfig:
    """Sizes of the four banks, ordered by shadow-cell count (0,1,2,3).

    The baseline configuration is expressed as a single conventional bank:
    ``RegisterFileConfig.flat(n)``.
    """

    bank_sizes: tuple[int, ...] = (28, 4, 4, 4)

    @staticmethod
    def flat(num_regs: int) -> "RegisterFileConfig":
        return RegisterFileConfig(bank_sizes=(num_regs,))

    @property
    def total_regs(self) -> int:
        return sum(self.bank_sizes)

    @property
    def num_banks(self) -> int:
        return len(self.bank_sizes)

    def shadow_cells_of_bank(self, bank: int) -> int:
        return bank  # bank index == number of shadow cells by construction

    def bank_of(self, phys: int) -> int:
        if phys < 0:
            raise ValueError(f"negative physical register {phys}")
        upper = 0
        for bank, size in enumerate(self.bank_sizes):
            upper += size
            if phys < upper:
                return bank
        raise ValueError(f"physical register {phys} out of range")

    def shadow_cells_of(self, phys: int) -> int:
        return self.shadow_cells_of_bank(self.bank_of(phys))

    def bank_range(self, bank: int) -> range:
        start = sum(self.bank_sizes[:bank])
        return range(start, start + self.bank_sizes[bank])

    @property
    def total_shadow_cells(self) -> int:
        return sum(bank * size for bank, size in enumerate(self.bank_sizes))


class BankedRegisterFile:
    """Value storage for one register class (INT or FP).

    Values are stored per register as ``{phys: {version: value}}`` so
    releasing a register (``drop_register``, on every allocation/release)
    and discarding squashed versions (``drop_above``) touch only that
    register's handful of versions instead of scanning the whole file.
    Negative ``phys`` ids are the auxiliary registers used by
    single-use-misprediction repair micro-ops (paper Figure 8) and have no
    capacity constraint.
    """

    def __init__(self, config: RegisterFileConfig) -> None:
        self.config = config
        self._values: dict[int, dict[int, Value]] = {}
        #: capacity (versions) per physical register, indexed by phys id
        self._capacity = tuple(
            config.shadow_cells_of(phys) + 1 for phys in range(config.total_regs)
        )

    def write(self, phys: int, version: int, value: Value) -> None:
        if phys >= 0 and version >= self._capacity[phys]:
            raise AssertionError(
                f"write of version {version} exceeds capacity "
                f"{self._capacity[phys]} of p{phys}"
            )
        versions = self._values.get(phys)
        if versions is None:
            self._values[phys] = {version: value}
        else:
            versions[version] = value

    def read(self, phys: int, version: int) -> Value:
        try:
            return self._values[phys][version]
        except KeyError:
            raise AssertionError(f"read of unwritten register p{phys}.{version}") from None

    def has(self, phys: int, version: int) -> bool:
        versions = self._values.get(phys)
        return versions is not None and version in versions

    def drop_register(self, phys: int) -> None:
        """Free all versions of ``phys`` (called when the register is released)."""
        self._values.pop(phys, None)

    def drop_above(self, phys: int, version: int) -> None:
        """Discard squashed speculative versions newer than ``version``."""
        versions = self._values.get(phys)
        if not versions:
            return
        for v in [v for v in versions if v > version]:
            del versions[v]

    def live_version_counts(self) -> dict[int, int]:
        """Map phys -> number of live versions (for Figure 9 demand sampling)."""
        return {
            phys: len(versions)
            for phys, versions in self._values.items()
            if phys >= 0 and versions
        }

    # ------------------------------------------------------------ fault injection
    def cells(self) -> list[tuple[int, int, Value]]:
        """Every stored (phys, version, value) cell, in deterministic order.

        Fault-injection target enumeration (:mod:`repro.faults`): the list
        covers main cells and shadow cells alike — classification into
        live/shadow is the renamer's job, which knows the maps and PRT.
        Auxiliary (negative-id) repair registers are excluded; they are not
        architecturally addressable storage.
        """
        return sorted(
            (phys, version, value)
            for phys, versions in self._values.items() if phys >= 0
            for version, value in versions.items()
        )

    def corrupt(self, phys: int, version: int, value: Value) -> None:
        """Overwrite one storage cell in place, modelling a transient fault.

        Unlike :meth:`write` this bypasses the version-capacity assertion —
        a particle strike does not consult the allocation protocol — but it
        only mutates cells that already exist; planting state into unused
        storage is done with :meth:`write` by the injector for free
        registers (version 0 always fits).
        """
        versions = self._values.get(phys)
        if versions is None or version not in versions:
            raise KeyError(f"no stored cell p{phys}.{version} to corrupt")
        versions[version] = value
