"""Read-port-reduction schemes for the physical register file.

The source paper's equal-area comparison gives the conventional baseline
a full 8-read-port register file.  "Efficient Read-Port-Count Reduction
Schemes for the Centralized Physical Register File" (arXiv 2502.00147)
shows that much of that port area is wasted: most operands are caught on
the bypass network, and the reads that do reach the file cluster poorly
enough that a banked file with a small arbiter loses little performance.
This module implements both levers as an issue-stage layer the pipeline
composes with :class:`~repro.core.register_file.BankedRegisterFile`:

* ``bypass_filter`` — operands whose producer wrote back within the
  last ``rf_bypass_depth`` cycles are satisfied from the bypass network
  and never claim a physical read port; the remaining reads contend for
  a *halved* flat port budget (``rf_read_ports``).
* ``banked_arbiter`` — the register file is split into
  ``rf_read_banks`` banks of ``rf_bank_read_ports`` read ports each
  (bank = physical register number modulo bank count, per class).  A
  cycle-accurate arbiter spreads each instruction's reads over up to
  ``rf_max_read_delay`` extra cycles; demand that cannot be scheduled
  within that window stalls the instruction in the issue queue.

Both schemes expose one interface to the issue stage::

    scheme.begin_cycle(cycle)            # once per issue cycle
    plan = scheme.plan(dyn, cycle)       # None -> port stall, skip dyn
    delay = scheme.commit(plan, stats)   # after FU grant; extra latency

plus ``note_writeback(tag, cycle)`` (feeds the bypass tracker from the
writeback stage) and ``flush()`` (pipeline squash).  ``plan`` never
mutates state, so a rejected or FU-stalled instruction leaves no trace;
``commit`` does all accounting (``SimStats.rf_port_*`` counters).

Deadlock freedom: the arbiter always grants an instruction whose
demanded banks are all *fresh* (no reads committed this cycle), even
when its intrinsic demand exceeds the delay window — combined with the
oldest-first ready list this guarantees the head instruction issues, so
a port conflict can only defer work, never wedge the pipeline.  The same
rule means a cycle in which *nothing* issues charges no port stalls,
which keeps the event loop's quiet-cycle skip and the generated kernels'
busy-stall skip bit-identical to the naive reference loop.
"""

from __future__ import annotations

from typing import Optional

#: the recognised values of ``MachineConfig.rf_port_scheme``
PORT_SCHEMES = ("none", "bypass_filter", "banked_arbiter")


class BypassTracker:
    """Recent writeback tags, queryable as "is this operand on the bypass
    network?".

    Keeps one tag set per cycle for the last ``depth`` cycles; stale
    cycles are pruned lazily when a new cycle's set is created, so
    skipped quiet windows cost nothing.  ``depth <= 0`` disables
    bypassing entirely (every read charges a port).
    """

    __slots__ = ("depth", "_by_cycle")

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self._by_cycle: dict[int, set] = {}

    def note_write(self, tag, cycle: int) -> None:
        if self.depth <= 0:
            return
        bucket = self._by_cycle.get(cycle)
        if bucket is None:
            bucket = self._by_cycle[cycle] = set()
            horizon = cycle - self.depth
            for old in [c for c in self._by_cycle if c <= horizon]:
                del self._by_cycle[old]
        bucket.add(tag)

    def is_bypassed(self, tag, cycle: int) -> bool:
        """True when ``tag`` wrote back within ``depth`` cycles of
        ``cycle`` (writeback runs before issue within a cycle, so depth 1
        covers same-cycle forwarding)."""
        if self.depth <= 0:
            return False
        by_cycle = self._by_cycle
        for c in range(cycle - self.depth + 1, cycle + 1):
            bucket = by_cycle.get(c)
            if bucket is not None and tag in bucket:
                return True
        return False

    def flush(self) -> None:
        self._by_cycle.clear()


class BankPortArbiter:
    """Cycle-accurate read-port arbiter for a banked register file.

    Tracks per-(class, bank) read demand within the current cycle.  For
    a candidate instruction, :meth:`plan` computes the extra read latency
    its worst bank would need — demand already committed this cycle plus
    its own reads, spread over ``ports_per_bank`` reads per cycle::

        delay(bank) = ceil((used + wanted) / ports) - 1

    and denies the grant (returns None) when that exceeds ``max_delay``,
    *unless* every demanded bank is still fresh this cycle (the
    head-of-line progress guarantee — see the module docstring).
    :meth:`commit` claims the ports and returns the charged delay.
    """

    __slots__ = ("banks", "ports", "max_delay", "_used", "_cycle")

    def __init__(self, banks: int, ports_per_bank: int,
                 max_delay: int) -> None:
        if banks < 1 or ports_per_bank < 1:
            raise ValueError("banked arbiter needs >= 1 bank and port")
        self.banks = banks
        self.ports = ports_per_bank
        self.max_delay = max_delay
        self._used: dict[tuple, int] = {}
        self._cycle = -1

    def begin_cycle(self, cycle: int) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._used.clear()

    def plan(self, tags) -> Optional[tuple]:
        """``(delay, demand)`` for reading ``tags`` this cycle, or None.

        ``demand`` maps (class, bank) -> read count; ``delay`` is the
        worst bank's extra latency.  Pure — commits nothing.
        """
        banks = self.banks
        demand: dict[tuple, int] = {}
        for tag in tags:
            key = (tag[0], tag[1] % banks)
            demand[key] = demand.get(key, 0) + 1
        if not demand:
            return (0, demand)
        used = self._used
        ports = self.ports
        worst = 0
        fresh = True
        for key, wanted in demand.items():
            prior = used.get(key, 0)
            if prior:
                fresh = False
            delay = (prior + wanted + ports - 1) // ports - 1
            if delay > worst:
                worst = delay
        if worst > self.max_delay and not fresh:
            return None
        return (worst, demand)

    def commit(self, plan: tuple) -> int:
        delay, demand = plan
        used = self._used
        for key, wanted in demand.items():
            used[key] = used.get(key, 0) + wanted
        return delay


class BypassFilterPorts:
    """``rf_port_scheme="bypass_filter"``: bypass-aware port filtering.

    Operands on the bypass network read nothing; the rest contend for
    the flat ``rf_read_ports`` budget per register class per cycle (the
    same accounting the raw ``rf_read_ports`` knob applies, minus the
    bypassed reads — which is exactly what lets the area model halve the
    port count).
    """

    scheme = "bypass_filter"

    __slots__ = ("read_ports", "tracker", "_used")

    def __init__(self, read_ports: Optional[int], bypass_depth: int) -> None:
        self.read_ports = read_ports
        self.tracker = BypassTracker(bypass_depth)
        self._used = [0, 0]

    def begin_cycle(self, cycle: int) -> None:
        self._used[0] = 0
        self._used[1] = 0

    def plan(self, dyn, cycle: int) -> Optional[tuple]:
        tracker = self.tracker
        n0 = n1 = bypassed = 0
        for tag in dyn.src_tags:
            if tracker.is_bypassed(tag, cycle):
                bypassed += 1
            elif tag[0]:
                n1 += 1
            else:
                n0 += 1
        read_ports = self.read_ports
        if read_ports is not None:
            used = self._used
            if used[0] + n0 > read_ports or used[1] + n1 > read_ports:
                return None
        return (n0, n1, bypassed)

    def commit(self, plan: tuple, stats) -> int:
        n0, n1, bypassed = plan
        used = self._used
        used[0] += n0
        used[1] += n1
        stats.rf_port_reads += n0 + n1
        stats.rf_bypass_reads += bypassed
        return 0

    def note_writeback(self, tag, cycle: int) -> None:
        self.tracker.note_write(tag, cycle)

    def flush(self) -> None:
        self.tracker.flush()


class BankedArbiterPorts:
    """``rf_port_scheme="banked_arbiter"``: delayed/banked reads behind a
    cycle-accurate port arbiter (stalls on over-window conflicts, charges
    the residual delay as extra issue-to-complete latency)."""

    scheme = "banked_arbiter"

    __slots__ = ("arbiter",)

    def __init__(self, banks: int, ports_per_bank: int,
                 max_delay: int) -> None:
        self.arbiter = BankPortArbiter(banks, ports_per_bank, max_delay)

    def begin_cycle(self, cycle: int) -> None:
        self.arbiter.begin_cycle(cycle)

    def plan(self, dyn, cycle: int) -> Optional[tuple]:
        return self.arbiter.plan(dyn.src_tags)

    def commit(self, plan: tuple, stats) -> int:
        delay = self.arbiter.commit(plan)
        _, demand = plan
        reads = 0
        for wanted in demand.values():
            reads += wanted
        stats.rf_port_reads += reads
        if delay:
            stats.rf_delayed_reads += 1
            stats.rf_delay_cycles += delay
        return delay

    def note_writeback(self, tag, cycle: int) -> None:
        pass

    def flush(self) -> None:
        pass


def make_port_scheme(config):
    """The port-scheme object for ``config``, or None for ``"none"``."""
    scheme = config.rf_port_scheme
    if scheme == "none":
        return None
    if scheme == "bypass_filter":
        return BypassFilterPorts(config.rf_read_ports,
                                 config.rf_bypass_depth)
    if scheme == "banked_arbiter":
        return BankedArbiterPorts(config.rf_read_banks,
                                  config.rf_bank_read_ports,
                                  config.rf_max_read_delay)
    raise ValueError(f"unknown rf_port_scheme {scheme!r}; "
                     f"expected one of {PORT_SCHEMES}")


def apply_port_scheme(config, port_scheme: str):
    """A copy of ``config`` running under ``port_scheme``.

    This is the canonical experiment parameterisation: the bypass filter
    halves the flat read-port budget (8 -> 4, matching the halved-port
    area model in :mod:`repro.area.cacti_lite`); the banked arbiter uses
    the config's bank/port/delay defaults (4 banks x 2 ports, one cycle
    of slack).  ``"none"`` returns ``config`` unchanged.
    """
    from dataclasses import replace

    if port_scheme == "none":
        return config
    if port_scheme == "bypass_filter":
        return replace(config, rf_port_scheme="bypass_filter",
                       rf_read_ports=4)
    if port_scheme == "banked_arbiter":
        return replace(config, rf_port_scheme="banked_arbiter")
    raise ValueError(f"unknown rf_port_scheme {port_scheme!r}; "
                     f"expected one of {PORT_SCHEMES}")
