"""Common renamer interface and statistics.

The pipeline is scheme-agnostic: it talks to a :class:`BaseRenamer` for
renaming, commit-time release, precise-state recovery and register-file
value access.  Rename tags are ``(register class, physical register id,
version)``; the conventional scheme always uses version 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.isa.dyninst import DynInst
from repro.isa.registers import RegClass

#: Global rename tag: (register class value, physical register id, version).
Tag = tuple[int, int, int]

Value = Union[int, float]

#: Scoreboard readiness callback provided by the pipeline.
ReadyFn = Callable[[Tag], bool]


@dataclass
class RenameStats:
    """Counters shared by both schemes (sharing-specific ones stay zero
    for the conventional renamer)."""

    insts: int = 0
    dest_insts: int = 0
    allocations: int = 0
    allocations_per_bank: list = field(default_factory=lambda: [0, 0, 0, 0])
    fallback_allocations: int = 0  # predicted bank was empty
    reuses: int = 0
    reuses_guaranteed: int = 0  # consumer redefines the single-use register
    reuses_predicted: int = 0  # consumer relied on the single-use prediction
    lost_reuse_no_shadow: int = 0
    lost_reuse_saturated: int = 0
    lost_reuse_not_first_use: int = 0
    lost_reuse_not_predicted: int = 0  # single-use predictor said no
    repairs: int = 0  # single-use mispredictions needing value evacuation
    repair_uops: int = 0
    multi_use_detected: int = 0  # second consumer seen on a shadow-bank register
    releases: int = 0
    recoveries: int = 0
    recovered_map_entries: int = 0

    @property
    def reuse_fraction(self) -> float:
        """Fraction of destination renames that avoided an allocation."""
        return self.reuses / self.dest_insts if self.dest_insts else 0.0


class BaseRenamer:
    """Interface implemented by all renaming schemes."""

    stats: RenameStats

    #: set by schemes that need per-operand read notifications (the
    #: early-release comparator tracks pending reads)
    tracks_operand_reads = False

    #: cleared by schemes that may release a destination register before
    #: its redefining instruction commits: the value standing in the
    #: physical register file at commit time is then not guaranteed to be
    #: the committed value, and commit-time value oracles must skip it
    commit_time_value_stable = True

    def on_operand_read(self, tag: Tag) -> None:
        """Pipeline hook: a consumer read this operand at issue."""

    # --- capacity ------------------------------------------------------------
    def uops_needed(self, dyn: DynInst, is_ready: ReadyFn) -> int:
        """Repair micro-ops that renaming ``dyn`` would inject (0 if none)."""
        return 0

    def can_rename(self, dyn: DynInst) -> bool:
        """True when ``dyn`` can be renamed now (registers available/reusable)."""
        raise NotImplementedError

    # --- the rename itself -----------------------------------------------------
    def rename(self, dyn: DynInst, is_ready: ReadyFn) -> list[DynInst]:
        """Rename ``dyn``; returns injected repair micro-ops followed by ``dyn``."""
        raise NotImplementedError

    # --- commit / recovery -------------------------------------------------------
    def commit(self, dyn: DynInst) -> None:
        """Retirement-map update and physical register release."""
        raise NotImplementedError

    def recover(self) -> int:
        """Squash all speculative rename state; restore precise state.

        Returns the number of map entries that differed (each requires a
        shadow-cell recover command; the pipeline converts this into
        cycles).
        """
        raise NotImplementedError

    def squash_to(self, squashed: list[DynInst]) -> int:
        """Branch-misprediction walk-back: undo the renames of ``squashed``
        (youngest first), restoring the map to the branch's point.

        Returns the number of shadow-cell restores performed (reused
        registers rolled back a version); the pipeline converts this into
        recovery cycles.  Schemes that cannot roll back raise.
        """
        raise NotImplementedError(f"{type(self).__name__} cannot walk back")

    # --- register file values ------------------------------------------------------
    def write(self, tag: Tag, value: Value) -> None:
        raise NotImplementedError

    def read(self, tag: Tag) -> Value:
        raise NotImplementedError

    # --- sampling warmup handoff ------------------------------------------------------
    def export_predictor_state(self) -> dict:
        """Snapshot of the PC-indexed predictor tables that carry history
        across sampling windows (the register-type and single-use
        predictors).  The sampling engine hands this state from one
        detailed window's renamer to the next so predictor training
        survives functional fast-forward.  Schemes without such
        predictors return ``{}``.
        """
        return {}

    def import_predictor_state(self, state: dict) -> None:
        """Inverse of :meth:`export_predictor_state`.

        Unknown or mismatched entries are ignored — importing a foreign
        scheme's state is a no-op, never an error.
        """

    # --- setup / introspection --------------------------------------------------------
    def initial_tags(self) -> list[tuple[Tag, Value]]:
        """Initial (tag, value) pairs for the committed architectural state."""
        raise NotImplementedError

    def committed_tag(self, ref) -> Tag:
        """Retirement-map tag of a logical register (for state verification)."""
        raise NotImplementedError

    def free_registers(self, cls: RegClass) -> int:
        raise NotImplementedError

    def live_version_histogram(self) -> dict[int, int]:
        """Histogram: versions-live-per-register -> count (Figure 9 sampling)."""
        return {}

    # --- fault injection ------------------------------------------------------
    def fault_targets(self) -> dict[str, list[Tag]]:
        """Classified storage cells for the fault-injection campaign.

        Returns ``{"live": [...], "shadow": [...], "free": [...]}`` where
        each entry is a rename tag:

        * ``live`` — cells a correct execution may still read: referenced
          by the rename or retirement map, or the current PRT version
          (an in-flight destination).  Flipping one must be *detected*
          (operand verify, oracle, or final-state check) unless the value
          is dead by luck (overwritten/released before any further read).
        * ``shadow`` — older versions held only in shadow cells, no longer
          referenced by either map.  With no squash able to roll back to
          them, flips must be masked; a surviving in-flight consumer tag
          turns the flip into a detected operand mismatch instead.
        * ``free`` — registers on the free list (no stored value; version
          0 placeholder).  The injector plants garbage there; allocation
          or writeback must overwrite it before any consumer reads.

        Schemes without classified storage return empty lists.
        """
        return {"live": [], "shadow": [], "free": []}
