"""The proposed renaming scheme: physical register sharing (Section IV).

Implements the full mechanism of the paper:

* **source renaming** reads the map table, then the PRT: the Read bit of
  the current version is set, and the tag handed to the issue queue is
  ``(phys, version)``;
* **destination renaming** reuses a source's physical register instead of
  allocating when the instruction is the *first* consumer of the value
  (Read bit clear), the counter is not saturated, a shadow cell is free to
  hold the overwritten value, and the instruction is the *last* consumer —
  guaranteed when it redefines the same logical register, otherwise
  predicted (the allocation-time bank choice of the register-type
  predictor is the single-use prediction);
* **single-use misprediction repair** (Section IV-D1): when a renamed
  source's mapping points to an old version of a reused register, the
  stale value is evacuated to a freshly allocated register by injected
  move micro-ops — one µop if the reusing instruction has not executed
  yet, three if the value is already check-pointed in a shadow cell
  (Figure 8);
* **release** via retirement-map reference counting: a physical register
  returns to its bank's free list when the last retirement-map entry
  referencing it is overwritten by a committed redefiner — this mimics
  release-on-rename for reuses and release-on-commit otherwise
  (Section IV-A3);
* **precise-state recovery**: the rename map is restored from the
  retirement map; registers whose speculative versions were squashed are
  rolled back (shadow-cell recover commands), and the free lists are
  rebuilt from the set of committed-live registers (Section IV-B).
"""

from __future__ import annotations

from typing import Optional

from repro.core.free_list import BankedFreeList
from repro.core.map_table import MapTable
from repro.core.register_file import BankedRegisterFile, RegisterFileConfig
from repro.core.renamer import BaseRenamer, ReadyFn, RenameStats, Tag, Value
from repro.core.prt import LOG_CAP, PhysicalRegisterTable
from repro.core.type_predictor import RegisterTypePredictor, SingleUsePredictor
from repro.isa.dyninst import DynInst
from repro.isa.opcodes import Op
from repro.isa.registers import FP_REGS, INT_REGS, RegClass, RegRef


class _Domain:
    """Per-register-class rename state for the sharing scheme."""

    def __init__(self, num_logical: int, config: RegisterFileConfig, counter_bits: int) -> None:
        if config.total_regs < num_logical + 1:
            raise ValueError(
                f"need at least {num_logical + 1} physical registers, "
                f"got {config.total_regs}"
            )
        self.num_logical = num_logical
        self.config = config
        self.rf = BankedRegisterFile(config)
        self.map = MapTable(num_logical)
        self.retire_map = MapTable(num_logical)
        self.free = BankedFreeList(config)
        self.prt = PhysicalRegisterTable(config.total_regs, counter_bits)
        self.refcount = [0] * config.total_regs
        self._temp_counter = 0
        #: shadow cells per physical register (shadow_cells_of is O(banks))
        self.shadow_of = tuple(
            config.shadow_cells_of(phys) for phys in range(config.total_regs)
        )

        # Initial committed state: one register per logical, preferring the
        # conventional bank.  Read bits start set (the initial values'
        # consumer history is unknown, so reuse is inhibited — safe).
        for logical in range(num_logical):
            allocation = self.free.allocate(0)
            assert allocation is not None
            phys, _bank = allocation
            self.map.set(logical, (phys, 0))
            self.retire_map.set(logical, (phys, 0))
            self.refcount[phys] = 1
            entry = self.prt[phys]
            entry.read_bit = True
            entry.version = 0
            entry.alloc_index = -1

    def next_temp(self) -> int:
        """Fresh auxiliary-register id for repair micro-ops (negative)."""
        self._temp_counter -= 1
        return self._temp_counter


class SharingRenamer(BaseRenamer):
    """Register renaming with physical register sharing."""

    #: see ConventionalRenamer.codegen_id (exact-class kernel dispatch)
    codegen_id = "sharing"

    def __init__(
        self,
        int_config: RegisterFileConfig,
        fp_config: RegisterFileConfig,
        counter_bits: int = 2,
        predictor_entries: int = 512,
        predictor: Optional[RegisterTypePredictor] = None,
    ) -> None:
        self.counter_bits = counter_bits
        self.domains = {
            RegClass.INT: _Domain(INT_REGS, int_config, counter_bits),
            RegClass.FP: _Domain(FP_REGS, fp_config, counter_bits),
        }
        #: domains indexed by RegClass.value (hot-path tag dispatch)
        self._domains_by_value = (
            self.domains[RegClass.INT], self.domains[RegClass.FP],
        )
        max_banks = max(int_config.num_banks, fp_config.num_banks)
        self.predictor = predictor or RegisterTypePredictor(
            predictor_entries, num_banks=max_banks
        )
        self.single_use = SingleUsePredictor(predictor_entries)
        self.stats = RenameStats()

    # ====================================================================== helpers
    def _single_use_prediction(self, dyn: DynInst, src_index: int,
                               dry_run: bool = False) -> bool:
        """Is ``dyn`` predicted to be the only consumer of source ``src_index``?

        Overridden by the oracle renamer; ``dry_run`` suppresses stats.
        """
        if dry_run:
            return self.single_use.table[self.single_use.index_of(dyn.pc)] >= 2
        return self.single_use.predict(dyn.pc)

    def _bank_prediction(self, dyn: DynInst) -> tuple[int, int]:
        """(predicted bank, predictor index) for a new allocation."""
        return self.predictor.predict(dyn.pc)

    def _stale(self, domain: _Domain, logical: int) -> Optional[tuple[int, int]]:
        """If the mapping of ``logical`` points below the current version,
        return (phys, stale version); else None."""
        phys, version = domain.map.entries[logical]
        if version < domain.prt.entries[phys].version:
            return phys, version
        return None

    def _reusable_via(
        self, domain: _Domain, phys: int, version: int, first_use: bool,
        guaranteed: bool, dyn: DynInst, src_index: int,
    ) -> bool:
        """Pure eligibility check (no mutation) for reuse through a source."""
        entry = domain.prt.entries[phys]
        if entry.version != version or not first_use:
            return False
        if not guaranteed and not self._single_use_prediction(dyn, src_index,
                                                              dry_run=True):
            return False  # the single-use predictor says no
        if entry.version >= domain.prt.max_version:
            return False
        return entry.version < domain.shadow_of[phys]

    # ====================================================================== capacity
    def uops_needed(self, dyn: DynInst, is_ready: ReadyFn) -> int:
        total = 0
        seen: set[tuple[int, int]] = set()
        for src in dyn.srcs:
            key = (src.cls.value, src.idx)
            if key in seen:
                continue
            seen.add(key)
            domain = self.domains[src.cls]
            stale = self._stale(domain, src.idx)
            if stale is None:
                continue
            phys, version = stale
            checkpointed = is_ready((src.cls.value, phys, version + 1))
            total += 3 if checkpointed else 1
        return total

    def can_rename(self, dyn: DynInst) -> bool:
        """Rename blocks only when no register is free *and* no reuse is
        possible (Section IV-A4).  Repairs each consume one new register."""
        domains = self._domains_by_value
        srcs = dyn.srcs
        # fast path: ample registers everywhere (the common case)
        worst_case = len(srcs) + 1
        if (domains[0].free._count >= worst_case
                and domains[1].free._count >= worst_case):
            return True
        needed = [0, 0]  # per class value
        seen: list[tuple[int, int]] = []
        repaired: list[tuple[int, int]] = []
        for src in srcs:
            cls_value = src.cls.value
            key = (cls_value, src.idx)
            if key in seen:
                continue
            seen.append(key)
            domain = domains[cls_value]
            phys, version = domain.map.entries[src.idx]
            if version < domain.prt.entries[phys].version:
                needed[cls_value] += 1
                repaired.append(key)

        dest = dyn.dest
        if dest is not None:
            dest_cls_value = dest.cls.value
            domain = domains[dest_cls_value]
            map_entries = domain.map.entries
            prt_entries = domain.prt.entries
            reusable = False
            read_track: dict[tuple[int, int], bool] = {}
            for index, src in enumerate(srcs):
                if src.cls is not dest.cls:
                    continue
                if (dest_cls_value, src.idx) in repaired:
                    continue  # never reuse through a just-repaired source
                phys, version = map_entries[src.idx]
                tag = (phys, version)
                first_use = read_track.get(tag)
                if first_use is None:
                    first_use = not prt_entries[phys].read_bit
                    read_track[tag] = first_use
                if self._reusable_via(domain, phys, version, first_use,
                                      guaranteed=src == dest,
                                      dyn=dyn, src_index=index):
                    reusable = True
                    break
            if not reusable:
                needed[dest_cls_value] += 1

        if needed[0] and domains[0].free._count < needed[0]:
            return False
        if needed[1] and domains[1].free._count < needed[1]:
            return False
        return True

    # ====================================================================== rename
    def rename(self, dyn: DynInst, is_ready: ReadyFn) -> list[DynInst]:
        self.stats.insts += 1
        uops: list[DynInst] = []
        first_use: dict[tuple[int, int, int], bool] = {}
        repaired_srcs: set[int] = set()
        src_tags: list[Tag] = []

        # ---- rename sources (and repair stale single-use mispredictions) ----
        domains = self._domains_by_value
        for index, src in enumerate(dyn.srcs):
            cls_value = src.cls.value
            domain = domains[cls_value]
            phys, version = domain.map.entries[src.idx]
            if version < domain.prt.entries[phys].version:
                uops.extend(self._repair(dyn, index, src, phys, version,
                                         is_ready))
                repaired_srcs.add(index)
                phys, version = domain.map.entries[src.idx]
            entry = domain.prt.entries[phys]
            key = (cls_value, phys, version)
            if key not in first_use:
                first_use[key] = not entry.read_bit
                if entry.read_bit and entry.version == version:
                    # a second consumer of this version
                    entry.multi_use_versions.add(version)
                    if entry.predicted_single_use:
                        self.stats.multi_use_detected += 1
                        self.predictor.on_extra_use(entry.alloc_index)
            entry.read_bit = True
            src_tags.append(key)
        dyn.src_tags = src_tags

        # ---- rename destination ------------------------------------------------
        if dyn.dest is not None:
            self.stats.dest_insts += 1
            self._rename_dest(dyn, first_use, repaired_srcs)

        uops.append(dyn)
        return uops

    def _rename_dest(
        self,
        dyn: DynInst,
        first_use: dict[tuple[int, int, int], bool],
        repaired_srcs: set[int],
    ) -> None:
        dest = dyn.dest
        domain = self._domains_by_value[dest.cls.value]
        dyn.prev_map = domain.map.entries[dest.idx]

        # candidate sources: same class, dest-matching (guaranteed) first
        srcs = dyn.srcs
        order = [i for i in range(len(srcs)) if srcs[i] == dest]
        order.extend(i for i in range(len(srcs)) if srcs[i] != dest)
        for index in order:
            src = srcs[index]
            if src.cls is not dest.cls or index in repaired_srcs:
                continue
            _cls, phys, version = dyn.src_tags[index]
            entry = domain.prt.entries[phys]
            if entry.version != version:
                continue  # stale (shouldn't happen post-repair) — be safe
            if not first_use[(src.cls.value, phys, version)]:
                if src == dest:
                    self.stats.lost_reuse_not_first_use += 1
                continue
            if (src != dest and not self._single_use_prediction(dyn, index)
                    and domain.free._count > 0):
                # predicted not to be the only consumer: do not speculate
                # (a lost opportunity if wrong — trained at release).  With
                # zero free registers the denial is overridden: rename may
                # only block when no register is free AND no reuse is
                # possible (Section IV-A4), and can_rename approved this
                # instruction under that rule — a repair µop renamed just
                # above can have both consumed the last free register and
                # trained this very PC's prediction downward, so honouring
                # the flipped prediction here would leave the destination
                # with neither a reuse nor a free register
                entry.lost_reuse += 1
                if len(entry.consumers_log) < LOG_CAP:
                    entry.consumers_log.append((dyn.pc, version, "denied_pred"))
                self.stats.lost_reuse_not_predicted += 1
                continue
            if entry.version >= domain.prt.max_version:
                self.stats.lost_reuse_saturated += 1
                continue
            if entry.version >= domain.shadow_of[phys]:
                # first+last use, but no shadow cell free: the single-use
                # prediction under-provisioned — train upward (Section IV-D)
                entry.lost_reuse += 1
                if len(entry.consumers_log) < LOG_CAP:
                    entry.consumers_log.append((dyn.pc, version, "denied_cap"))
                self.predictor.on_shadow_starvation(entry.alloc_index)
                self.stats.lost_reuse_no_shadow += 1
                continue
            # ---- reuse! -----------------------------------------------------
            new_version = domain.prt.reuse(phys)
            domain.map.set(dest.idx, (phys, new_version))
            dyn.dest_tag = (dest.cls.value, phys, new_version)
            dyn.reused_src = index
            self.stats.reuses += 1
            if src == dest:
                self.stats.reuses_guaranteed += 1
            else:
                self.stats.reuses_predicted += 1
                if len(entry.consumers_log) < LOG_CAP:
                    entry.consumers_log.append((dyn.pc, version, "reused"))
            return

        # ---- no reuse possible: allocate a new register ------------------------
        predicted_bank, pred_index = self._bank_prediction(dyn)
        bank = min(predicted_bank, domain.config.num_banks - 1)
        allocation = domain.free.allocate(bank)
        if allocation is None:
            raise AssertionError("rename called without a free register")
        phys, actual_bank = allocation
        if actual_bank != bank:
            self.stats.fallback_allocations += 1
        domain.rf.drop_register(phys)
        domain.prt.reset_entry(phys, pred_index,
                               predicted_single_use=predicted_bank > 0)
        domain.map.set(dest.idx, (phys, 0))
        dyn.dest_tag = (dest.cls.value, phys, 0)
        dyn.allocated_new = True
        dyn.alloc_bank = actual_bank
        self.stats.allocations += 1
        self.stats.allocations_per_bank[actual_bank] += 1

    # ====================================================================== repair
    def _repair(
        self,
        dyn: DynInst,
        src_index: int,
        src: RegRef,
        phys: int,
        stale_version: int,
        is_ready: ReadyFn,
    ) -> list[DynInst]:
        """Single-use misprediction: evacuate the stale value (Figure 8)."""
        domain = self.domains[src.cls]
        stale_entry = domain.prt[phys]
        stale_entry.extra_use = True
        stale_entry.multi_use_versions.add(stale_version)
        for consumer_pc, version, kind in stale_entry.consumers_log:
            if kind == "reused" and version == stale_version:
                self.single_use.train_bad(consumer_pc)
                break
        self.predictor.on_extra_use(stale_entry.alloc_index)
        self.stats.repairs += 1

        # allocate the new home for the value
        predicted_bank, pred_index = self._bank_prediction(dyn)
        bank = min(predicted_bank, domain.config.num_banks - 1)
        allocation = domain.free.allocate(bank)
        if allocation is None:
            raise AssertionError("repair without a free register")
        new_phys, _actual_bank = allocation
        domain.rf.drop_register(new_phys)
        domain.prt.reset_entry(new_phys, pred_index,
                               predicted_single_use=predicted_bank > 0)
        self.stats.allocations += 1
        self.stats.allocations_per_bank[_actual_bank] += 1

        # µop count: 3 if the reusing instruction already executed (value is
        # check-pointed in a shadow cell), else 1 (Figure 8, cases 2a / 2b)
        checkpointed = is_ready((src.cls.value, phys, stale_version + 1))
        steps = 3 if checkpointed else 1
        self.stats.repair_uops += steps

        value = dyn.src_values[src_index] if src_index < len(dyn.src_values) else None
        if value is None:
            # no recorded operand value (wrong-path consumer): the moved
            # value is meaningless, but the chain must still produce one so
            # the scoreboard/register file stay consistent
            value = 0 if src.cls is RegClass.INT else 0.0
        mov_op = Op.MOV if src.cls is RegClass.INT else Op.FMOV
        uops: list[DynInst] = []
        prev_tag: Tag = (src.cls.value, phys, stale_version)
        for step in range(steps):
            last = step == steps - 1
            uop = DynInst(
                seq=dyn.seq,
                pc=dyn.pc,
                op=mov_op,
                dest=src if last else None,
                srcs=(src,),
                micro_op=True,
                pre_renamed=True,
                wrong_path=dyn.wrong_path,
            )
            uop.src_tags = [prev_tag]
            uop.src_values = () if dyn.wrong_path else (value,)
            if last:
                uop.dest_tag = (src.cls.value, new_phys, 0)
                uop.prev_map = (phys, stale_version)
                uop.allocated_new = True
            else:
                uop.dest_tag = (src.cls.value, domain.next_temp(), 0)
            uop.result = value
            prev_tag = uop.dest_tag
            uops.append(uop)

        domain.map.set(src.idx, (new_phys, 0))
        return uops

    # ====================================================================== commit
    def commit(self, dyn: DynInst) -> None:
        dest_tag = dyn.dest_tag
        if dyn.dest is None or dest_tag is None:
            return
        domain = self._domains_by_value[dest_tag[0]]
        dest_idx = dyn.dest.idx
        old = domain.retire_map.entries[dest_idx]
        new = dest_tag[1:]
        if old == new:
            return
        domain.retire_map.entries[dest_idx] = new
        refcount = domain.refcount
        refcount[new[0]] += 1
        old_phys = old[0]
        refcount[old_phys] -= 1
        if refcount[old_phys] == 0:
            self._release(domain, old_phys)

    def _release(self, domain: _Domain, phys: int) -> None:
        entry = domain.prt[phys]
        missed_singles = 0
        for consumer_pc, version, kind in entry.consumers_log:
            if version not in entry.multi_use_versions:
                self.single_use.train_good(consumer_pc,
                                           was_denied=kind != "reused")
                if kind == "denied_pred":
                    # the paper's Figure 12 "no reuse incorrect" class is
                    # prediction-caused only; capacity starvation is an
                    # area trade-off, not a predictor error
                    missed_singles += 1
        self.predictor.on_release(
            alloc_index=entry.alloc_index,
            predicted_bank=domain.shadow_of[phys],
            actual_reuses=entry.version,
            extra_use=entry.extra_use,
            lost_reuse=missed_singles,
        )
        domain.rf.drop_register(phys)
        domain.free.release(phys)
        domain.prt.reset_entry(phys, -1)
        self.stats.releases += 1

    # ====================================================================== walk-back
    def squash_to(self, squashed: list[DynInst]) -> int:
        """Branch-misprediction walk-back (Section IV-B).

        ``squashed`` is youngest-first.  Allocations return to their bank's
        free list; reuses roll the PRT back one version — the overwritten
        value is restored from its shadow cell (counted and charged as
        recovery cycles by the pipeline).  Read bits stay conservatively
        set: a squashed consumer may have set them, and a set Read bit only
        inhibits a future reuse, never breaks correctness.
        """
        restores = 0
        for dyn in squashed:
            if dyn.dest is None or dyn.dest_tag is None:
                continue
            domain = self.domains[dyn.dest.cls]
            _cls, phys, version = dyn.dest_tag
            if dyn.micro_op:
                # repair µop: un-remap the evacuated logical register and
                # free the evacuation target
                domain.map.set(dyn.dest.idx, dyn.prev_map)
                domain.rf.drop_register(phys)
                domain.free.release(phys)
                domain.prt.reset_entry(phys, -1)
                continue
            domain.map.set(dyn.dest.idx, dyn.prev_map)
            if dyn.allocated_new:
                domain.rf.drop_register(phys)
                domain.free.release(phys)
                domain.prt.reset_entry(phys, -1)
            elif dyn.reused_src is not None:
                entry = domain.prt[phys]
                assert entry.version == version, "walk-back out of order"
                entry.version = version - 1
                entry.read_bit = True  # conservative
                domain.rf.drop_above(phys, version - 1)
                restores += 1
        return restores

    # ====================================================================== recovery
    def recover(self) -> int:
        diff = 0
        for domain in self.domains.values():
            diff += domain.map.diff_count(domain.retire_map)
            domain.map.copy_from(domain.retire_map)

            live: dict[int, int] = {}
            for tag in domain.retire_map.entries:
                assert tag is not None
                phys, version = tag
                live[phys] = max(live.get(phys, -1), version)

            domain.refcount = [0] * domain.config.total_regs
            for tag in domain.retire_map.entries:
                domain.refcount[tag[0]] += 1

            for phys in range(domain.config.total_regs):
                if phys in live:
                    domain.prt.restore(phys, live[phys])
                    domain.rf.drop_above(phys, live[phys])
                else:
                    domain.prt.reset_entry(phys, -1)
                    domain.rf.drop_register(phys)
            domain.free.rebuild(set(live))
        self.stats.recoveries += 1
        self.stats.recovered_map_entries += diff
        return diff

    # ====================================================================== values
    def write(self, tag: Tag, value: Value) -> None:
        self._domains_by_value[tag[0]].rf.write(tag[1], tag[2], value)

    def read(self, tag: Tag) -> Value:
        return self._domains_by_value[tag[0]].rf.read(tag[1], tag[2])

    # ====================================================================== sampling warmup
    def export_predictor_state(self) -> dict:
        return {
            "type_predictor": list(self.predictor.table),
            "single_use": list(self.single_use.table),
        }

    def import_predictor_state(self, state: dict) -> None:
        table = state.get("type_predictor")
        if table is not None and len(table) == len(self.predictor.table):
            self.predictor.table = list(table)
        table = state.get("single_use")
        if table is not None and len(table) == len(self.single_use.table):
            self.single_use.table = list(table)

    # ====================================================================== setup
    def initial_tags(self) -> list[tuple[Tag, Value]]:
        pairs: list[tuple[Tag, Value]] = []
        for cls, domain in self.domains.items():
            zero: Value = 0 if cls is RegClass.INT else 0.0
            for logical in range(domain.num_logical):
                phys, version = domain.retire_map.get(logical)
                pairs.append(((cls.value, phys, version), zero))
        return pairs

    def committed_tag(self, ref: RegRef) -> Tag:
        return (ref.cls.value, *self.domains[ref.cls].retire_map.get(ref.idx))

    def free_registers(self, cls: RegClass) -> int:
        return self.domains[cls].free.free_count()

    def live_version_histogram(self) -> dict[int, int]:
        histogram: dict[int, int] = {}
        for domain in self.domains.values():
            for _phys, count in domain.rf.live_version_counts().items():
                histogram[count] = histogram.get(count, 0) + 1
        return histogram

    # ====================================================================== fault injection
    def fault_targets(self) -> dict[str, list[Tag]]:
        """See :meth:`BaseRenamer.fault_targets`.

        A stored cell is *live* when either map references its exact
        (phys, version) or it is the current PRT version (an in-flight
        destination awaiting commit).  Older stored versions referenced by
        neither map are *shadow* cells: only an already-renamed in-flight
        consumer can still read them, so flipping one is masked unless
        operand verification catches that consumer's read.
        """
        targets: dict[str, list[Tag]] = {"live": [], "shadow": [], "free": []}
        for cls, domain in self.domains.items():
            mapped = set(domain.map.entries) | set(domain.retire_map.entries)
            for phys, version, _value in domain.rf.cells():
                if domain.free.contains(phys):
                    # released with values still resident (transiently
                    # possible between release and reallocation drop)
                    targets["free"].append((cls.value, phys, version))
                elif ((phys, version) in mapped
                        or version == domain.prt.entries[phys].version):
                    targets["live"].append((cls.value, phys, version))
                else:
                    targets["shadow"].append((cls.value, phys, version))
            for phys in range(domain.config.total_regs):
                if domain.free.contains(phys) and not domain.rf.has(phys, 0):
                    targets["free"].append((cls.value, phys, 0))
        return targets
