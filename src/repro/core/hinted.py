"""Compiler-hinted sharing renamer (the Jones et al. comparator).

The paper's related work (Section VII) discusses compiler-directed early
register release [Jones et al., PACT 2005]: the compiler marks last uses
so the hardware can release/reuse registers, at the cost of ISA changes
and compiler support.  This renamer models that approach on top of the
paper's sharing substrate: the workload generator embeds *static*
plan-level hints — per source, "this instruction is the value's only
consumer"; per destination, the value's forward chain depth — and the
renamer uses them instead of the two hardware predictors.

The interesting (and honest) finding, asserted by
``benchmarks/test_ablation_hints.py``: the paper's *learned* predictors
match or beat the static hints, because they adapt to dynamic effects the
static plan cannot see (cross-logical chain entanglement in shared
registers, bank contention, values whose consumption pattern varies by
path).  This supports the paper's Section VII position that hardware
prediction obviates ISA/compiler support.

With hint-less workloads (functional programs) the scheme degrades to
guaranteed-only reuse.
"""

from __future__ import annotations

from repro.core.sharing import SharingRenamer
from repro.isa.dyninst import DynInst


class HintedSharingRenamer(SharingRenamer):
    """Sharing renamer driven by static single-use hints instead of the
    hardware predictors."""

    #: see ConventionalRenamer.codegen_id (exact-class kernel dispatch)
    codegen_id = "hinted"

    def _single_use_prediction(self, dyn: DynInst, src_index: int,
                               dry_run: bool = False) -> bool:
        hints = dyn.hint_src_single_use
        if src_index < len(hints):
            return bool(hints[src_index])
        return False

    def _bank_prediction(self, dyn: DynInst) -> tuple[int, int]:
        """Depth-matched placement: a register hosting a depth-d chain
        needs d shadow cells; a plain single-use value needs one."""
        index = self.predictor.index_of(dyn.pc)
        if dyn.hint_dest_single_use:
            bank = max(1, min(3, dyn.hint_reuse_depth))
        else:
            bank = 0
        return bank, index
