"""Baseline merged-register-file renamer (release-on-commit).

This is the scheme "adopted by practically all current microprocessors"
that the paper baselines against (Section II): every decoded instruction
with a register destination allocates a fresh physical register from the
free list; the previous physical register mapped to the same logical
register is released when the redefining instruction commits.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.map_table import MapTable
from repro.core.register_file import BankedRegisterFile, RegisterFileConfig
from repro.core.renamer import BaseRenamer, ReadyFn, RenameStats, Tag, Value
from repro.isa.dyninst import DynInst
from repro.isa.registers import FP_REGS, INT_REGS, RegClass, RegRef


class _Domain:
    """Per-register-class rename state."""

    def __init__(self, num_logical: int, num_phys: int) -> None:
        if num_phys < num_logical + 1:
            raise ValueError(
                f"need at least {num_logical + 1} physical registers, got {num_phys}"
            )
        self.num_logical = num_logical
        self.config = RegisterFileConfig.flat(num_phys)
        self.rf = BankedRegisterFile(self.config)
        self.map = MapTable(num_logical)
        self.retire_map = MapTable(num_logical)
        # FIFO free list: deque so allocation (popleft) is O(1)
        self.free: deque[int] = deque(range(num_logical, num_phys))
        for logical in range(num_logical):
            self.map.set(logical, (logical, 0))
            self.retire_map.set(logical, (logical, 0))


class ConventionalRenamer(BaseRenamer):
    """The conventional merged-RF renaming scheme."""

    #: generated cycle kernels inline this exact class's hot path; the
    #: id lives in the class's own __dict__ so subclasses (which may
    #: override rename/commit) fall back to the event loop
    codegen_id = "conventional"

    def __init__(self, int_regs: int, fp_regs: int) -> None:
        self.domains = {
            RegClass.INT: _Domain(INT_REGS, int_regs),
            RegClass.FP: _Domain(FP_REGS, fp_regs),
        }
        #: domains indexed by RegClass.value (avoids the enum-hash dict
        #: lookup on the write/read hot path)
        self._domains_by_value = (
            self.domains[RegClass.INT], self.domains[RegClass.FP],
        )
        self.stats = RenameStats()

    # ------------------------------------------------------------------ capacity
    def can_rename(self, dyn: DynInst) -> bool:
        if dyn.dest is None:
            return True
        return bool(self.domains[dyn.dest.cls].free)

    # ------------------------------------------------------------------ rename
    def rename(self, dyn: DynInst, is_ready: ReadyFn) -> list[DynInst]:
        self.stats.insts += 1
        dyn.src_tags = [
            (src.cls.value, *self.domains[src.cls].map.get(src.idx)) for src in dyn.srcs
        ]
        if dyn.dest is not None:
            self.stats.dest_insts += 1
            domain = self.domains[dyn.dest.cls]
            if not domain.free:
                raise AssertionError("rename called without a free register")
            phys = domain.free.popleft()
            prev = domain.map.get(dyn.dest.idx)
            dyn.prev_map = prev
            dyn.allocated_new = True
            dyn.alloc_bank = 0
            domain.map.set(dyn.dest.idx, (phys, 0))
            dyn.dest_tag = (dyn.dest.cls.value, phys, 0)
            self.stats.allocations += 1
            self.stats.allocations_per_bank[0] += 1
        return [dyn]

    # ------------------------------------------------------------------ commit
    def commit(self, dyn: DynInst) -> None:
        if dyn.dest is None or dyn.dest_tag is None:
            return
        domain = self.domains[dyn.dest.cls]
        old = domain.retire_map.get(dyn.dest.idx)
        new = dyn.dest_tag[1:]
        domain.retire_map.set(dyn.dest.idx, new)
        if old[0] != new[0]:
            domain.rf.drop_register(old[0])
            domain.free.append(old[0])
            self.stats.releases += 1

    # ------------------------------------------------------------------ walk-back
    def squash_to(self, squashed: list[DynInst]) -> int:
        """Undo renames youngest-first: restore mappings, refill the free
        list.  The conventional scheme needs no value restores."""
        for dyn in squashed:
            if dyn.dest is None or dyn.dest_tag is None:
                continue
            domain = self.domains[dyn.dest.cls]
            domain.map.set(dyn.dest.idx, dyn.prev_map)
            phys = dyn.dest_tag[1]
            domain.rf.drop_register(phys)
            domain.free.append(phys)
        return 0

    # ------------------------------------------------------------------ recovery
    def recover(self) -> int:
        diff = 0
        for domain in self.domains.values():
            diff += domain.map.diff_count(domain.retire_map)
            domain.map.copy_from(domain.retire_map)
            live = domain.retire_map.physical_regs()
            domain.free = deque(
                phys for phys in range(domain.config.total_regs) if phys not in live
            )
        self.stats.recoveries += 1
        self.stats.recovered_map_entries += diff
        return diff

    # ------------------------------------------------------------------ values
    def write(self, tag: Tag, value: Value) -> None:
        self._domains_by_value[tag[0]].rf.write(tag[1], tag[2], value)

    def read(self, tag: Tag) -> Value:
        return self._domains_by_value[tag[0]].rf.read(tag[1], tag[2])

    # ------------------------------------------------------------------ sampling warmup
    def export_predictor_state(self) -> dict:
        # no PC-indexed predictors: nothing carries across sampling windows
        return {}

    def import_predictor_state(self, state: dict) -> None:
        pass

    # ------------------------------------------------------------------ setup
    def initial_tags(self) -> list[tuple[Tag, Value]]:
        pairs: list[tuple[Tag, Value]] = []
        for cls, domain in self.domains.items():
            zero: Value = 0 if cls is RegClass.INT else 0.0
            for logical in range(domain.num_logical):
                phys, version = domain.retire_map.get(logical)
                pairs.append(((cls.value, phys, version), zero))
        return pairs

    def committed_tag(self, ref: RegRef) -> Tag:
        return (ref.cls.value, *self.domains[ref.cls].retire_map.get(ref.idx))

    def free_registers(self, cls: RegClass) -> int:
        return len(self.domains[cls].free)

    # ------------------------------------------------------------------ fault injection
    def fault_targets(self) -> dict[str, list[Tag]]:
        """See :meth:`BaseRenamer.fault_targets`.

        The merged register file has no shadow cells: every stored value on
        an allocated register is potentially readable (by the maps or an
        in-flight consumer tag), so it classifies as *live*.
        """
        targets: dict[str, list[Tag]] = {"live": [], "shadow": [], "free": []}
        for cls, domain in self.domains.items():
            free = set(domain.free)
            for phys, version, _value in domain.rf.cells():
                kind = "free" if phys in free else "live"
                targets[kind].append((cls.value, phys, version))
            for phys in free:
                if not domain.rf.has(phys, 0):
                    targets["free"].append((cls.value, phys, 0))
        return targets
