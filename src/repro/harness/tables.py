"""Table reproductions (Tables I, II and III)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.area import table2, validate_table3
from repro.area.equal_area import equal_area_banks
from repro.harness.render import text_table
from repro.pipeline.config import TABLE_I, TABLE_III


def table1() -> str:
    """Render Table I (system configuration)."""
    rows = []
    for section, entries in TABLE_I.items():
        for key, value in entries.items():
            rows.append([section, key, value])
            section = ""
    return text_table(["unit", "parameter", "value"], rows,
                      title="Table I: system configuration")


@dataclass
class Table2Result:
    rows: dict = field(default_factory=table2)

    def total_overhead(self) -> float:
        return self.rows["Total Overhead"][1]

    def render(self) -> str:
        table_rows = [[unit, cfg, f"{area:.4e}"]
                      for unit, (cfg, area) in self.rows.items()]
        return text_table(["unit", "configuration", "area (mm^2)"], table_rows,
                          title="Table II: area of register files and overheads")


def table2_result() -> Table2Result:
    return Table2Result()


@dataclass
class Table3Result:
    #: (baseline, paper banks, derived banks, paper util, derived util)
    rows: list = field(default_factory=list)

    def render(self) -> str:
        table_rows = [
            [baseline,
             "/".join(map(str, paper_banks)),
             f"{paper_util:.2f}",
             "/".join(map(str, derived_banks)),
             f"{derived_util:.2f}"]
            for baseline, paper_banks, paper_util, derived_banks, derived_util
            in self.rows
        ]
        return text_table(
            ["baseline regs", "paper banks (0/1/2/3-sh)", "paper area util",
             "derived banks", "derived area util"],
            table_rows,
            title="Table III: equal-area register file configurations")


def table3() -> Table3Result:
    result = Table3Result()
    validation = {row[0]: row for row in validate_table3(TABLE_III)}
    from repro.area.equal_area import baseline_area, proposed_area

    for baseline in sorted(TABLE_III):
        paper_banks = TABLE_III[baseline]
        paper_util = validation[baseline][4]
        derived = equal_area_banks(baseline)
        derived_util = proposed_area(derived) / baseline_area(baseline)
        result.rows.append(
            (baseline, paper_banks, paper_util, derived, derived_util))
    return result
