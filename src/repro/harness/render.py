"""Plain-text rendering helpers for experiment results."""

from __future__ import annotations


def text_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render a simple aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def pct(value: float, digits: int = 1) -> str:
    return f"{100 * value:.{digits}f}%"
