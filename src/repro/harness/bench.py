"""Cycle-loop performance benchmark (``repro bench`` / BENCH_cycleloop.json).

Measures simulator throughput (instructions and cycles simulated per
wall-clock second) for each rename scheme on a fixed synthetic workload,
plus allocation pressure via :mod:`tracemalloc`.  Results are written to
``BENCH_cycleloop.json`` and diffed against the committed copy, so a
regression in the event-driven cycle loop shows up as a reviewable delta
rather than a silent slowdown.

The committed file carries two sections:

* ``baseline`` — the pre-event-loop numbers (the naive cycle loop this PR
  replaced), kept for the before/after record;
* ``current`` — the numbers measured on the machine that last regenerated
  the file.

``check_floor`` implements the CI guard: the sharing scheme's measured
insts/sec must not drop more than ``tolerance`` below the committed
``current`` value.

Each scheme row also carries a ``sampled`` sub-record: the same workload
measured through the interval-sampling engine
(:mod:`repro.sampling`), reporting its throughput, its IPC estimate and
the estimate's deviation from the exact run.  ``check_sampled_floor`` is
the corresponding CI guard — sampling must actually deliver its speedup
(sampled / exact throughput for the sharing scheme, measured in the same
run, must stay above a floor).
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path
from typing import Optional

from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import IterSource, Processor
from repro.workloads import BENCHMARKS
from repro.workloads.generator import SyntheticWorkload

#: default location of the committed benchmark record (repo root)
DEFAULT_PATH = Path(__file__).resolve().parents[3] / "BENCH_cycleloop.json"

BENCH_SCHEMES = ("conventional", "sharing", "early")

#: extra rows measuring the read-port-reduction schemes' simulation cost;
#: keyed "<scheme>+<port_scheme>" in the record (the banked arbiter runs
#: a plan/commit protocol per issued instruction, so its throughput tax
#: on the cycle loop is worth tracking)
BENCH_PORT_ROWS = (("conventional", "banked_arbiter"),)

#: sampling schedules used for the sampled benchmark rows; long periods
#: keep most of the fast-forward outside the warming zone (where only the
#: branch predictor is trained), which is where the speedup comes from
SAMPLING_QUICK = "4000:150:100"  # 2 windows at the 8 000-inst quick scale
SAMPLING_FULL = "4000:200:120"   # 5 windows at the 20 000-inst full scale


def _stream(profile: str, insts: int, seed: int) -> list:
    return list(SyntheticWorkload(BENCHMARKS[profile], total_insts=insts,
                                  seed=seed))


def _bench_config(scheme: str, port_scheme: str = "none") -> MachineConfig:
    from repro.core.read_ports import apply_port_scheme

    return apply_port_scheme(
        MachineConfig(scheme=scheme, verify_values=False), port_scheme)


def bench_scheme(
    scheme: str,
    profile: str = "hmmer",
    insts: int = 10_000,
    seed: int = 1,
    reps: int = 3,
    kernel: bool = True,
    port_scheme: str = "none",
) -> dict:
    """Throughput + allocation stats for one scheme.

    The instruction stream is pregenerated outside the timed region each
    rep (pipeline simulation mutates the DynInsts, so a stream cannot be
    replayed).  Best-of-``reps`` wall time is reported; a final untimed
    rep runs under tracemalloc for the allocation numbers.

    ``kernel`` selects the cycle loop: True runs the code-generated
    kernel (falling back to the event loop when unavailable — the
    ``loop`` field records what actually ran), False forces the event
    loop.  Kernel generation happens before the timed region (it is a
    one-time, cached cost; ``generation_seconds`` in the kernel row of
    :func:`run_bench` reports it separately).
    """
    config = _bench_config(scheme, port_scheme)
    best = float("inf")
    proc = None
    for _ in range(reps):
        stream = _stream(profile, insts, seed)
        proc = Processor(config, IterSource(iter(stream)), kernel=kernel)
        start = time.perf_counter()
        proc.run()
        best = min(best, time.perf_counter() - start)
    assert proc is not None

    # allocation pressure, measured separately so timing stays clean
    stream = _stream(profile, insts, seed)
    tracemalloc.start()
    mem_proc = Processor(config, IterSource(iter(stream)), kernel=kernel)
    mem_proc.run()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    return {
        "insts_per_sec": round(insts / best, 1),
        "cycles_per_sec": round(proc.stats.cycles / best, 1),
        "wall_seconds": round(best, 4),
        "cycles": proc.stats.cycles,
        "insts": insts,
        "ipc": round(proc.stats.ipc, 4),
        "cycles_skipped": proc.cycles_skipped,
        "alloc_peak_kb": round(peak / 1024, 1),
        "loop": proc.loop_used,
    }


def _generation_seconds(scheme: str,
                        port_scheme: str = "none") -> Optional[float]:
    """Wall time to generate + compile one kernel from scratch (no cache)."""
    try:
        from repro.codegen import generate_kernel_source
    except Exception:
        return None
    config = _bench_config(scheme, port_scheme)
    try:
        start = time.perf_counter()
        source = generate_kernel_source(config)
        compile(source, "<bench-kernel>", "exec")
        return round(time.perf_counter() - start, 4)
    except Exception:
        return None


def bench_sampled(
    scheme: str,
    profile: str = "hmmer",
    insts: int = 10_000,
    seed: int = 1,
    reps: int = 3,
    spec: str = SAMPLING_FULL,
    port_scheme: str = "none",
) -> dict:
    """Throughput + estimate quality for one scheme under interval sampling.

    Same protocol as :func:`bench_scheme` — pregenerated stream, best of
    ``reps`` — but the timed region is the sampling engine (fast-forward
    + detailed windows) instead of the exact cycle loop.
    """
    from repro.pipeline.processor import simulate

    config = _bench_config(scheme, port_scheme)
    best = float("inf")
    stats = None
    for _ in range(reps):
        stream = _stream(profile, insts, seed)
        start = time.perf_counter()
        stats = simulate(config, iter(stream), max_insts=insts,
                         sampling=spec, sampling_seed=seed)
        best = min(best, time.perf_counter() - start)
    assert stats is not None
    return {
        "spec": spec,
        "windows": stats.windows,
        "insts_sampled": stats.insts_sampled,
        "insts_per_sec": round(insts / best, 1),
        "wall_seconds": round(best, 4),
        "ipc": round(stats.ipc, 4),
    }


def run_bench(
    quick: bool = False,
    profile: str = "hmmer",
    seed: int = 1,
    schemes: tuple = BENCH_SCHEMES,
) -> dict:
    """Benchmark all schemes; returns the ``current`` section.

    Every scheme is measured exactly *and* through the sampling engine
    (same workload, same run), so the record shows what interval
    sampling buys — its throughput multiple and the IPC it trades away.
    """
    insts = 8_000 if quick else 20_000
    reps = 2 if quick else 3
    spec = SAMPLING_QUICK if quick else SAMPLING_FULL
    results = {}

    def measure(scheme: str, port_scheme: str = "none") -> dict:
        # primary row: the generated kernel (what `Processor.run` uses by
        # default); `event` sub-record: the interpreted event loop, for
        # the speedup figure and as the like-for-like reference of the
        # sampling comparison (the sampling engine is event-loop based)
        exact = bench_scheme(scheme, profile=profile, insts=insts,
                             seed=seed, reps=reps, kernel=True,
                             port_scheme=port_scheme)
        event = bench_scheme(scheme, profile=profile, insts=insts,
                             seed=seed, reps=reps, kernel=False,
                             port_scheme=port_scheme)
        exact["event"] = event
        exact["speedup_vs_event"] = round(
            exact["insts_per_sec"] / event["insts_per_sec"], 2)
        generation = _generation_seconds(scheme, port_scheme)
        if generation is not None:
            exact["generation_seconds"] = generation
        sampled = bench_sampled(scheme, profile=profile, insts=insts,
                                seed=seed, reps=reps, spec=spec,
                                port_scheme=port_scheme)
        sampled["speedup_vs_exact"] = round(
            sampled["insts_per_sec"] / event["insts_per_sec"], 2)
        sampled["ipc_delta_pct"] = round(
            100.0 * (sampled["ipc"] / event["ipc"] - 1.0), 2) \
            if event["ipc"] else 0.0
        exact["sampled"] = sampled
        return exact

    for scheme in schemes:
        results[scheme] = measure(scheme)
    for scheme, port_scheme in BENCH_PORT_ROWS:
        results[f"{scheme}+{port_scheme}"] = measure(scheme, port_scheme)
    return {
        "meta": {"profile": profile, "seed": seed, "insts": insts,
                 "reps": reps, "quick": quick, "sampling": spec},
        "schemes": results,
    }


def load_record(path: Path = DEFAULT_PATH) -> Optional[dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def diff_against(record: Optional[dict], current: dict) -> list[str]:
    """Human-readable per-scheme deltas vs the committed record."""
    lines = []
    committed = ((record or {}).get("current") or {}).get("schemes", {})
    for scheme, result in current["schemes"].items():
        now = result["insts_per_sec"]
        old = committed.get(scheme, {}).get("insts_per_sec")
        loop = result.get("loop", "event")
        if old:
            delta = 100.0 * (now / old - 1.0)
            lines.append(f"{scheme:12s} {now:10.0f} insts/s [{loop}] "
                         f"({delta:+.1f}% vs committed {old:.0f})")
        else:
            lines.append(f"{scheme:12s} {now:10.0f} insts/s [{loop}] "
                         f"(no committed reference)")
        event = result.get("event")
        if event:
            line = (f"{'  event':12s} {event['insts_per_sec']:10.0f} insts/s "
                    f"({result.get('speedup_vs_event', 0):.2f}x slower loop")
            generation = result.get("generation_seconds")
            if generation is not None:
                line += f", kernel generated in {generation:.2f}s"
            lines.append(line + ")")
        sampled = result.get("sampled")
        if sampled:
            lines.append(
                f"{'  sampled':12s} {sampled['insts_per_sec']:10.0f} insts/s "
                f"({sampled['speedup_vs_exact']:.2f}x exact, "
                f"ipc {sampled['ipc_delta_pct']:+.1f}%, "
                f"{sampled['windows']} windows [{sampled['spec']}])")
    return lines


def check_floor(
    record: Optional[dict],
    current: dict,
    scheme: str = "sharing",
    tolerance: float = 0.35,
) -> tuple[bool, str]:
    """CI guard: ``scheme`` must stay within ``tolerance`` of the committed
    throughput.  Returns (ok, message).

    The tolerance covers both machine variance and a systematic scale
    effect: the committed record is measured at the 20k-inst full scale,
    where the generated kernel's busy-stall skip amortises better than
    in the 8k-inst ``--quick`` run (~20% per-instruction gap).  The
    floor still catches the regression that matters most — kernels
    silently falling back to the event loop runs at under half the
    committed throughput.
    """
    committed = ((record or {}).get("current") or {}).get("schemes", {})
    reference = committed.get(scheme, {}).get("insts_per_sec")
    if not reference:
        return True, f"no committed reference for {scheme!r}; floor skipped"
    measured = current["schemes"][scheme]["insts_per_sec"]
    floor = reference * (1.0 - tolerance)
    if measured < floor:
        return False, (
            f"{scheme} throughput {measured:.0f} insts/s is below the floor "
            f"{floor:.0f} ({(1 - tolerance) * 100:.0f}% of committed "
            f"{reference:.0f}); if this machine is genuinely slower, "
            f"regenerate BENCH_cycleloop.json with `python -m repro bench`"
        )
    return True, (f"{scheme} throughput {measured:.0f} insts/s >= floor "
                  f"{floor:.0f} (committed {reference:.0f})")


def check_sampled_floor(
    current: dict,
    scheme: str = "sharing",
    floor: float = 3.0,
) -> tuple[bool, str]:
    """CI guard: interval sampling must actually be fast.

    Compares sampled vs exact throughput for ``scheme`` *within the same
    run* (both sides saw the same machine and load), so unlike
    :func:`check_floor` no committed reference is involved.
    """
    result = current["schemes"].get(scheme, {})
    sampled = result.get("sampled")
    if not sampled:
        return True, f"no sampled measurement for {scheme!r}; floor skipped"
    # compare against the event loop (the loop the sampling engine's
    # windows were calibrated against), not the generated kernel —
    # otherwise a faster exact loop would read as a sampling regression
    reference = result.get("event", result)
    speedup = sampled["insts_per_sec"] / reference["insts_per_sec"]
    if speedup < floor:
        return False, (
            f"sampled {scheme} runs only {speedup:.2f}x faster than exact "
            f"(floor {floor:.1f}x): the fast-forward path has regressed")
    return True, (f"sampled {scheme} speedup {speedup:.2f}x >= floor "
                  f"{floor:.1f}x")


def write_record(
    current: dict,
    path: Path = DEFAULT_PATH,
    keep_baseline: bool = True,
) -> dict:
    """Write BENCH_cycleloop.json, preserving the baseline section."""
    record = load_record(path) if keep_baseline else None
    baseline = (record or {}).get("baseline")
    out = {"baseline": baseline, "current": current}
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    return out
