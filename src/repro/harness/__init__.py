"""Experiment harness: regenerates every table and figure of the paper.

Each ``figure*``/``table*`` function runs the required simulations and
returns a structured result object with a ``render()`` method producing
the same rows/series the paper reports.  The benchmark suite
(``benchmarks/``) drives these and asserts the reproduced *shape*; the
``examples/`` scripts show interactive use.

Scale is controlled by :class:`~repro.harness.runner.Scale`: the default
``quick`` scale uses representative benchmark subsets and short runs so
the full harness finishes in minutes; ``Scale.full()`` runs every
benchmark.
"""

from repro.harness.runner import Scale, run_point, run_pair, sweep_speedups
from repro.harness.figures import (
    figure1,
    figure2,
    figure3,
    figure9,
    figure10,
    figure11,
    figure12,
)
from repro.harness.tables import table1, table2_result, table3
from repro.harness.headline import headline

__all__ = [
    "Scale",
    "run_point",
    "run_pair",
    "sweep_speedups",
    "figure1",
    "figure2",
    "figure3",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "table1",
    "table2_result",
    "table3",
    "headline",
]
