"""Experiment harness: regenerates every table and figure of the paper.

Each ``figure*``/``table*`` function runs the required simulations and
returns a structured result object with a ``render()`` method producing
the same rows/series the paper reports.  The benchmark suite
(``benchmarks/``) drives these and asserts the reproduced *shape*; the
``examples/`` scripts show interactive use.

Scale is controlled by :class:`~repro.harness.runner.Scale`: the default
``quick`` scale uses representative benchmark subsets and short runs so
the full harness finishes in minutes; ``Scale.full()`` runs every
benchmark.

Execution goes through the sweep engine: figure grids are enumerated as
declarative :class:`~repro.harness.parallel.SweepPoint` lists and run by
:func:`~repro.harness.parallel.run_points` — optionally fanned out over
worker processes (``jobs``/``REPRO_JOBS``) and memoized in the
persistent :class:`~repro.harness.cache.ResultCache`.
"""

from repro.harness.cache import ResultCache, code_fingerprint, point_key
from repro.harness.parallel import (
    PointResult,
    SweepError,
    SweepPoint,
    resolve_jobs,
    run_points,
)
from repro.harness.runner import (
    Scale,
    enumerate_pair_points,
    run_point,
    run_pair,
    sweep_speedups,
)
from repro.harness.figures import (
    figure1,
    figure2,
    figure3,
    figure9,
    figure10,
    figure11,
    figure12,
    figure_ports,
)
from repro.harness.tables import table1, table2_result, table3
from repro.harness.headline import headline

__all__ = [
    "Scale",
    "ResultCache",
    "PointResult",
    "SweepError",
    "SweepPoint",
    "code_fingerprint",
    "point_key",
    "resolve_jobs",
    "run_points",
    "enumerate_pair_points",
    "run_point",
    "run_pair",
    "sweep_speedups",
    "figure1",
    "figure2",
    "figure3",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure_ports",
    "table1",
    "table2_result",
    "table3",
    "headline",
]
