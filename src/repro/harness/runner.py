"""Simulation driving for the experiment harness."""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace

from repro.harness.parallel import SweepPoint, collect_stats, run_points
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import simulate
from repro.pipeline.stats import SimStats
from repro.workloads.generator import shared_workload
from repro.workloads.profiles import BENCHMARKS, WorkloadProfile, suite

#: Register-file sizes swept in Figures 10 and 11 (paper: 48..112).
RF_SIZES = (48, 56, 64, 80, 96)

#: representative subsets used at the quick scale
_QUICK = {
    "specint": ["gcc", "mcf", "hmmer", "libquantum", "gobmk", "astar"],
    "specfp": ["bwaves", "milc", "lbm", "namd", "soplex", "GemsFDTD"],
    "mediabench": ["jpeg", "adpcm", "gsm", "epic"],
    "cognitive": ["gmm", "dnn"],
}


@dataclass(frozen=True)
class Scale:
    """How much work an experiment does."""

    insts: int = 8_000
    benchmarks_per_suite: int | None = 6  # None = all
    sizes: tuple[int, ...] = RF_SIZES
    seed: int = 1
    seeds: tuple[int, ...] = (1,)  # speedup sweeps average across these
    #: ``PERIOD:WINDOW:WARMUP`` interval-sampling spec, or None for exact
    sampling: str | None = None

    @staticmethod
    def quick() -> "Scale":
        return Scale()

    @staticmethod
    def full() -> "Scale":
        return Scale(insts=40_000, benchmarks_per_suite=None,
                     sizes=(48, 56, 64, 72, 80, 96, 112), seeds=(1, 2, 3))

    @staticmethod
    def from_env() -> "Scale":
        scale = Scale.full() if os.environ.get("REPRO_SCALE") == "full" \
            else Scale.quick()
        sampling = os.environ.get("REPRO_SAMPLING", "").strip()
        if sampling:
            from repro.sampling import parse_schedule

            parse_schedule(sampling)  # validate early, fail loudly
            scale = replace(scale, sampling=sampling)
        return scale

    def profiles(self, suite_name: str) -> list[WorkloadProfile]:
        if self.benchmarks_per_suite is None:
            return suite(suite_name)
        names = _QUICK[suite_name][: self.benchmarks_per_suite]
        return [BENCHMARKS[n] for n in names]


def class_sizes(profile: WorkloadProfile, size: int) -> tuple[int, int]:
    """Which register file is under study (paper Section VI-B).

    Integer benchmarks sweep the integer file with an ample fp file and
    vice versa; the decoupled files make the other class irrelevant.
    """
    if profile.fp_frac >= 0.25:
        return 128, size
    return size, 128


def make_config(profile: WorkloadProfile, scheme: str, size: int,
                port_scheme: str = "none") -> MachineConfig:
    int_regs, fp_regs = class_sizes(profile, size)
    if port_scheme != "none" and scheme == "conventional":
        # equal-area conversion: a port-reduced file's smaller bit cells
        # buy the conventional baseline extra rename registers at the
        # same area budget (repro.area.equal_area).  The sharing scheme
        # already spends its budget on shadow cells and overheads, so it
        # keeps the swept size.
        from repro.area.equal_area import equal_area_regs

        int_regs = equal_area_regs(int_regs, port_scheme, bits=64)
        fp_regs = equal_area_regs(fp_regs, port_scheme, bits=128)
    config = MachineConfig(scheme=scheme, int_regs=int_regs, fp_regs=fp_regs,
                           verify_values=False)
    if port_scheme != "none":
        from repro.core.read_ports import apply_port_scheme

        config = apply_port_scheme(config, port_scheme)
    return config


def run_point(profile: WorkloadProfile, scheme: str, size: int,
              scale: Scale, seed: int | None = None) -> SimStats:
    """One simulation: benchmark x scheme x register-file size."""
    workload = shared_workload(
        profile, scale.insts, seed if seed is not None else scale.seed)
    return simulate(make_config(profile, scheme, size), iter(workload))


def run_pair(profile: WorkloadProfile, size: int, scale: Scale,
             seed: int | None = None) -> tuple[SimStats, SimStats]:
    """(baseline, proposed) at equal area, on the identical workload.

    Both runs iterate the *same* shared workload object, so the streams
    are identical by construction (see
    :func:`repro.workloads.generator.shared_workload`).
    """
    return (run_point(profile, "conventional", size, scale, seed),
            run_point(profile, "sharing", size, scale, seed))


@dataclass
class SpeedupRow:
    benchmark: str
    speedups: dict  # size -> proposed IPC / baseline IPC


def enumerate_pair_points(profiles, scale: Scale) -> list[SweepPoint]:
    """The (baseline, proposed) sweep grid as declarative points."""
    return [
        SweepPoint(profile=profile, scheme=scheme, size=size,
                   insts=scale.insts, seed=seed, sampling=scale.sampling)
        for profile in profiles
        for size in scale.sizes
        for seed in scale.seeds
        for scheme in ("conventional", "sharing")
    ]


def sweep_speedups(profiles, scale: Scale, *, jobs: int | None = None,
                   cache=None, progress=None, **engine) -> list[SpeedupRow]:
    """Speedup rows for Figure 10-style sweeps, via the sweep engine.

    ``jobs``/``cache``/``progress`` — and any further resilience knobs
    (``timeout``, ``retries``, ``retry_delay``, ``journal``) — are
    forwarded to :func:`repro.harness.parallel.run_points`; the default
    (``jobs=None``, no cache) resolves ``REPRO_JOBS`` and simulates
    in-process, producing bit-identical results to any parallel/cached/
    resumed execution.
    """
    profiles = list(profiles)
    points = enumerate_pair_points(profiles, scale)
    stats = collect_stats(
        run_points(points, jobs=jobs, cache=cache, progress=progress,
                   **engine))
    rows = []
    for profile in profiles:
        speedups = {}
        for size in scale.sizes:
            ratios = []
            for seed in scale.seeds:
                baseline = stats[(profile.name, "conventional", size, seed)]
                proposed = stats[(profile.name, "sharing", size, seed)]
                ratios.append(proposed.ipc / baseline.ipc if baseline.ipc else 1.0)
            speedups[size] = geomean(ratios)
        rows.append(SpeedupRow(profile.name, speedups))
    return rows


def geomean(values) -> float:
    """Geometric mean, accumulated in log space so full-scale sweeps
    (hundreds of ratios) cannot under/overflow a running product."""
    values = list(values)
    if not values:
        return 1.0
    return math.exp(math.fsum(math.log(value) for value in values) / len(values))
