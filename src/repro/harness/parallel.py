"""Parallel sweep execution engine.

Every paper figure is a grid of fully independent simulations.  This
module turns that grid into data: a sweep is a list of
:class:`SweepPoint` values (benchmark profile x scheme x register-file
size x instruction count x seed) which :func:`run_points` executes —
serially for ``jobs=1``, or fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor` with chunked submission
otherwise.  Results cross the process boundary as plain
:meth:`~repro.pipeline.stats.SimStats.to_dict` dicts (cheap to pickle),
a crashed simulation is captured as a per-point error instead of killing
the sweep, and an optional :class:`~repro.harness.cache.ResultCache`
serves previously computed points without re-simulating.

Determinism: a point's result does not depend on how it was executed —
``jobs=1``, ``jobs=N`` and the cached path all reproduce bit-identical
counters, which the tests assert.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.pipeline.stats import SimStats, stats_from_dict
from repro.workloads.profiles import WorkloadProfile

#: environment default for ``jobs`` when the caller passes None
JOBS_ENV = "REPRO_JOBS"


@dataclass(frozen=True)
class SweepPoint:
    """One simulation of a sweep grid, described declaratively."""

    profile: WorkloadProfile
    scheme: str
    size: int  # register-file size under study (the equal-area knob)
    insts: int
    seed: int
    #: ``PERIOD:WINDOW:WARMUP`` spec for interval-sampled execution, or
    #: None for exact simulation
    sampling: Optional[str] = None

    @property
    def benchmark(self) -> str:
        return self.profile.name

    def label(self) -> str:
        label = (f"{self.profile.name}/{self.scheme}/rf{self.size}"
                 f"/i{self.insts}/s{self.seed}")
        if self.sampling is not None:
            label += f"/sampled[{self.sampling}]"
        return label


@dataclass
class PointResult:
    point: SweepPoint
    stats: Optional[SimStats] = None
    error: Optional[str] = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


class SweepError(RuntimeError):
    """One or more sweep points failed; carries every per-point error."""

    def __init__(self, failures: list[PointResult]) -> None:
        self.failures = failures
        lines = [f"  {result.point.label()}: {result.error}"
                 for result in failures]
        super().__init__(
            f"{len(failures)} sweep point(s) failed:\n" + "\n".join(lines))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """``jobs`` argument > ``REPRO_JOBS`` env > 1."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"{JOBS_ENV}={env!r} is not an integer")
        else:
            jobs = 1
    return max(1, jobs)


def simulate_point(point: SweepPoint):
    """Execute one sweep point (pure function of the point).

    Workloads come from the pregenerated-trace cache: a cold pool worker
    decodes the trace from disk instead of re-running the generator, and
    every execution path (jobs=1, warm or cold worker) consumes the
    identical serialized stream.
    """
    from repro.harness.cache import cached_stream  # avoid import cycle
    from repro.harness.runner import make_config
    from repro.pipeline.processor import simulate

    workload = cached_stream(point.profile, point.insts, point.seed)
    config = make_config(point.profile, point.scheme, point.size)
    if point.sampling is not None:
        # total_insts anchors the sampling schedule and scaling ratio
        return simulate(config, iter(workload), max_insts=point.insts,
                        sampling=point.sampling, sampling_seed=point.seed)
    return simulate(config, iter(workload))


def _worker(payload: tuple[int, SweepPoint]) -> tuple[int, Optional[dict], Optional[str]]:
    """Process-pool entry point: never raises, ships results as dicts."""
    index, point = payload
    try:
        return index, simulate_point(point).to_dict(), None
    except Exception as exc:
        return index, None, f"{type(exc).__name__}: {exc}"


def run_points(
    points: Iterable[SweepPoint],
    jobs: Optional[int] = None,
    cache=None,
    progress: Optional[Callable[[int, int, PointResult], None]] = None,
) -> list[PointResult]:
    """Execute a sweep; returns one :class:`PointResult` per point, in order.

    ``cache`` is a :class:`~repro.harness.cache.ResultCache` (or None);
    cached points are served without simulating and fresh results are
    written back.  ``progress(done, total, result)`` fires once per
    resolved point.
    """
    points = list(points)
    total = len(points)
    jobs = resolve_jobs(jobs)
    results: list[Optional[PointResult]] = [None] * total
    done = 0

    def finish(index: int, result: PointResult) -> None:
        nonlocal done
        results[index] = result
        done += 1
        if result.ok and not result.cached and cache is not None:
            cache.put(cache.key_for_point(result.point), result.stats)
        if progress is not None:
            progress(done, total, result)

    pending: list[int] = []
    for index, point in enumerate(points):
        cached = cache.get(cache.key_for_point(point)) if cache is not None \
            else None
        if cached is not None:
            finish(index, PointResult(point, stats=cached, cached=True))
        else:
            pending.append(index)

    if jobs == 1 or len(pending) <= 1:
        for index in pending:
            _, stats_dict, error = _worker((index, points[index]))
            stats = None if stats_dict is None else stats_from_dict(stats_dict)
            finish(index, PointResult(points[index], stats=stats, error=error))
        return results  # type: ignore[return-value]

    workers = min(jobs, len(pending))
    # chunked submission amortises pickling/IPC over several points per task
    chunksize = max(1, len(pending) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        payloads = [(index, points[index]) for index in pending]
        for index, stats_dict, error in pool.map(_worker, payloads,
                                                 chunksize=chunksize):
            stats = None if stats_dict is None else stats_from_dict(stats_dict)
            finish(index, PointResult(points[index], stats=stats, error=error))
    return results  # type: ignore[return-value]


def collect_stats(results: list[PointResult]) -> dict[tuple, SimStats]:
    """Index successful results by (benchmark, scheme, size, seed); raises
    :class:`SweepError` if any point failed."""
    failures = [result for result in results if not result.ok]
    if failures:
        raise SweepError(failures)
    return {
        (r.point.benchmark, r.point.scheme, r.point.size, r.point.seed): r.stats
        for r in results
    }
