"""Parallel sweep execution engine with fault-tolerant workers.

Every paper figure is a grid of fully independent simulations.  This
module turns that grid into data: a sweep is a list of
:class:`SweepPoint` values (benchmark profile x scheme x register-file
size x instruction count x seed) which :func:`run_points` executes —
serially for ``jobs=1``, over a
:class:`~concurrent.futures.ProcessPoolExecutor` for the plain parallel
case, or (when per-point ``timeout``/``retries`` are requested) over a
self-healing worker fleet that kills and requeues stragglers, retries
crashed points with exponential backoff, and respawns dead workers.
Results cross the process boundary as plain
:meth:`~repro.pipeline.stats.SimStats.to_dict` dicts (cheap to pickle); a
crashed simulation is captured as a per-point error — with its full
worker-side traceback — instead of killing the sweep.

Three layers of persistence/recovery:

* an optional :class:`~repro.harness.cache.ResultCache` serves previously
  computed points without re-simulating;
* an optional :class:`SweepJournal` appends one fsync'd JSON line per
  completed point (with periodic atomic compaction), so a sweep killed
  mid-flight (SIGKILL, OOM, power) resumes exactly where it stopped —
  only incomplete points are re-simulated;
* a :class:`~concurrent.futures.process.BrokenProcessPool` (a worker
  taken out by the OOM killer hard enough to poison the pool) rebuilds
  the pool and requeues the in-flight points, degrading to serial
  execution after ``POOL_FAILURE_LIMIT`` consecutive failures.

The sweep data plane: before forking workers, the parent publishes each
distinct workload's binary trace blob into
:mod:`multiprocessing.shared_memory` (:class:`WorkloadBroadcast`,
refcounted and unlinked by the parent alone, so worker deaths never
leak segments), and fleet dispatch is affinity-aware
(:class:`_AffinityQueue`): a freed worker preferentially receives points
sharing its warm trace memo and loaded cycle kernel.  ``REPRO_NO_SHM=1``
and ``REPRO_NO_AFFINITY=1`` disable either layer.

Determinism: a point's result does not depend on how it was executed —
``jobs=1``, ``jobs=N``, the fleet, the cached and the journaled path,
shared-memory or disk, all reproduce bit-identical counters, which the
tests assert.  Retries, backoff jitter, broadcast and affinity only
affect *when and where* a point runs, never its result.
"""

from __future__ import annotations

import json
import os
import random
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.pipeline.stats import SimStats, stats_from_dict
from repro.workloads.profiles import WorkloadProfile

#: environment default for ``jobs`` when the caller passes None
JOBS_ENV = "REPRO_JOBS"

#: consecutive BrokenProcessPool failures before degrading to jobs=1
POOL_FAILURE_LIMIT = 3

#: characters of a per-point failure message kept when journaling or
#: uploading — a recursive traceback must not bloat every journal line,
#: result frame and final report it passes through
ERROR_LIMIT = 8192


@dataclass(frozen=True)
class SweepPoint:
    """One simulation of a sweep grid, described declaratively."""

    profile: WorkloadProfile
    scheme: str
    size: int  # register-file size under study (the equal-area knob)
    insts: int
    seed: int
    #: ``PERIOD:WINDOW:WARMUP`` spec for interval-sampled execution, or
    #: None for exact simulation
    sampling: Optional[str] = None
    #: register-file read-port-reduction scheme (repro.core.read_ports):
    #: 'none' | 'bypass_filter' | 'banked_arbiter'
    port_scheme: str = "none"

    @property
    def benchmark(self) -> str:
        return self.profile.name

    def label(self) -> str:
        label = (f"{self.profile.name}/{self.scheme}/rf{self.size}"
                 f"/i{self.insts}/s{self.seed}")
        if self.sampling is not None:
            label += f"/sampled[{self.sampling}]"
        if self.port_scheme != "none":
            label += f"/ports[{self.port_scheme}]"
        return label


@dataclass
class PointResult:
    point: SweepPoint
    stats: Optional[SimStats] = None
    error: Optional[str] = None
    cached: bool = False
    #: served from a :class:`SweepJournal` (a resumed sweep)
    journaled: bool = False
    #: execution attempts this result took (1 = first try; 0 = not run,
    #: i.e. cache/journal hit)
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


class SweepError(RuntimeError):
    """One or more sweep points failed; carries every per-point error
    (including the worker-side traceback captured at the failure site)."""

    def __init__(self, failures: list[PointResult]) -> None:
        self.failures = failures
        lines = []
        for result in failures:
            error = result.error or ""
            indented = "\n    ".join(error.rstrip().splitlines())
            lines.append(f"  {result.point.label()}:\n    {indented}")
        super().__init__(
            f"{len(failures)} sweep point(s) failed:\n" + "\n".join(lines))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """``jobs`` argument > ``REPRO_JOBS`` env > 1."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"{JOBS_ENV}={env!r} is not an integer")
        else:
            jobs = 1
    return max(1, jobs)


def simulate_point(point: SweepPoint):
    """Execute one sweep point (pure function of the point).

    Workloads come from the pregenerated-trace cache: a cold pool worker
    attaches the parent's shared-memory broadcast of the trace blob (or
    decodes from disk when no broadcast covers the point) instead of
    re-running the generator, and every execution path (jobs=1, warm or
    cold worker, shared-memory or disk) consumes the identical
    serialized stream.
    """
    from repro.harness.cache import cached_stream  # avoid import cycle
    from repro.harness.runner import make_config
    from repro.pipeline.processor import simulate

    _attach_shared_workload(point)
    workload = cached_stream(point.profile, point.insts, point.seed)
    config = make_config(point.profile, point.scheme, point.size,
                         port_scheme=point.port_scheme)
    if point.sampling is not None:
        # total_insts anchors the sampling schedule and scaling ratio.
        # Pass the stream itself (not an iterator): the sampling engine
        # fast-forwards straight over a binary stream's packed columns
        # and only materializes DynInsts for warm zones and windows.
        return simulate(config, workload, max_insts=point.insts,
                        sampling=point.sampling, sampling_seed=point.seed)
    return simulate(config, iter(workload))


#: the function workers run for each point — a module-level indirection so
#: tests can substitute a controllable runner (fork-started children
#: inherit the patched value)
_POINT_RUNNER: Callable = simulate_point


def _worker(payload: tuple[int, SweepPoint]) -> tuple[int, Optional[dict], Optional[str]]:
    """Process-pool entry point: never raises, ships results as dicts.

    Failures carry the full traceback, not just ``repr(exc)`` — a sweep
    failure must be debuggable from the parent process alone, without
    re-running the point under a debugger.
    """
    index, point = payload
    try:
        return index, _POINT_RUNNER(point).to_dict(), None
    except Exception as exc:
        return index, None, _bound_error(
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")


def _bound_error(text: Optional[str]) -> Optional[str]:
    """Clamp a failure message to :data:`ERROR_LIMIT` characters.

    Keeps the head (exception type + message + outermost frames) and the
    tail (the innermost frames, where the actual failure site is) and
    drops the middle — the two ends are what a debugging session reads
    first, and a pathological message (recursion tracebacks, a repr of a
    huge structure) must stay journal- and wire-sized.
    """
    if text is None or len(text) <= ERROR_LIMIT:
        return text
    head = ERROR_LIMIT * 5 // 8
    tail = ERROR_LIMIT - head
    dropped = len(text) - head - tail
    return (f"{text[:head]}\n"
            f"... [{dropped} characters truncated] ...\n"
            f"{text[-tail:]}")


def _backoff(base: float, attempt: int, salt: int) -> float:
    """Exponential backoff with deterministic jitter.

    Jitter decorrelates retry bursts across points without introducing
    nondeterminism into tests: the jitter is a pure function of
    (point index, attempt).
    """
    if base <= 0:
        return 0.0
    jitter = random.Random((salt << 8) | attempt).uniform(0.0, base / 2)
    return base * (2 ** (attempt - 1)) + jitter


# ------------------------------------------------------- workload broadcast
#: kill switch for the shared-memory workload broadcast
NO_SHM_ENV = "REPRO_NO_SHM"

#: kill switch for affinity-aware fleet scheduling (FIFO dispatch instead)
NO_AFFINITY_ENV = "REPRO_NO_AFFINITY"

#: workload key -> (shared-memory segment name, blob size).  The parent
#: populates this before forking workers; fork-started children inherit
#: it and attach instead of hitting disk.  Spawn-started children see an
#: empty dict and fall back to the on-disk trace cache — same bytes.
_SHM_WORKLOADS: dict[tuple, tuple[str, int]] = {}


def _workload_key(point: SweepPoint) -> tuple:
    """Identity of the workload a point consumes (cached_stream inputs)."""
    return (point.profile.name, point.insts, point.seed, 50)


def _attach_shared_workload(point: SweepPoint) -> None:
    """Worker side: seed the trace memo from the parent's broadcast.

    If the parent published this point's workload blob before forking,
    copy it out of shared memory into a :class:`TraceStream` and install
    it in the process-local memo, so the subsequent
    :func:`~repro.harness.cache.cached_stream` call is a memo hit —
    no disk read, no gunzip, no generation.  Any failure (segment
    already unlinked, platform quirks) silently falls back to the
    normal disk path: the stream bytes are identical either way.
    """
    wkey = _workload_key(point)
    entry = _SHM_WORKLOADS.get(wkey)
    if entry is None:
        return
    from repro.harness.cache import TRACE_MEMO, TraceStream

    memo_key = (point.profile.name, point.insts, point.seed, 50, "binary")
    if TRACE_MEMO.get(memo_key) is not None:
        return
    name, size = entry
    try:
        from multiprocessing.shared_memory import SharedMemory

        segment = SharedMemory(name=name)
    except Exception:
        return
    try:
        blob = bytes(segment.buf[:size])
    finally:
        # Attaching re-registers the name with the resource tracker
        # (CPython < 3.13 has no track=False).  Fork-started workers
        # share the parent's tracker process, so that register is a
        # set-add no-op and the parent's unlink() unregisters exactly
        # once; unregistering here would strip the parent's entry and
        # make that unlink KeyError inside the tracker.
        segment.close()
    TRACE_MEMO.put(memo_key, TraceStream(blob, point.insts))


class WorkloadBroadcast:
    """Parent-side shared-memory publication of distinct workload blobs.

    Each distinct ``(profile, insts, seed)`` workload among the pending
    points is encoded **once** in the parent — generating it if the trace
    cache is cold, which also moves generation out of the workers — and
    its binary-codec blob is copied into one
    :class:`~multiprocessing.shared_memory.SharedMemory` segment.
    Fork-started workers inherit the name map (:data:`_SHM_WORKLOADS`)
    and attach instead of re-reading disk per point.

    Leak-proofing: segments are refcounted by pending-point count and
    unlinked the moment the last consumer point resolves (crashed,
    timed-out and requeued points all resolve exactly once through
    ``finish``), and :meth:`close` unlinks everything left as the sweep's
    ``finally`` — worker deaths never strand a segment, because only the
    parent owns unlinking.
    """

    def __init__(self) -> None:
        self._segments: dict[tuple, object] = {}
        self._refs: dict[tuple, int] = {}
        self.published_bytes = 0

    def publish(self, points: list, pending: list[int]) -> None:
        """Publish every distinct pending workload; silently does nothing
        when disabled (``REPRO_NO_SHM=1``), when traces are bypassed or
        non-binary, or where shared memory is unavailable."""
        if os.environ.get(NO_SHM_ENV) or os.environ.get("REPRO_NO_TRACE_CACHE"):
            return
        try:
            from multiprocessing.shared_memory import SharedMemory
        except Exception:  # pragma: no cover - platform without shm
            return
        from repro.harness.cache import TraceStream, cached_stream, trace_format

        if trace_format() != "binary":
            return
        refs: dict[tuple, int] = {}
        for index in pending:
            refs[_workload_key(points[index])] = \
                refs.get(_workload_key(points[index]), 0) + 1
        for wkey, count in refs.items():
            profile = next(points[i].profile for i in pending
                           if _workload_key(points[i]) == wkey)
            try:
                stream = cached_stream(profile, wkey[1], wkey[2], wkey[3])
                if not isinstance(stream, TraceStream):
                    continue  # legacy-format entry: disk path still works
                blob = stream.blob
                segment = SharedMemory(create=True, size=max(1, len(blob)))
                segment.buf[:len(blob)] = blob
            except Exception:
                continue  # /dev/shm exhausted etc.: disk path still works
            self._segments[wkey] = segment
            self._refs[wkey] = count
            self.published_bytes += len(blob)
            _SHM_WORKLOADS[wkey] = (segment.name, len(blob))

    def release(self, point: SweepPoint) -> None:
        """One consumer point resolved: unlink its segment at refcount 0."""
        wkey = _workload_key(point)
        if wkey not in self._refs:
            return
        self._refs[wkey] -= 1
        if self._refs[wkey] <= 0:
            self._unlink(wkey)

    def _unlink(self, wkey: tuple) -> None:
        segment = self._segments.pop(wkey, None)
        self._refs.pop(wkey, None)
        _SHM_WORKLOADS.pop(wkey, None)
        if segment is not None:
            try:
                segment.close()
                segment.unlink()
            except Exception:  # pragma: no cover - double-unlink race
                pass

    def close(self) -> None:
        """Unlink every remaining segment (sweep ``finally``)."""
        for wkey in list(self._segments):
            self._unlink(wkey)

    def stats(self) -> dict:
        return {"segments": len(self._segments),
                "published_bytes": self.published_bytes}


# --------------------------------------------------------------- affinity
#: memoized kernel fingerprints; (profile, scheme, size, port_scheme) ->
#: fingerprint string or None when codegen is unavailable/disabled
_KERNEL_KEYS: dict[tuple, Optional[str]] = {}


def _kernel_key(point: SweepPoint) -> Optional[str]:
    """The compiled-kernel identity a point will execute under, or None."""
    cache_key = (point.profile.name, point.scheme, point.size,
                 point.port_scheme)
    if cache_key in _KERNEL_KEYS:
        return _KERNEL_KEYS[cache_key]
    fingerprint: Optional[str] = None
    try:
        from repro.codegen import kernels_enabled
        from repro.codegen.fingerprint import kernel_fingerprint
        from repro.harness.runner import make_config

        if kernels_enabled():
            config = make_config(point.profile, point.scheme, point.size,
                                 port_scheme=point.port_scheme)
            fingerprint = kernel_fingerprint(config)
    except Exception:
        fingerprint = None
    _KERNEL_KEYS[cache_key] = fingerprint
    return fingerprint


def _affinity_order(points: list, pending: list[int]) -> list[int]:
    """Pending indices grouped by workload key, then kernel key.

    Workers consuming an ordered stream of tasks then see long runs of
    the same workload (memo hits) and the same kernel (no module
    reload); grouping is stable, so equal-key points keep their index
    order.  ``REPRO_NO_AFFINITY=1`` preserves plain index order.
    """
    if os.environ.get(NO_AFFINITY_ENV):
        return list(pending)
    order: dict[tuple, int] = {}
    for index in pending:
        group = (_workload_key(points[index]),
                 _kernel_key(points[index]) or "")
        order.setdefault(group, len(order))
    return sorted(pending, key=lambda i: (
        order[(_workload_key(points[i]), _kernel_key(points[i]) or "")], i))


class _AffinityQueue:
    """Fleet dispatch queue that maximizes worker-side reuse.

    Tasks are grouped by workload key, then kernel key.  ``pop`` prefers,
    in order: a task matching the worker's last (workload, kernel) pair
    (memo hit + loaded kernel), then the worker's last workload (memo
    hit), then the largest workload group no other busy worker currently
    owns (spreads distinct workloads across the fleet), then the largest
    group outright.  Ties break by insertion order, keeping dispatch
    deterministic for a fixed fleet state.  With ``REPRO_NO_AFFINITY=1``
    it degrades to plain FIFO.
    """

    def __init__(self, points: list) -> None:
        self._points = points
        self._fifo = bool(os.environ.get(NO_AFFINITY_ENV))
        #: wkey -> kkey -> list of (index, attempt); dicts keep insertion
        #: order, lists serve as FIFO queues within a kernel group
        self._groups: dict[tuple, dict[Optional[str], list]] = {}
        self._order: list[tuple[int, int]] = []  # FIFO fallback view
        self._size = 0

    def push(self, index: int, attempt: int) -> None:
        point = self._points[index]
        kernels = self._groups.setdefault(_workload_key(point), {})
        kernels.setdefault(_kernel_key(point), []).append((index, attempt))
        self._order.append((index, attempt))
        self._size += 1

    def __len__(self) -> int:
        return self._size

    def _take(self, wkey: tuple, kkey: Optional[str]) -> tuple[int, int]:
        kernels = self._groups[wkey]
        task = kernels[kkey].pop(0)
        if not kernels[kkey]:
            del kernels[kkey]
        if not kernels:
            del self._groups[wkey]
        self._order.remove(task)
        self._size -= 1
        return task

    def _group_size(self, wkey: tuple) -> int:
        return sum(len(tasks) for tasks in self._groups[wkey].values())

    def pop(self, last_wkey: Optional[tuple] = None,
            last_kkey: Optional[str] = None,
            owned: frozenset = frozenset()) -> Optional[tuple[int, int]]:
        """Next (index, attempt) for a worker whose previous task had
        ``(last_wkey, last_kkey)``; ``owned`` holds workload keys other
        busy workers are executing right now."""
        if self._size == 0:
            return None
        if self._fifo:
            task = self._order.pop(0)
            index, attempt = task
            point = self._points[index]
            kernels = self._groups[_workload_key(point)]
            kernels[_kernel_key(point)].remove(task)
            if not kernels[_kernel_key(point)]:
                del kernels[_kernel_key(point)]
            if not kernels:
                del self._groups[_workload_key(point)]
            self._size -= 1
            return task
        if last_wkey is not None and last_wkey in self._groups:
            kernels = self._groups[last_wkey]
            if last_kkey in kernels:
                return self._take(last_wkey, last_kkey)
            return self._take(last_wkey, next(iter(kernels)))
        candidates = [wkey for wkey in self._groups if wkey not in owned] \
            or list(self._groups)
        best = max(candidates, key=self._group_size)
        return self._take(best, next(iter(self._groups[best])))


# ------------------------------------------------------------------ journal
def _key_for_point(point: SweepPoint, fingerprint: Optional[str]) -> str:
    from repro.harness.cache import point_key
    from repro.harness.runner import make_config  # avoid import cycle

    config = make_config(point.profile, point.scheme, point.size,
                         port_scheme=point.port_scheme)
    return point_key(config, point.profile, point.insts, point.seed,
                     fingerprint, sampling=point.sampling)


class SweepJournal:
    """Crash-safe record of completed sweep points (``--resume`` support).

    A JSON-lines file: one ``{"key", "label", "stats"}`` object per
    completed point.  Each :meth:`record` *appends* one fsync'd line —
    O(1) per point, not the O(n) whole-file rewrite (O(n²) per sweep)
    it replaced.  A crash can tear at most the final line, which the
    loader skips (counted in ``skipped_lines``) like any corrupt or
    alien line — never fatal.  Re-recorded keys append duplicate lines
    (last one wins on load); when duplicates pile past
    ``COMPACT_SLACK``, the journal compacts itself through an atomic
    temp-file + rename rewrite, so readers still never observe a torn
    file.

    Keys are the result-cache point keys, which fold in the simulator
    code fingerprint: a journal written by a stale checkout silently
    serves nothing, rather than resuming with wrong numbers.
    """

    #: excess file lines (duplicates from re-records) tolerated before an
    #: atomic compaction rewrite
    COMPACT_SLACK = 256

    def __init__(self, path: os.PathLike,
                 fingerprint: Optional[str] = None) -> None:
        from repro.harness.cache import code_fingerprint

        self.path = Path(path)
        self.fingerprint = (fingerprint if fingerprint is not None
                            else code_fingerprint())
        self._entries: dict[str, dict] = {}
        self._file_lines = 0  # lines in the file, duplicates included
        self.skipped_lines = 0
        self.compactions = 0
        self._load()

    # ------------------------------------------------------------------ io
    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            self._file_lines += 1
            try:
                raw = json.loads(line)
                key = raw["key"]
                if not isinstance(raw["stats"], dict):
                    raise TypeError("stats must be a dict")
            except Exception:
                self.skipped_lines += 1
                continue
            self._entries[key] = raw

    def _flush(self) -> None:
        """Atomic whole-file rewrite (compaction): one line per live key."""
        from repro.harness.cache import atomic_write_text

        body = "".join(json.dumps(entry, sort_keys=True) + "\n"
                       for entry in self._entries.values())
        atomic_write_text(self.path, body)
        self._file_lines = len(self._entries)

    def _append(self, entry: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._file_lines += 1

    # ------------------------------------------------------------------ access
    def key_for_point(self, point: SweepPoint) -> str:
        return _key_for_point(point, self.fingerprint)

    def get(self, key: str) -> Optional[SimStats]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        try:
            return stats_from_dict(entry["stats"])
        except Exception:
            # schema drift in an old journal: a miss, not a crash
            del self._entries[key]
            return None

    def record(self, point: SweepPoint, stats) -> None:
        key = self.key_for_point(point)
        self._entries[key] = {"key": key, "label": point.label(),
                              "stats": stats.to_dict()}
        self._append(self._entries[key])
        if self._file_lines > len(self._entries) + self.COMPACT_SLACK:
            self._flush()
            self.compactions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


# ------------------------------------------------------------------ execution
def _prewarm_kernels(points: list[SweepPoint], pending: list[int]) -> None:
    """Generate and cache each distinct cycle kernel once, in the parent.

    Sweep workers share kernels through the fingerprint-keyed on-disk
    cache; generating up front means N workers hitting the same
    (scheme, config) pair load one compiled module instead of each
    paying generation, and a cold pool does no generation at all.
    Resolution failures are ignored — the affected points simply fall
    back to the event loop in their workers, same semantics.
    """
    try:
        from repro.codegen import kernels_enabled, load_kernel
        from repro.codegen.fingerprint import kernel_fingerprint
        from repro.harness.runner import make_config
    except Exception:
        return
    if not kernels_enabled():
        return
    seen: set[str] = set()
    for index in pending:
        point = points[index]
        try:
            config = make_config(point.profile, point.scheme, point.size,
                                 port_scheme=point.port_scheme)
            fingerprint = kernel_fingerprint(config)
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            load_kernel(config)
        except Exception:
            continue


def run_points(
    points: Iterable[SweepPoint],
    jobs: Optional[int] = None,
    cache=None,
    progress: Optional[Callable[[int, int, PointResult], None]] = None,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    retry_delay: float = 0.25,
    journal: Optional[SweepJournal] = None,
    remote=None,
) -> list[PointResult]:
    """Execute a sweep; returns one :class:`PointResult` per point, in order.

    ``cache`` is a :class:`~repro.harness.cache.ResultCache` (or None);
    cached points are served without simulating and fresh results are
    written back.  ``journal`` is a :class:`SweepJournal` (or None):
    points it already holds are served from it, and every fresh success
    is recorded — kill the process at any moment and a rerun with the
    same journal resumes from the last completed point.
    ``progress(done, total, result)`` fires once per resolved point.

    Resilience knobs (all off by default):

    * ``timeout`` — per-point wall-clock seconds; a straggler's worker is
      killed and the point requeued (consuming a retry) until ``retries``
      is exhausted, then reported as a per-point failure.
    * ``retries`` — re-executions granted per point after a crash, a
      worker death, or a timeout; waits ``retry_delay * 2**(attempt-1)``
      plus deterministic jitter between attempts.
    * ``remote`` — a ``"HOST:PORT"`` string or
      :class:`repro.fleet.FleetConfig`: serve the pending points to TCP
      fleet workers instead of executing them here (the coordinator
      still degrades to local execution when no workers show up).
      ``retries`` then bounds lease re-grants and ``timeout`` bounds the
      coordinator's own local runs.
    """
    points = list(points)
    total = len(points)
    jobs = resolve_jobs(jobs)
    results: list[Optional[PointResult]] = [None] * total
    done = 0
    broadcast = WorkloadBroadcast()

    def finish(index: int, result: PointResult) -> None:
        nonlocal done
        results[index] = result
        done += 1
        if result.ok and not result.cached and not result.journaled:
            if cache is not None:
                cache.put(cache.key_for_point(result.point), result.stats)
            if journal is not None:
                journal.record(result.point, result.stats)
        broadcast.release(result.point)
        if progress is not None:
            progress(done, total, result)

    pending: list[int] = []
    for index, point in enumerate(points):
        if journal is not None:
            stats = journal.get(journal.key_for_point(point))
            if stats is not None:
                finish(index, PointResult(point, stats=stats, journaled=True,
                                          attempts=0))
                continue
        cached = cache.get(cache.key_for_point(point)) if cache is not None \
            else None
        if cached is not None:
            finish(index, PointResult(point, stats=cached, cached=True,
                                      attempts=0))
        else:
            pending.append(index)

    if not pending:
        return results  # type: ignore[return-value]

    _prewarm_kernels(points, pending)
    multiprocess = remote is None and (timeout is not None or
                                       min(jobs, len(pending)) > 1)

    try:
        if multiprocess:
            # publish each distinct workload blob to shared memory once,
            # before any worker forks, so cold workers attach instead of
            # re-reading disk per point
            broadcast.publish(points, pending)
        if remote is not None:
            from repro.fleet.coordinator import (fleet_execute,
                                                 resolve_fleet_config)

            fleet_execute(points, pending, finish,
                          resolve_fleet_config(remote),
                          timeout=timeout, retries=retries)
        elif timeout is not None:
            # enforcing a wall-clock bound needs killable workers, even
            # for jobs=1: run a fleet of (at least) one
            _run_fleet(points, pending, finish,
                       max(1, min(jobs, len(pending))),
                       timeout, retries, retry_delay)
        elif jobs > 1 and retries > 0:
            # retries with jobs>1 also imply process isolation (a point
            # that takes its worker down must not take the sweep down),
            # so the fleet runs even for a single pending point
            _run_fleet(points, pending, finish, min(jobs, len(pending)),
                       None, retries, retry_delay)
        elif jobs == 1 or len(pending) == 1:
            _run_serial(points, pending, finish, retries, retry_delay)
        else:
            _run_executor(points, pending, finish,
                          min(jobs, len(pending)))
    finally:
        broadcast.close()
    return results  # type: ignore[return-value]


class PointTimeout(Exception):
    """A serially-executed point exceeded its wall-clock budget."""


def _subprocess_child(conn, payload) -> None:
    """Child side of the subprocess watchdog: run one point, ship the
    result tuple back over the pipe."""
    try:
        conn.send(_worker(payload))
    finally:
        conn.close()


def _worker_subprocess(payload, timeout: float):
    """Run one point in a killable child process with a wall-clock bound.

    The fallback watchdog for serial execution off the main thread
    (where SIGALRM is unavailable): a straggler's child is killed, and
    the parent reports the timeout as an ordinary per-point error.
    """
    import multiprocessing

    index, _point = payload
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(target=_subprocess_child,
                          args=(child_conn, payload), daemon=True)
    process.start()
    child_conn.close()
    try:
        if parent_conn.poll(timeout):
            try:
                result = parent_conn.recv()
            except (EOFError, OSError):
                result = (index, None,
                          "worker process died while running the point")
            process.join()
            return result
    finally:
        parent_conn.close()
    process.kill()
    process.join()
    return (index, None,
            f"TimeoutError: point exceeded the {timeout}s wall-clock "
            f"budget (serial watchdog)")


def _worker_with_timeout(payload, timeout: Optional[float]):
    """:func:`_worker` with the wall-clock watchdog still enforced.

    Serial (in-process) execution is the degrade path of every other
    mode, so it must honour ``timeout`` too — a sweep that fell back to
    jobs=1 must not hang forever on the very straggler that broke the
    pool.  On the main thread a SIGALRM itimer interrupts the point
    in-process; off the main thread (or without SIGALRM) the point runs
    in a killable child process instead.
    """
    if timeout is None:
        return _worker(payload)
    import signal
    import threading

    if not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        return _worker_subprocess(payload, timeout)
    index, _point = payload
    armed = [True]

    def _alarm(signum, frame):
        if armed[0]:
            raise PointTimeout(
                f"point exceeded the {timeout}s wall-clock budget "
                f"(serial watchdog)")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return _worker(payload)
    except PointTimeout as exc:
        return index, None, f"TimeoutError: {exc}"
    finally:
        armed[0] = False
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_serial(points, pending, finish, retries: int,
                retry_delay: float, timeout: Optional[float] = None) -> None:
    """In-process execution with bounded retry + backoff.

    ``timeout`` keeps the per-point wall-clock bound alive on the
    degrade paths (broken pool, failed fleet spawn, fleet coordinator
    running points locally) — serial mode enforces it via SIGALRM or a
    killable child process, never silently drops it.
    """
    for index in pending:
        attempt = 0
        while True:
            attempt += 1
            _, stats_dict, error = _worker_with_timeout(
                (index, points[index]), timeout)
            if error is None or attempt > retries:
                break
            time.sleep(_backoff(retry_delay, attempt, index))
        stats = None if stats_dict is None else stats_from_dict(stats_dict)
        finish(index, PointResult(points[index], stats=stats, error=error,
                                  attempts=attempt))


def _run_executor(points, pending, finish, workers: int,
                  timeout: Optional[float] = None) -> None:
    """Plain ProcessPoolExecutor fan-out with BrokenProcessPool recovery.

    A worker killed hard (OOM killer, SIGKILL) poisons the whole pool:
    every outstanding future raises :class:`BrokenProcessPool`.  Recovery
    rebuilds the pool and requeues exactly the unresolved points; after
    ``POOL_FAILURE_LIMIT`` consecutive breakages the remaining points
    degrade to in-process serial execution — slower, but immune — with
    any per-point ``timeout`` still enforced there.
    """
    remaining = set(pending)
    breakages = 0
    while remaining:
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(remaining))) as pool:
                # affinity ordering: grouped submission gives each worker
                # long runs of one workload/kernel (memo + kernel reuse)
                futures = {pool.submit(_worker, (index, points[index])): index
                           for index in _affinity_order(points,
                                                        sorted(remaining))}
                for future in as_completed(futures):
                    index, stats_dict, error = future.result()
                    remaining.discard(index)
                    stats = None if stats_dict is None \
                        else stats_from_dict(stats_dict)
                    finish(index, PointResult(points[index], stats=stats,
                                              error=error))
            breakages = 0
        except BrokenProcessPool:
            breakages += 1
            if breakages >= POOL_FAILURE_LIMIT:
                _run_serial(points, sorted(remaining), finish, 0, 0.0,
                            timeout=timeout)
                return


def _fleet_child(conn) -> None:
    """Fleet worker main: execute tasks from the pipe until the sentinel.

    Runs :func:`_worker` (which never raises), so the only exits are the
    ``None`` sentinel, a closed pipe, or being killed by the parent's
    timeout watchdog.
    """
    try:
        while True:
            task = conn.recv()
            if task is None:
                return
            conn.send(_worker(task))
    except (EOFError, OSError, KeyboardInterrupt):
        return


@dataclass
class _Slot:
    """One fleet worker: a process, its pipe, and its current assignment."""

    process: object
    conn: object
    index: Optional[int] = None  # point index in flight, or None (idle)
    attempt: int = 0
    deadline: Optional[float] = None
    #: affinity state: workload/kernel keys of the most recent dispatch —
    #: kept across completions so an idle worker's warm memo is known
    wkey: Optional[tuple] = None
    kkey: Optional[str] = None

    @property
    def busy(self) -> bool:
        return self.index is not None


def _run_fleet(points, pending, finish, workers: int,
               timeout: Optional[float], retries: int,
               retry_delay: float) -> None:
    """Self-healing worker fleet: direct task dispatch over pipes, a
    wall-clock watchdog per in-flight point, kill-and-requeue for
    stragglers and dead workers, bounded retries with backoff.

    Dispatch is affinity-aware (:class:`_AffinityQueue`): a freed worker
    preferentially receives a point sharing its previous workload (warm
    trace memo) and kernel (loaded module), while distinct workloads
    spread across distinct workers.  Scheduling never affects results —
    a point is a pure function of itself — only wall-clock.

    Workers are forked (where available) so test doubles installed on
    :data:`_POINT_RUNNER` propagate; each worker owns a dedicated
    duplex pipe, and the parent multiplexes completions with
    :func:`multiprocessing.connection.wait`.
    """
    import multiprocessing
    from multiprocessing.connection import wait as conn_wait

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()

    def spawn() -> _Slot:
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(target=_fleet_child, args=(child_conn,),
                              daemon=True)
        process.start()
        child_conn.close()
        return _Slot(process=process, conn=parent_conn)

    def retire(slot: _Slot) -> None:
        try:
            slot.conn.close()
        except OSError:
            pass
        slot.process.kill()
        slot.process.join()

    # affinity queue of (point index, attempt) ready to dispatch now;
    # delayed holds (ready-at monotonic time, index, attempt) backing off
    queue = _AffinityQueue(points)
    for index in pending:
        queue.push(index, 1)
    delayed: list[tuple[float, int, int]] = []
    unresolved = set(pending)
    slots = []
    try:
        for _ in range(workers):
            slots.append(spawn())
    except OSError:
        pass  # fork refused (rlimit, memory): run with what we got
    if not slots:
        # cannot fork at all — degrade to in-process serial execution,
        # with the wall-clock watchdog still enforced rather than
        # silently dropped
        _run_serial(points, sorted(unresolved), finish, retries,
                    retry_delay, timeout=timeout)
        return

    def requeue(index: int, attempt: int, error: str) -> None:
        """A point crashed/timed out/lost its worker: retry or fail."""
        if attempt > retries:
            finish(index, PointResult(points[index], error=error,
                                      attempts=attempt))
            unresolved.discard(index)
            return
        delay = _backoff(retry_delay, attempt, index)
        delayed.append((time.monotonic() + delay, index, attempt + 1))

    try:
        while unresolved:
            now = time.monotonic()
            # move backoff-expired tasks into the ready queue
            if delayed:
                ready = [entry for entry in delayed if entry[0] <= now]
                if ready:
                    delayed[:] = [e for e in delayed if e[0] > now]
                    for _, index, attempt in sorted(ready):
                        queue.push(index, attempt)
            # dispatch ready tasks to idle slots, best-affinity first
            for slot in slots:
                if not len(queue):
                    break
                if slot.busy:
                    continue
                owned = frozenset(s.wkey for s in slots
                                  if s is not slot and s.busy
                                  and s.wkey is not None)
                index, attempt = queue.pop(slot.wkey, slot.kkey, owned)
                slot.index, slot.attempt = index, attempt
                slot.wkey = _workload_key(points[index])
                slot.kkey = _kernel_key(points[index])
                slot.deadline = (now + timeout) if timeout is not None \
                    else None
                try:
                    slot.conn.send((index, points[index]))
                except (BrokenPipeError, OSError):
                    # worker died between tasks: respawn and requeue
                    retire(slot)
                    fresh = spawn()
                    slots[slots.index(slot)] = fresh
                    requeue(index, attempt,
                            "worker process died before accepting the point")

            busy = [slot for slot in slots if slot.busy]
            if not busy:
                if queue:
                    continue
                if delayed:
                    time.sleep(max(0.0, min(e[0] for e in delayed)
                                   - time.monotonic()))
                    continue
                break  # unresolved but nothing queued: all accounted for

            # wake on the next completion, deadline, or backoff expiry
            wait_until = min((slot.deadline for slot in busy
                              if slot.deadline is not None),
                             default=None)
            if delayed:
                soonest = min(entry[0] for entry in delayed)
                wait_until = soonest if wait_until is None \
                    else min(wait_until, soonest)
            wait_timeout = None if wait_until is None \
                else max(0.0, wait_until - time.monotonic())
            ready_conns = conn_wait([slot.conn for slot in busy],
                                    timeout=wait_timeout)

            for slot in [s for s in busy if s.conn in ready_conns]:
                index, attempt = slot.index, slot.attempt
                try:
                    result_index, stats_dict, error = slot.conn.recv()
                except (EOFError, OSError):
                    # the worker died mid-point (segfault, OOM kill)
                    retire(slot)
                    slots[slots.index(slot)] = spawn()
                    requeue(index, attempt,
                            "worker process died while running the point")
                    continue
                slot.index, slot.attempt, slot.deadline = None, 0, None
                if error is not None and attempt <= retries:
                    requeue(index, attempt, error)
                    continue
                stats = None if stats_dict is None \
                    else stats_from_dict(stats_dict)
                finish(result_index, PointResult(
                    points[result_index], stats=stats, error=error,
                    attempts=attempt))
                unresolved.discard(result_index)

            # timeout watchdog: kill stragglers past their deadline
            now = time.monotonic()
            for position, slot in enumerate(slots):
                if (slot.busy and slot.deadline is not None
                        and now >= slot.deadline
                        and slot.conn not in ready_conns):
                    index, attempt = slot.index, slot.attempt
                    retire(slot)
                    slots[position] = spawn()
                    requeue(index, attempt,
                            f"TimeoutError: point exceeded the {timeout}s "
                            f"wall-clock budget (attempt {attempt})")
    finally:
        for slot in slots:
            if not slot.busy:
                try:
                    slot.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            retire(slot)


def collect_stats(results: list[PointResult]) -> dict[tuple, SimStats]:
    """Index successful results by (benchmark, scheme, size, seed); raises
    :class:`SweepError` if any point failed."""
    failures = [result for result in results if not result.ok]
    if failures:
        raise SweepError(failures)
    return {
        (r.point.benchmark, r.point.scheme, r.point.size, r.point.seed): r.stats
        for r in results
    }
