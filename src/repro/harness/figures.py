"""Figure reproductions.

Every function returns a result object whose ``render()`` produces the
figure's rows/series as text.  Figure numbering follows the paper:

* Figure 1  — single-consumer instruction fractions (redefine-same vs other)
* Figure 2  — consumers-per-value histogram
* Figure 3  — reuse-chain buckets (one/two/three/more)
* Figure 9  — shadow-cell demand coverage
* Figure 10 — per-benchmark speedups vs register-file size (a: fp, b: int,
  c: mediabench+cognitive)
* Figure 11 — average IPC vs register-file size, both schemes
* Figure 12 — register-type predictor accuracy breakdown
* Ports      — read-port-reduction schemes as an extra equal-area axis
  (not in the paper; compares the sharing scheme against conventional
  baselines that spend their area budget on port reduction instead)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import analyze_chains, analyze_stream, measure_shadow_demand
from repro.harness.parallel import (SweepPoint, SweepError, collect_stats,
                                    run_points)
from repro.harness.render import pct, text_table
from repro.harness.runner import Scale, geomean, sweep_speedups
from repro.workloads.generator import SyntheticWorkload

_SUITE_LABELS = {
    "specint": "SPECint",
    "specfp": "SPECfp",
    "media+cog": "Mediabench and Cognitive",
}


def _suite_profiles(scale: Scale, key: str):
    if key == "media+cog":
        return scale.profiles("mediabench") + scale.profiles("cognitive")
    return scale.profiles(key)


# ====================================================================== Fig 1
@dataclass
class Figure1Result:
    #: suite -> list of (benchmark, redefine_same, redefine_other)
    series: dict = field(default_factory=dict)

    def suite_average(self, suite: str) -> float:
        rows = self.series[suite]
        return sum(same + other for _b, same, other in rows) / len(rows)

    def render(self) -> str:
        blocks = []
        for suite, rows in self.series.items():
            table_rows = [[b, pct(same), pct(other), pct(same + other)]
                          for b, same, other in rows]
            average = self.suite_average(suite)
            table_rows.append(["average", "", "", pct(average)])
            blocks.append(text_table(
                ["benchmark", "redefine same", "redefine other", "total"],
                table_rows,
                title=f"Figure 1 ({_SUITE_LABELS[suite]}): single-consumer "
                      f"instructions",
            ))
        return "\n\n".join(blocks)


def figure1(scale: Scale | None = None) -> Figure1Result:
    scale = scale or Scale.from_env()
    result = Figure1Result()
    for suite in ("specint", "specfp", "media+cog"):
        rows = []
        for profile in _suite_profiles(scale, suite):
            analysis = analyze_stream(
                iter(SyntheticWorkload(profile, scale.insts, scale.seed)))
            rows.append((profile.name, analysis.redefine_same_fraction,
                         analysis.redefine_other_fraction))
        result.series[suite] = rows
    return result


# ====================================================================== Fig 2
@dataclass
class Figure2Result:
    #: suite -> averaged {consumer count -> fraction}
    histograms: dict = field(default_factory=dict)

    def single_use_fraction(self, suite: str) -> float:
        return self.histograms[suite].get(1, 0.0)

    def render(self) -> str:
        buckets = [1, 2, 3, 4, 5, 6]
        rows = []
        for suite, histogram in self.histograms.items():
            rows.append([_SUITE_LABELS[suite]] +
                        [pct(histogram.get(b, 0.0)) for b in buckets])
        return text_table(
            ["suite", "one", "two", "three", "four", "five", "6 or more"],
            rows, title="Figure 2: consumers per produced value")


def figure2(scale: Scale | None = None) -> Figure2Result:
    scale = scale or Scale.from_env()
    result = Figure2Result()
    for suite in ("specint", "specfp", "media+cog"):
        profiles = _suite_profiles(scale, suite)
        accumulated: dict[int, float] = {}
        for profile in profiles:
            analysis = analyze_stream(
                iter(SyntheticWorkload(profile, scale.insts, scale.seed)))
            for bucket, fraction in analysis.consumer_fractions().items():
                accumulated[bucket] = accumulated.get(bucket, 0.0) + fraction
        result.histograms[suite] = {
            b: v / len(profiles) for b, v in accumulated.items()
        }
    return result


# ====================================================================== Fig 3
@dataclass
class Figure3Result:
    #: suite -> list of (benchmark, {one,two,three,more})
    series: dict = field(default_factory=dict)

    def suite_average(self, suite: str) -> dict:
        rows = self.series[suite]
        keys = ("one", "two", "three", "more")
        return {k: sum(s[k] for _b, s in rows) / len(rows) for k in keys}

    def render(self) -> str:
        blocks = []
        for suite, rows in self.series.items():
            table_rows = [
                [b, pct(s["one"]), pct(s["two"]), pct(s["three"]), pct(s["more"])]
                for b, s in rows
            ]
            avg = self.suite_average(suite)
            table_rows.append(["average"] + [pct(avg[k]) for k in
                                             ("one", "two", "three", "more")])
            blocks.append(text_table(
                ["benchmark", "one reuse", "two reuses", "three reuses", "more"],
                table_rows,
                title=f"Figure 3 ({_SUITE_LABELS[suite]}): reusable "
                      f"destination renames by chain depth"))
        return "\n\n".join(blocks)


def figure3(scale: Scale | None = None) -> Figure3Result:
    scale = scale or Scale.from_env()
    result = Figure3Result()
    for suite in ("specint", "specfp", "media+cog"):
        rows = []
        for profile in _suite_profiles(scale, suite):
            chains = analyze_chains(
                iter(SyntheticWorkload(profile, scale.insts, scale.seed)))
            rows.append((profile.name, chains.figure3_series()))
        result.series[suite] = rows
    return result


# ====================================================================== Fig 9
@dataclass
class Figure9Result:
    #: shadow cells (1..3) -> {coverage -> registers needed}
    coverage: dict = field(default_factory=dict)

    def render(self) -> str:
        coverages = sorted(next(iter(self.coverage.values())).keys())
        rows = [[f"{k} shadow cell(s)"] +
                [str(self.coverage[k][c]) for c in coverages]
                for k in sorted(self.coverage)]
        return text_table(
            ["registers with"] + [pct(c, 0) + " of time" for c in coverages],
            rows,
            title="Figure 9: registers with shadow cells needed to cover "
                  "SPECfp execution")


def figure9(scale: Scale | None = None) -> Figure9Result:
    scale = scale or Scale.from_env()
    profiles = scale.profiles("specfp")[:4]
    merged = {1: [], 2: [], 3: []}
    for profile in profiles:
        workload = list(SyntheticWorkload(profile, scale.insts, scale.seed))
        demand = measure_shadow_demand(workload, total_regs=192)
        for k in (1, 2, 3):
            merged[k].extend(demand.samples[k])
    result = Figure9Result()
    coverages = (0.5, 0.75, 0.9, 0.95, 0.99)
    for k in (1, 2, 3):
        data = sorted(merged[k])
        result.coverage[k] = {
            c: (data[min(len(data) - 1, int(c * len(data)))] if data else 0)
            for c in coverages
        }
    return result


# ====================================================================== Fig 10
@dataclass
class Figure10Result:
    suite: str
    sizes: tuple
    rows: list = field(default_factory=list)  # SpeedupRow

    def average(self, size: int) -> float:
        return geomean(row.speedups[size] for row in self.rows)

    def render(self) -> str:
        table_rows = [
            [row.benchmark] + [pct(row.speedups[s] - 1.0) for s in self.sizes]
            for row in self.rows
        ]
        table_rows.append(
            ["average"] + [pct(self.average(s) - 1.0) for s in self.sizes])
        return text_table(
            ["benchmark"] + [f"RF {s}" for s in self.sizes], table_rows,
            title=f"Figure 10 ({_SUITE_LABELS.get(self.suite, self.suite)}): "
                  f"speedup over the baseline at equal area")


def figure10(suite: str, scale: Scale | None = None, *,
             jobs: int | None = None, cache=None,
             progress=None, **engine) -> Figure10Result:
    scale = scale or Scale.from_env()
    profiles = _suite_profiles(scale, suite)
    rows = sweep_speedups(profiles, scale, jobs=jobs, cache=cache,
                          progress=progress, **engine)
    return Figure10Result(suite=suite, sizes=scale.sizes, rows=rows)


# ====================================================================== Fig 11
@dataclass
class Figure11Result:
    sizes: tuple
    baseline_ipc: dict = field(default_factory=dict)
    proposed_ipc: dict = field(default_factory=dict)

    def iso_ipc_saving(self) -> float:
        """Register saving: smallest proposed size matching each baseline
        size's IPC, averaged (the paper's 10.5% claim)."""
        savings = []
        sizes = sorted(self.sizes)
        for baseline_size in sizes[1:]:
            target = self.baseline_ipc[baseline_size]
            for proposed_size in sizes:
                if self.proposed_ipc[proposed_size] >= target * 0.995:
                    if proposed_size < baseline_size:
                        savings.append(1.0 - proposed_size / baseline_size)
                    else:
                        savings.append(0.0)
                    break
        return sum(savings) / len(savings) if savings else 0.0

    def render(self) -> str:
        rows = [
            [s, f"{self.baseline_ipc[s]:.3f}", f"{self.proposed_ipc[s]:.3f}"]
            for s in self.sizes
        ]
        table = text_table(["registers", "baseline IPC", "proposed IPC"], rows,
                           title="Figure 11: average IPC vs register file size")
        return table + f"\niso-IPC register saving: {pct(self.iso_ipc_saving())}"


def figure11(scale: Scale | None = None, *, jobs: int | None = None,
             cache=None, progress=None, **engine) -> Figure11Result:
    scale = scale or Scale.from_env()
    profiles = scale.profiles("specint") + scale.profiles("specfp")
    points = [
        SweepPoint(profile=profile, scheme=scheme, size=size,
                   insts=scale.insts, seed=scale.seed,
                   sampling=scale.sampling)
        for size in scale.sizes
        for profile in profiles
        for scheme in ("conventional", "sharing")
    ]
    stats = collect_stats(
        run_points(points, jobs=jobs, cache=cache, progress=progress,
                   **engine))
    result = Figure11Result(sizes=scale.sizes)
    for size in scale.sizes:
        base = [stats[(p.name, "conventional", size, scale.seed)].ipc
                for p in profiles]
        prop = [stats[(p.name, "sharing", size, scale.seed)].ipc
                for p in profiles]
        result.baseline_ipc[size] = sum(base) / len(base)
        result.proposed_ipc[size] = sum(prop) / len(prop)
    return result


# ====================================================================== Ports
#: (renamer scheme, port scheme) columns of the ports figure.  The three
#: conventional baselines are equal-area: the port-reduced ones convert
#: the saved port area into extra rename registers (repro.area.equal_area),
#: so every column spends the same register-file budget differently.
PORT_CONFIGS = (
    ("conventional", "none"),
    ("conventional", "bypass_filter"),
    ("conventional", "banked_arbiter"),
    ("sharing", "none"),
)

_PORT_REDUCED = ("bypass_filter", "banked_arbiter")


@dataclass
class FigurePortsResult:
    sizes: tuple
    #: (scheme, port_scheme, size) -> average IPC across the profiles
    ipc: dict = field(default_factory=dict)
    #: (port_scheme, size) -> (equal-area int regs, equal-area fp regs)
    bonus: dict = field(default_factory=dict)
    #: (port_scheme, size) -> summed port counters across the profiles:
    #: {"stalls", "reads", "bypass", "delay", "insts"}
    counters: dict = field(default_factory=dict)

    def sharing_vs_best(self, size: int) -> float:
        """Sharing-scheme IPC over the *best* port-reduced conventional
        baseline at the same area — the figure's headline ratio."""
        best = max(self.ipc[("conventional", ps, size)]
                   for ps in _PORT_REDUCED)
        return self.ipc[("sharing", "none", size)] / best if best else 1.0

    def headline(self) -> float:
        return geomean(self.sharing_vs_best(s) for s in self.sizes)

    def render(self) -> str:
        rows = []
        for s in self.sizes:
            rows.append([
                s,
                f"{self.ipc[('conventional', 'none', s)]:.3f}",
                f"{self.ipc[('conventional', 'bypass_filter', s)]:.3f}",
                f"{self.ipc[('conventional', 'banked_arbiter', s)]:.3f}",
                f"{self.ipc[('sharing', 'none', s)]:.3f}",
                pct(self.sharing_vs_best(s) - 1.0),
            ])
        ipc_table = text_table(
            ["registers", "conv 8R", "conv+bypass", "conv+banked",
             "sharing", "sharing vs best"],
            rows,
            title="Ports figure: average IPC at equal area, read-port "
                  "reduction vs register sharing")
        detail_rows = []
        for ps in _PORT_REDUCED:
            for s in self.sizes:
                int_regs, fp_regs = self.bonus[(ps, s)]
                c = self.counters[(ps, s)]
                kinsts = c["insts"] / 1000.0 or 1.0
                served = c["reads"] + c["bypass"]
                detail_rows.append([
                    ps, s, f"{int_regs}/{fp_regs}",
                    f"{c['stalls'] / kinsts:.2f}",
                    pct(c["bypass"] / served) if served else "-",
                    f"{c['delay'] / kinsts:.2f}",
                ])
        detail_table = text_table(
            ["port scheme", "registers", "equal-area regs (int/fp)",
             "port stalls/kinst", "bypassed reads", "delay cycles/kinst"],
            detail_rows,
            title="Ports table: equal-area register bonus and port traffic "
                  "(conventional baseline)")
        return (ipc_table + "\n\n" + detail_table +
                f"\nsharing vs best port-reduced baseline: "
                f"{pct(self.headline() - 1.0)} (geomean over sizes)")


def figure_ports(scale: Scale | None = None, *, jobs: int | None = None,
                 cache=None, progress=None, **engine) -> FigurePortsResult:
    """Does register sharing still win when the conventional baseline also
    spends its area on port reduction?  Sweeps every PORT_CONFIGS column
    over the specint+specfp profiles and the equal-area size axis."""
    from repro.area.equal_area import equal_area_regs

    scale = scale or Scale.from_env()
    profiles = scale.profiles("specint") + scale.profiles("specfp")
    points = [
        SweepPoint(profile=profile, scheme=scheme, size=size,
                   insts=scale.insts, seed=scale.seed,
                   sampling=scale.sampling, port_scheme=port_scheme)
        for size in scale.sizes
        for profile in profiles
        for scheme, port_scheme in PORT_CONFIGS
    ]
    results = run_points(points, jobs=jobs, cache=cache, progress=progress,
                         **engine)
    failures = [r for r in results if not r.ok]
    if failures:
        raise SweepError(failures)
    # collect_stats keys on (benchmark, scheme, size, seed), which would
    # collide across port schemes — index by zipping the ordered results
    # back onto the ordered points instead
    stats = {(p.benchmark, p.scheme, p.port_scheme, p.size): r.stats
             for p, r in zip(points, results)}
    result = FigurePortsResult(sizes=scale.sizes)
    for size in scale.sizes:
        for scheme, port_scheme in PORT_CONFIGS:
            ipcs = [stats[(p.name, scheme, port_scheme, size)].ipc
                    for p in profiles]
            result.ipc[(scheme, port_scheme, size)] = sum(ipcs) / len(ipcs)
        for port_scheme in _PORT_REDUCED:
            result.bonus[(port_scheme, size)] = (
                equal_area_regs(size, port_scheme, bits=64),
                equal_area_regs(size, port_scheme, bits=128))
            sums = {"stalls": 0, "reads": 0, "bypass": 0, "delay": 0,
                    "insts": 0}
            for p in profiles:
                s = stats[(p.name, "conventional", port_scheme, size)]
                sums["stalls"] += s.rf_port_stalls
                sums["reads"] += s.rf_port_reads
                sums["bypass"] += s.rf_bypass_reads
                sums["delay"] += s.rf_delay_cycles
                sums["insts"] += s.committed
            result.counters[(port_scheme, size)] = sums
    return result


# ====================================================================== Fig 12
@dataclass
class Figure12Result:
    #: suite -> {category -> fraction of releases}
    breakdown: dict = field(default_factory=dict)

    def accuracy(self, suite: str) -> float:
        b = self.breakdown[suite]
        return b["reuse correct"] + b["no reuse correct"] + b["reuse unused"]

    def render(self) -> str:
        categories = ["reuse correct", "reuse incorrect", "no reuse correct",
                      "no reuse incorrect", "reuse unused"]
        rows = [[_SUITE_LABELS[suite]] + [pct(b[c]) for c in categories]
                for suite, b in self.breakdown.items()]
        return text_table(["suite"] + categories, rows,
                          title="Figure 12: register-type predictor accuracy")


def figure12(scale: Scale | None = None, size: int = 64, *,
             jobs: int | None = None, cache=None,
             progress=None, **engine) -> Figure12Result:
    scale = scale or Scale.from_env()
    result = Figure12Result()
    all_profiles = [profile for suite in ("specint", "specfp")
                    for profile in _suite_profiles(scale, suite)]
    points = [SweepPoint(profile=profile, scheme="sharing", size=size,
                         insts=scale.insts, seed=scale.seed,
                         sampling=scale.sampling)
              for profile in all_profiles]
    by_key = collect_stats(
        run_points(points, jobs=jobs, cache=cache, progress=progress,
                   **engine))
    for suite in ("specint", "specfp"):
        totals = {"reuse correct": 0, "reuse incorrect": 0,
                  "no reuse correct": 0, "no reuse incorrect": 0,
                  "reuse unused": 0}
        releases = 0
        for profile in _suite_profiles(scale, suite):
            stats = by_key[(profile.name, "sharing", size, scale.seed)]
            p = stats.predictor_stats
            totals["reuse correct"] += p.reuse_correct
            totals["reuse incorrect"] += p.reuse_incorrect
            totals["no reuse correct"] += p.no_reuse_correct
            totals["no reuse incorrect"] += p.no_reuse_incorrect
            totals["reuse unused"] += p.reuse_unused
            releases += p.releases
        result.breakdown[suite] = {
            k: v / releases if releases else 0.0 for k, v in totals.items()
        }
    return result
