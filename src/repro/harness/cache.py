"""Persistent, content-addressed caches for the experiment harness.

Two caches live here:

**Result cache** — every sweep point the harness runs is a pure function
of its inputs — the :class:`~repro.pipeline.config.MachineConfig`, the
workload profile, the instruction count, the seed and the sampling
schedule (``None`` for exact runs) — plus the simulator's own code.  The
cache keys on a stable SHA-256 of exactly those inputs, with a
*code fingerprint* (a hash over every ``.py`` file of the ``repro``
package) folded in so results from a stale simulator invalidate
automatically instead of silently polluting figures.  Values are
:meth:`~repro.pipeline.stats.SimStats.to_dict` /
:meth:`~repro.pipeline.stats.SampledStats.to_dict` snapshots stored
one-JSON-file-per-entry under the cache root:

* ``REPRO_CACHE_DIR`` environment variable, else
* ``~/.cache/repro/sweeps``.

**Trace cache** — pregenerated synthetic-workload traces, keyed by
(profile, insts, seed, body_iters) plus a *generator fingerprint* that
hashes only the workload-generation modules, so simulator changes do not
invalidate traces.  Entries are gzipped JSON-lines
(:mod:`repro.workloads.trace_io` format) under ``REPRO_TRACE_DIR``, else
``REPRO_CACHE_DIR``/traces, else ``~/.cache/repro/traces``.
:func:`cached_stream` is the harness entry point: cold ProcessPool
workers decode a trace from disk instead of re-running the generator.

Corrupted or truncated entries are treated as misses (and removed), never
as errors.  There is no automatic eviction — result entries are a few KB
each — but :meth:`ResultCache.prune` drops the oldest entries past a
bound, and deleting either directory is always safe.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import asdict
from functools import lru_cache
from pathlib import Path
from typing import Optional, Union

from repro.pipeline.config import MachineConfig
from repro.pipeline.stats import SampledStats, SimStats, stats_from_dict
from repro.workloads.profiles import WorkloadProfile


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


def default_journal_dir() -> Path:
    """Where ``--resume`` sweep journals live by default."""
    env = os.environ.get("REPRO_JOURNAL_DIR")
    if env:
        return Path(env)
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env) / "journals"
    return Path.home() / ".cache" / "repro" / "journals"


def _unlink_quietly(path: Union[str, os.PathLike]) -> None:
    """Best-effort unlink: a concurrent writer/reader may already have
    removed (or be replacing) the entry — never an error."""
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass
    except OSError:
        pass


def atomic_write_bytes(path: os.PathLike, data: bytes) -> None:
    """Crash-safe file publication: temp file + fsync + atomic rename.

    Readers — including a resumed run after SIGKILL — observe either the
    previous complete contents or the new complete contents, never a torn
    intermediate.  The fsync orders the data before the rename so a power
    loss cannot leave a renamed-but-empty file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)  # atomic on POSIX
    except BaseException:
        _unlink_quietly(tmp)
        raise


def atomic_write_text(path: os.PathLike, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of the whole ``repro`` package source.

    Conservative by design: *any* source change invalidates every cached
    result, because config/workload hashing cannot know which module a
    simulation's behaviour actually depends on.
    """
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def point_key(config: MachineConfig, profile: WorkloadProfile, insts: int,
              seed: int, fingerprint: Optional[str] = None,
              sampling: Optional[str] = None) -> str:
    """Stable content hash of one simulation's complete inputs.

    ``sampling`` is the ``PERIOD:WINDOW:WARMUP`` spec for interval-sampled
    runs and ``None`` for exact runs — the two must never share a cache
    entry (a sampled estimate silently standing in for an exact result
    would corrupt golden comparisons).
    """
    payload = {
        "config": asdict(config),
        "profile": asdict(profile),
        "insts": insts,
        "seed": seed,
        "sampling": sampling,
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """On-disk SimStats cache; safe for concurrent writers (atomic rename)."""

    def __init__(self, root: Optional[os.PathLike] = None,
                 fingerprint: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.fingerprint = fingerprint if fingerprint is not None \
            else code_fingerprint()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ keys
    def key_for(self, config: MachineConfig, profile: WorkloadProfile,
                insts: int, seed: int,
                sampling: Optional[str] = None) -> str:
        return point_key(config, profile, insts, seed, self.fingerprint,
                         sampling=sampling)

    def key_for_point(self, point) -> str:
        """Key for a :class:`~repro.harness.parallel.SweepPoint`."""
        from repro.harness.runner import make_config  # avoid import cycle

        config = make_config(point.profile, point.scheme, point.size)
        return self.key_for(config, point.profile, point.insts, point.seed,
                            sampling=getattr(point, "sampling", None))

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ access
    def get(self, key: str) -> Optional[Union[SimStats, SampledStats]]:
        path = self._path(key)
        try:
            with open(path) as handle:
                stats = stats_from_dict(json.load(handle))
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # corrupted/truncated/wrong-schema entry: a miss, not a crash
            # (another reader may have unlinked it first — also fine)
            self.misses += 1
            _unlink_quietly(path)
            return None
        self.hits += 1
        return stats

    def put(self, key: str, stats: Union[SimStats, SampledStats]) -> None:
        atomic_write_text(self._path(key), json.dumps(stats.to_dict()))

    # ------------------------------------------------------------------ maintenance
    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return list(self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self._entries())

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        entries = self._entries()
        for path in entries:
            _unlink_quietly(path)
        return len(entries)

    def prune(self, max_entries: int = 50_000) -> int:
        """Drop the oldest entries (by mtime) beyond ``max_entries``."""
        entries = self._entries()
        excess = len(entries) - max_entries
        if excess <= 0:
            return 0
        entries.sort(key=lambda path: path.stat().st_mtime)
        for path in entries[:excess]:
            _unlink_quietly(path)
        return excess


# ---------------------------------------------------------------------- traces
def default_trace_dir() -> Path:
    env = os.environ.get("REPRO_TRACE_DIR")
    if env:
        return Path(env)
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env) / "traces"
    return Path.home() / ".cache" / "repro" / "traces"


@lru_cache(maxsize=1)
def generator_fingerprint() -> str:
    """Hash of only the workload-generation source.

    Deliberately narrower than :func:`code_fingerprint`: a pregenerated
    trace depends on the generator, the profiles and the serialization
    format — not on the simulator.  Pipeline changes keep traces valid.
    """
    from repro.workloads import generator, profiles, trace_io

    digest = hashlib.sha256()
    for module in (generator, profiles, trace_io):
        path = Path(module.__file__)
        digest.update(path.name.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def trace_key(profile: WorkloadProfile, insts: int, seed: int,
              body_iters: int = 50,
              fingerprint: Optional[str] = None) -> str:
    """Stable content hash of one pregenerated trace's inputs."""
    payload = {
        "profile": asdict(profile),
        "insts": insts,
        "seed": seed,
        "body_iters": body_iters,
        "generator": fingerprint if fingerprint is not None
        else generator_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


class TraceCache:
    """On-disk pregenerated-trace cache (gzipped JSON-lines per entry)."""

    def __init__(self, root: Optional[os.PathLike] = None,
                 fingerprint: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_trace_dir()
        self.fingerprint = fingerprint if fingerprint is not None \
            else generator_fingerprint()
        self.hits = 0
        self.misses = 0

    def key_for(self, profile: WorkloadProfile, insts: int, seed: int,
                body_iters: int = 50) -> str:
        return trace_key(profile, insts, seed, body_iters, self.fingerprint)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.jsonl.gz"

    def get_text(self, key: str) -> Optional[str]:
        """The stored trace as JSON-lines text, or ``None`` on a miss.

        The first line is a ``{"count": N}`` header; a mismatch between
        the header and the body (a truncated write that survived
        compression framing) reads as a miss, like any other corruption.
        """
        path = self._path(key)
        try:
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                header = json.loads(handle.readline())
                body = handle.read()
            count = header["count"]
            if body.count("\n") != count:
                raise ValueError("trace line count mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.misses += 1
            _unlink_quietly(path)
            return None
        self.hits += 1
        return body

    def put_text(self, key: str, text: str, count: int) -> None:
        buffer = io.BytesIO()
        with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as handle:
            handle.write(json.dumps({"count": count}).encode("utf-8"))
            handle.write(b"\n")
            handle.write(text.encode("utf-8"))
        atomic_write_bytes(self._path(key), buffer.getvalue())

    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return list(self.root.glob("??/*.jsonl.gz"))

    def __len__(self) -> int:
        return len(self._entries())

    def clear(self) -> int:
        entries = self._entries()
        for path in entries:
            _unlink_quietly(path)
        return len(entries)


class TraceStream:
    """Re-iterable decoded trace: every iteration re-decodes the text, so
    each pass yields fresh :class:`~repro.isa.dyninst.DynInst` objects
    (the pipeline mutates instructions in place)."""

    def __init__(self, text: str, total_insts: int) -> None:
        self._text = text
        self.total_insts = total_insts

    def __iter__(self):
        from repro.workloads.trace_io import load_trace

        return load_trace(io.StringIO(self._text))


#: process-local decoded-trace memo (text is shared, decoding is per-pass)
_TRACE_MEMO: "OrderedDict[tuple, str]" = OrderedDict()
_TRACE_MEMO_LIMIT = 8


def cached_stream(profile: WorkloadProfile, insts: int, seed: int = 1,
                  body_iters: int = 50, cache: Optional[TraceCache] = None):
    """The workload stream for one sweep point, via the trace cache.

    Resolution order: process-local memo -> on-disk trace cache ->
    generate (and populate both).  Every path returns a
    :class:`TraceStream` decoded from the serialized text — never the raw
    generator — so jobs=1, warm-worker and cold-worker runs all consume
    byte-identical streams.  Set ``REPRO_NO_TRACE_CACHE=1`` to bypass the
    cache and use the in-memory generator directly.
    """
    if os.environ.get("REPRO_NO_TRACE_CACHE"):
        from repro.workloads.generator import shared_workload

        return shared_workload(profile, insts, seed, body_iters)
    memo_key = (profile.name, insts, seed, body_iters)
    text = _TRACE_MEMO.get(memo_key)
    if text is None:
        trace_cache = cache if cache is not None else TraceCache()
        key = trace_cache.key_for(profile, insts, seed, body_iters)
        text = trace_cache.get_text(key)
        if text is None:
            from repro.workloads.generator import SyntheticWorkload
            from repro.workloads.trace_io import save_trace

            workload = SyntheticWorkload(profile, total_insts=insts,
                                         seed=seed, body_iters=body_iters)
            buffer = io.StringIO()
            count = save_trace(iter(workload), buffer)
            text = buffer.getvalue()
            trace_cache.put_text(key, text, count)
        _TRACE_MEMO[memo_key] = text
        _TRACE_MEMO.move_to_end(memo_key)
        while len(_TRACE_MEMO) > _TRACE_MEMO_LIMIT:
            _TRACE_MEMO.popitem(last=False)
    else:
        _TRACE_MEMO.move_to_end(memo_key)
    return TraceStream(text, insts)
