"""Persistent, content-addressed caches for the experiment harness.

Two caches live here:

**Result cache** — every sweep point the harness runs is a pure function
of its inputs — the :class:`~repro.pipeline.config.MachineConfig`, the
workload profile, the instruction count, the seed and the sampling
schedule (``None`` for exact runs) — plus the simulator's own code.  The
cache keys on a stable SHA-256 of exactly those inputs, with a
*code fingerprint* (a hash over every ``.py`` file of the ``repro``
package) folded in so results from a stale simulator invalidate
automatically instead of silently polluting figures.  Values are
:meth:`~repro.pipeline.stats.SimStats.to_dict` /
:meth:`~repro.pipeline.stats.SampledStats.to_dict` snapshots stored
one-JSON-file-per-entry under the cache root:

* ``REPRO_CACHE_DIR`` environment variable, else
* ``~/.cache/repro/sweeps``.

**Trace cache** — pregenerated synthetic-workload traces, keyed by
(profile, insts, seed, body_iters) plus a *generator fingerprint* that
hashes only the workload-generation modules, so simulator changes do not
invalidate traces.  Entries are stored in the binary columnar codec
(:mod:`repro.workloads.trace_codec`, ``.rtc`` files) by default; the
gzipped JSON-lines container (:mod:`repro.workloads.trace_io` format,
``.jsonl.gz``) remains as the human-readable interchange and the
measured legacy comparison path (``REPRO_TRACE_FORMAT=jsonl``).  Both
live under ``REPRO_TRACE_DIR``, else ``REPRO_CACHE_DIR``/traces, else
``~/.cache/repro/traces``.  :func:`cached_stream` is the harness entry
point: cold ProcessPool workers decode a trace from disk (or from the
parent's shared-memory broadcast, :mod:`repro.harness.parallel`) instead
of re-running the generator; a process-local LRU (:class:`TraceMemo`,
sized by ``REPRO_TRACE_MEMO``) keeps the parsed columns of recently
used workloads so repeat points pay only re-materialization.

Corrupted or truncated entries are treated as misses (and removed), never
as errors.  There is no automatic eviction — result entries are a few KB
each — but :meth:`ResultCache.prune` drops the oldest entries past a
bound, and deleting either directory is always safe.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import asdict
from functools import lru_cache
from pathlib import Path
from typing import Optional, Union

from repro.pipeline.config import MachineConfig
from repro.pipeline.stats import SampledStats, SimStats, stats_from_dict
from repro.workloads.profiles import WorkloadProfile


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


def default_journal_dir() -> Path:
    """Where ``--resume`` sweep journals live by default."""
    env = os.environ.get("REPRO_JOURNAL_DIR")
    if env:
        return Path(env)
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env) / "journals"
    return Path.home() / ".cache" / "repro" / "journals"


def _unlink_quietly(path: Union[str, os.PathLike]) -> None:
    """Best-effort unlink: a concurrent writer/reader may already have
    removed (or be replacing) the entry — never an error."""
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass
    except OSError:
        pass


def atomic_write_bytes(path: os.PathLike, data: bytes) -> None:
    """Crash-safe file publication: temp file + fsync + atomic rename.

    Readers — including a resumed run after SIGKILL — observe either the
    previous complete contents or the new complete contents, never a torn
    intermediate.  The fsync orders the data before the rename so a power
    loss cannot leave a renamed-but-empty file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)  # atomic on POSIX
    except BaseException:
        _unlink_quietly(tmp)
        raise


def atomic_write_text(path: os.PathLike, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of the whole ``repro`` package source.

    Conservative by design: *any* source change invalidates every cached
    result, because config/workload hashing cannot know which module a
    simulation's behaviour actually depends on.
    """
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def point_key(config: MachineConfig, profile: WorkloadProfile, insts: int,
              seed: int, fingerprint: Optional[str] = None,
              sampling: Optional[str] = None) -> str:
    """Stable content hash of one simulation's complete inputs.

    ``sampling`` is the ``PERIOD:WINDOW:WARMUP`` spec for interval-sampled
    runs and ``None`` for exact runs — the two must never share a cache
    entry (a sampled estimate silently standing in for an exact result
    would corrupt golden comparisons).
    """
    payload = {
        "config": asdict(config),
        "profile": asdict(profile),
        "insts": insts,
        "seed": seed,
        "sampling": sampling,
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """On-disk SimStats cache; safe for concurrent writers (atomic rename)."""

    def __init__(self, root: Optional[os.PathLike] = None,
                 fingerprint: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.fingerprint = fingerprint if fingerprint is not None \
            else code_fingerprint()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ keys
    def key_for(self, config: MachineConfig, profile: WorkloadProfile,
                insts: int, seed: int,
                sampling: Optional[str] = None) -> str:
        return point_key(config, profile, insts, seed, self.fingerprint,
                         sampling=sampling)

    def key_for_point(self, point) -> str:
        """Key for a :class:`~repro.harness.parallel.SweepPoint`."""
        from repro.harness.runner import make_config  # avoid import cycle

        config = make_config(point.profile, point.scheme, point.size)
        return self.key_for(config, point.profile, point.insts, point.seed,
                            sampling=getattr(point, "sampling", None))

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ access
    def get(self, key: str) -> Optional[Union[SimStats, SampledStats]]:
        path = self._path(key)
        try:
            with open(path) as handle:
                stats = stats_from_dict(json.load(handle))
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # corrupted/truncated/wrong-schema entry: a miss, not a crash
            # (another reader may have unlinked it first — also fine)
            self.misses += 1
            _unlink_quietly(path)
            return None
        self.hits += 1
        return stats

    def put(self, key: str, stats: Union[SimStats, SampledStats]) -> None:
        atomic_write_text(self._path(key), json.dumps(stats.to_dict()))

    # ------------------------------------------------------------- raw bytes
    def get_bytes(self, key: str) -> Optional[bytes]:
        """The entry's exact stored JSON bytes, validated — or ``None``.

        Used by the fleet's content-addressed store: shipping the stored
        bytes verbatim keeps the transfer digest stable across hops.
        Corrupt entries read as misses and are unlinked, same as
        :meth:`get`.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
            stats_from_dict(json.loads(blob.decode("utf-8")))
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.misses += 1
            _unlink_quietly(path)
            return None
        self.hits += 1
        return blob

    def put_bytes(self, key: str, blob: bytes) -> None:
        """Store an entry from its serialized bytes (caller validates)."""
        atomic_write_bytes(self._path(key), blob)

    # ------------------------------------------------------------------ maintenance
    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return list(self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self._entries())

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        entries = self._entries()
        for path in entries:
            _unlink_quietly(path)
        return len(entries)

    def prune(self, max_entries: int = 50_000) -> int:
        """Drop the oldest entries (by mtime) beyond ``max_entries``."""
        entries = self._entries()
        excess = len(entries) - max_entries
        if excess <= 0:
            return 0
        entries.sort(key=lambda path: path.stat().st_mtime)
        for path in entries[:excess]:
            _unlink_quietly(path)
        return excess


# ---------------------------------------------------------------------- traces
def default_trace_dir() -> Path:
    env = os.environ.get("REPRO_TRACE_DIR")
    if env:
        return Path(env)
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env) / "traces"
    return Path.home() / ".cache" / "repro" / "traces"


@lru_cache(maxsize=1)
def generator_fingerprint() -> str:
    """Hash of only the workload-generation source.

    Deliberately narrower than :func:`code_fingerprint`: a pregenerated
    trace depends on the generator, the profiles and the serialization
    formats — not on the simulator.  Pipeline changes keep traces valid.
    """
    from repro.workloads import generator, profiles, trace_codec, trace_io

    digest = hashlib.sha256()
    for module in (generator, profiles, trace_codec, trace_io):
        path = Path(module.__file__)
        digest.update(path.name.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


#: trace storage format: "binary" (columnar codec) | "jsonl" (legacy)
TRACE_FORMAT_ENV = "REPRO_TRACE_FORMAT"

#: entry bound of the process-local trace memo
TRACE_MEMO_ENV = "REPRO_TRACE_MEMO"


def trace_format() -> str:
    """``REPRO_TRACE_FORMAT`` env, validated; default ``binary``."""
    fmt = os.environ.get(TRACE_FORMAT_ENV, "").strip() or "binary"
    if fmt not in ("binary", "jsonl"):
        raise ValueError(f"{TRACE_FORMAT_ENV}={fmt!r}: expected "
                         f"'binary' or 'jsonl'")
    return fmt


def trace_key(profile: WorkloadProfile, insts: int, seed: int,
              body_iters: int = 50,
              fingerprint: Optional[str] = None) -> str:
    """Stable content hash of one pregenerated trace's inputs."""
    payload = {
        "profile": asdict(profile),
        "insts": insts,
        "seed": seed,
        "body_iters": body_iters,
        "generator": fingerprint if fingerprint is not None
        else generator_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


class TraceStream:
    """Re-iterable binary-codec trace.

    The blob is parsed into :class:`~repro.workloads.trace_codec.
    TraceColumns` once (lazily, checksum-validated); every iteration
    re-materializes fresh :class:`~repro.isa.dyninst.DynInst` objects,
    because the pipeline mutates instructions in place.  Holding the
    stream (e.g. in :class:`TraceMemo`) therefore amortizes the parse
    across passes — repeat points pay only materialization.
    """

    def __init__(self, blob: bytes, total_insts: int) -> None:
        self.blob = blob
        self.total_insts = total_insts
        self._columns = None

    def columns(self):
        if self._columns is None:
            from repro.workloads.trace_codec import decode_columns

            self._columns = decode_columns(self.blob)
        return self._columns

    def __iter__(self):
        return iter(self.columns().materialize())


class JsonTraceStream:
    """Re-iterable JSON-lines trace (legacy/interchange path): every
    iteration re-decodes the text, so each pass yields fresh
    :class:`~repro.isa.dyninst.DynInst` objects."""

    def __init__(self, text: str, total_insts: int) -> None:
        self._text = text
        self.total_insts = total_insts

    def __iter__(self):
        from repro.workloads.trace_io import load_trace

        return load_trace(io.StringIO(self._text))


class TraceCache:
    """On-disk pregenerated-trace cache.

    One entry per trace key, stored either as a binary columnar blob
    (``.rtc``, the default) or as a gzipped JSON-lines container
    (``.jsonl.gz``, the interchange/legacy format); ``format`` defaults
    to :func:`trace_format` (``REPRO_TRACE_FORMAT``).  Reads probe the
    cache's own format first, then fall back to the other, so a cache
    directory written by the legacy path keeps working after the switch.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 fingerprint: Optional[str] = None,
                 format: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_trace_dir()
        self.fingerprint = fingerprint if fingerprint is not None \
            else generator_fingerprint()
        self.format = format if format is not None else trace_format()
        if self.format not in ("binary", "jsonl"):
            raise ValueError(f"unknown trace format {self.format!r}")
        self.hits = 0
        self.misses = 0

    def key_for(self, profile: WorkloadProfile, insts: int, seed: int,
                body_iters: int = 50) -> str:
        return trace_key(profile, insts, seed, body_iters, self.fingerprint)

    def _path(self, key: str, format: Optional[str] = None) -> Path:
        suffix = ".rtc" if (format or self.format) == "binary" \
            else ".jsonl.gz"
        return self.root / key[:2] / f"{key}{suffix}"

    # ------------------------------------------------------------ binary
    def get_blob(self, key: str) -> Optional[bytes]:
        """The stored binary trace blob, or ``None`` on a miss.

        The blob's header (magic, version, schema digest) and payload
        checksum are validated here, so corruption, truncation and
        version skew all read as misses (and remove the entry) rather
        than surfacing later as decode errors.
        """
        from repro.workloads.trace_codec import TraceCodecError, trace_count

        path = self._path(key, "binary")
        try:
            blob = path.read_bytes()
            trace_count(blob)  # full header + checksum validation
        except FileNotFoundError:
            self.misses += 1
            return None
        except (TraceCodecError, OSError, ValueError):
            self.misses += 1
            _unlink_quietly(path)
            return None
        self.hits += 1
        return blob

    def put_blob(self, key: str, blob: bytes) -> None:
        atomic_write_bytes(self._path(key, "binary"), blob)

    # ------------------------------------------------------------- jsonl
    def get_text(self, key: str) -> Optional[str]:
        """The stored trace as JSON-lines text, or ``None`` on a miss.

        The first line is a ``{"count": N}`` header; a mismatch between
        the header and the body (a truncated write that survived
        compression framing) reads as a miss, like any other corruption.
        """
        path = self._path(key, "jsonl")
        try:
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                header = json.loads(handle.readline())
                body = handle.read()
            count = header["count"]
            if body.count("\n") != count:
                raise ValueError("trace line count mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.misses += 1
            _unlink_quietly(path)
            return None
        self.hits += 1
        return body

    def put_text(self, key: str, text: str, count: int) -> None:
        buffer = io.BytesIO()
        with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as handle:
            handle.write(json.dumps({"count": count}).encode("utf-8"))
            handle.write(b"\n")
            handle.write(text.encode("utf-8"))
        atomic_write_bytes(self._path(key, "jsonl"), buffer.getvalue())

    # ----------------------------------------------------------- streams
    def get_stream(self, key: str,
                   insts: int) -> Optional[Union[TraceStream,
                                                 JsonTraceStream]]:
        """The cached trace as a re-iterable stream, or ``None``.

        Probes the cache's own format first, then the other format, so
        mixed-format cache directories never force regeneration.  Only
        the first probe's miss is counted (the fallback is opportunistic).
        """
        if self.format == "binary":
            blob = self.get_blob(key)
            if blob is not None:
                return TraceStream(blob, insts)
            text = self.get_text(key)
            if text is not None:
                self.misses -= 1  # fallback hit, not a real miss
                return JsonTraceStream(text, insts)
            self.misses -= 1
            return None
        text = self.get_text(key)
        if text is not None:
            return JsonTraceStream(text, insts)
        blob = self.get_blob(key)
        if blob is not None:
            self.misses -= 1
            return TraceStream(blob, insts)
        self.misses -= 1
        return None

    def put_insts(self, key: str, insts_list: list,
                  total_insts: int) -> Union[TraceStream, JsonTraceStream]:
        """Serialize a generated instruction list per the cache format,
        store it, and return the stream decoded from the stored bytes."""
        if self.format == "binary":
            from repro.workloads.trace_codec import TraceCodecError, encode

            try:
                blob = encode(insts_list)
            except TraceCodecError:
                pass  # unrepresentable trace: fall back to jsonl below
            else:
                self.put_blob(key, blob)
                return TraceStream(blob, total_insts)
        from repro.workloads.trace_io import save_trace

        buffer = io.StringIO()
        count = save_trace(iter(insts_list), buffer)
        text = buffer.getvalue()
        self.put_text(key, text, count)
        return JsonTraceStream(text, total_insts)

    # ------------------------------------------------------- maintenance
    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return list(self.root.glob("??/*.jsonl.gz")) \
            + list(self.root.glob("??/*.rtc"))

    def __len__(self) -> int:
        return len(self._entries())

    def clear(self) -> int:
        entries = self._entries()
        for path in entries:
            _unlink_quietly(path)
        return len(entries)


class TraceMemo:
    """Process-local LRU of decoded trace streams.

    Keyed by (profile, insts, seed, body_iters, format); bounded by
    ``REPRO_TRACE_MEMO`` (default 32 entries, 0 disables).  Holding the
    stream object — not just its bytes — keeps a binary stream's parsed
    columns warm, so a worker revisiting a workload pays only
    re-materialization.  Hit/miss counters feed the bench report.
    """

    DEFAULT_LIMIT = 32

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is None:
            raw = os.environ.get(TRACE_MEMO_ENV, "").strip()
            limit = int(raw) if raw else self.DEFAULT_LIMIT
        if limit < 0:
            raise ValueError(f"{TRACE_MEMO_ENV} must be >= 0, got {limit}")
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()

    def get(self, key: tuple):
        stream = self._entries.get(key)
        if stream is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return stream

    def put(self, key: tuple, stream) -> None:
        if self.limit == 0:
            return
        self._entries[key] = stream
        self._entries.move_to_end(key)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def stats(self) -> dict:
        return {"limit": self.limit, "entries": len(self._entries),
                "hits": self.hits, "misses": self.misses}


#: process-wide memo instance; replace via :func:`reset_trace_memo`
TRACE_MEMO = TraceMemo()


def reset_trace_memo(limit: Optional[int] = None) -> TraceMemo:
    """Install a fresh :class:`TraceMemo` (re-reading ``REPRO_TRACE_MEMO``
    unless ``limit`` is given) and return it.  Used by tests and by the
    bench harness to start from a cold memo."""
    global TRACE_MEMO
    TRACE_MEMO = TraceMemo(limit)
    return TRACE_MEMO


def cached_stream(profile: WorkloadProfile, insts: int, seed: int = 1,
                  body_iters: int = 50, cache: Optional[TraceCache] = None):
    """The workload stream for one sweep point, via the trace cache.

    Resolution order: process-local :class:`TraceMemo` -> on-disk trace
    cache (binary ``.rtc`` by default; see ``REPRO_TRACE_FORMAT``) ->
    generate (and populate both).  Every path returns a stream decoded
    from the serialized bytes — never the raw generator — so jobs=1,
    warm-worker and cold-worker runs all consume byte-identical streams.
    Set ``REPRO_NO_TRACE_CACHE=1`` to bypass the cache and use the
    in-memory generator directly.
    """
    if os.environ.get("REPRO_NO_TRACE_CACHE"):
        from repro.workloads.generator import shared_workload

        return shared_workload(profile, insts, seed, body_iters)
    trace_cache = cache if cache is not None else TraceCache()
    memo_key = (profile.name, insts, seed, body_iters, trace_cache.format)
    stream = TRACE_MEMO.get(memo_key)
    if stream is None:
        key = trace_cache.key_for(profile, insts, seed, body_iters)
        stream = trace_cache.get_stream(key, insts)
        if stream is None:
            from repro.workloads.generator import SyntheticWorkload

            workload = SyntheticWorkload(profile, total_insts=insts,
                                         seed=seed, body_iters=body_iters)
            stream = trace_cache.put_insts(key, list(iter(workload)), insts)
        TRACE_MEMO.put(memo_key, stream)
    return stream
