"""Persistent, content-addressed cache of simulation results.

Every sweep point the harness runs is a pure function of its inputs —
the :class:`~repro.pipeline.config.MachineConfig`, the workload profile,
the instruction count and the seed — plus the simulator's own code.  The
cache keys on a stable SHA-256 of exactly those inputs, with a
*code fingerprint* (a hash over every ``.py`` file of the ``repro``
package) folded in so results from a stale simulator invalidate
automatically instead of silently polluting figures.

Values are :meth:`~repro.pipeline.stats.SimStats.to_dict` snapshots
stored one-JSON-file-per-entry under the cache root:

* ``REPRO_CACHE_DIR`` environment variable, else
* ``~/.cache/repro/sweeps``.

Corrupted or truncated entries are treated as misses (and removed), never
as errors.  There is no automatic eviction — entries are a few KB each —
but :meth:`ResultCache.prune` drops the oldest entries past a bound, and
deleting the directory is always safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from functools import lru_cache
from pathlib import Path
from typing import Optional

from repro.pipeline.config import MachineConfig
from repro.pipeline.stats import SimStats
from repro.workloads.profiles import WorkloadProfile


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of the whole ``repro`` package source.

    Conservative by design: *any* source change invalidates every cached
    result, because config/workload hashing cannot know which module a
    simulation's behaviour actually depends on.
    """
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def point_key(config: MachineConfig, profile: WorkloadProfile, insts: int,
              seed: int, fingerprint: Optional[str] = None) -> str:
    """Stable content hash of one simulation's complete inputs."""
    payload = {
        "config": asdict(config),
        "profile": asdict(profile),
        "insts": insts,
        "seed": seed,
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """On-disk SimStats cache; safe for concurrent writers (atomic rename)."""

    def __init__(self, root: Optional[os.PathLike] = None,
                 fingerprint: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.fingerprint = fingerprint if fingerprint is not None \
            else code_fingerprint()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ keys
    def key_for(self, config: MachineConfig, profile: WorkloadProfile,
                insts: int, seed: int) -> str:
        return point_key(config, profile, insts, seed, self.fingerprint)

    def key_for_point(self, point) -> str:
        """Key for a :class:`~repro.harness.parallel.SweepPoint`."""
        from repro.harness.runner import make_config  # avoid import cycle

        config = make_config(point.profile, point.scheme, point.size)
        return self.key_for(config, point.profile, point.insts, point.seed)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ access
    def get(self, key: str) -> Optional[SimStats]:
        path = self._path(key)
        try:
            with open(path) as handle:
                stats = SimStats.from_dict(json.load(handle))
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # corrupted/truncated/wrong-schema entry: a miss, not a crash
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return stats

    def put(self, key: str, stats: SimStats) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(stats.to_dict(), handle)
            os.replace(tmp, path)  # atomic on POSIX: readers never see partials
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ maintenance
    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return list(self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self._entries())

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        entries = self._entries()
        for path in entries:
            try:
                path.unlink()
            except OSError:
                pass
        return len(entries)

    def prune(self, max_entries: int = 50_000) -> int:
        """Drop the oldest entries (by mtime) beyond ``max_entries``."""
        entries = self._entries()
        excess = len(entries) - max_entries
        if excess <= 0:
            return 0
        entries.sort(key=lambda path: path.stat().st_mtime)
        for path in entries[:excess]:
            try:
                path.unlink()
            except OSError:
                pass
        return excess
