"""Sweep data-plane benchmark (``repro bench sweep`` / BENCH_sweep.json).

Measures the two things PR 8's data plane promises:

* **decode** — microbenchmark of trace deserialization on one standard
  workload: the legacy JSON-lines codec (cost paid *per simulation
  pass*) against the binary columnar codec
  (:mod:`repro.workloads.trace_codec`) both cold (parse + materialize)
  and steady-state (materialize only, columns already parsed — what a
  warm worker pays per pass).
* **grids** — end-to-end ``run_points`` wall-clock on a standard figure
  grid at ``jobs=4``, comparing the full data plane (binary codec +
  shared-memory broadcast + affinity scheduling) against the legacy
  path (gzip JSON-lines, no broadcast, FIFO dispatch), cold-cache and
  warm-cache, for both exact and interval-sampled grids.  Both sides of
  each comparison run in the same process on the same machine, so the
  speedups are self-relative — no committed-reference drift.

The bench also asserts the determinism contract while it is at it:
jobs=1, jobs=4 legacy and jobs=4 data-plane results on the exact grid
must be bit-identical (the ``identical`` field; the floor check fails
on a mismatch).

``check_decode_floor`` and ``check_sweep_floor`` are the CI guards:
steady-state decode must stay >= ``DECODE_FLOOR``x faster than
JSON-lines, and the sampled grid's cold-cache wall-clock must stay
>= ``SWEEP_FLOOR``x faster than the legacy path.  The sampled grid
anchors the end-to-end floor because that is the regime the data plane
targets (SMARTS-style sweeps: measurement cheap, workload preparation
amortized); the exact grid — where simulation itself dominates — is
recorded alongside for the honest picture.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

#: default location of the committed benchmark record (repo root)
DEFAULT_PATH = Path(__file__).resolve().parents[3] / "BENCH_sweep.json"

#: CI floor: steady-state binary decode speedup over JSON-lines per pass
DECODE_FLOOR = 5.0

#: CI floor: cold-cache sampled-grid wall-clock speedup, data plane vs
#: legacy path (the committed full-grid record must show >= 2.0)
SWEEP_FLOOR = 2.0

#: the standard figure grid (quick variant for CI)
GRID_PROFILES = ("gsm", "hmmer", "gcc", "bwaves")
GRID_PROFILES_QUICK = ("gsm", "hmmer")
GRID_SCHEMES = ("sharing", "conventional")
GRID_SIZES = (48, 64, 80, 96)
GRID_SIZES_QUICK = (48, 64)
GRID_INSTS = 8_000
GRID_INSTS_QUICK = 4_000
GRID_SAMPLING = "4000:150:100"
GRID_SAMPLING_QUICK = "2000:100:60"


def grid_points(quick: bool = False, seed: int = 1) -> tuple[list, list]:
    """(exact, sampled) point lists of the standard figure grid."""
    from repro.harness.parallel import SweepPoint
    from repro.workloads import BENCHMARKS

    profiles = GRID_PROFILES_QUICK if quick else GRID_PROFILES
    sizes = GRID_SIZES_QUICK if quick else GRID_SIZES
    insts = GRID_INSTS_QUICK if quick else GRID_INSTS
    sampling = GRID_SAMPLING_QUICK if quick else GRID_SAMPLING
    exact, sampled = [], []
    for name in profiles:
        for scheme in GRID_SCHEMES:
            for size in sizes:
                exact.append(SweepPoint(BENCHMARKS[name], scheme, size,
                                        insts, seed))
                sampled.append(SweepPoint(BENCHMARKS[name], scheme, size,
                                          insts, seed, sampling=sampling))
    return exact, sampled


@contextmanager
def _env(**overrides):
    """Set (value) / unset (None) environment variables, restoring after."""
    saved = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def bench_decode(profile: str = "hmmer", insts: int = GRID_INSTS,
                 seed: int = 1, reps: int = 3) -> dict:
    """Decode microbenchmark: JSON-lines per pass vs binary cold/warm."""
    import io

    from repro.workloads import BENCHMARKS
    from repro.workloads.generator import SyntheticWorkload
    from repro.workloads.trace_codec import decode_columns, encode
    from repro.workloads.trace_io import load_trace, save_trace

    stream = list(SyntheticWorkload(BENCHMARKS[profile], total_insts=insts,
                                    seed=seed))
    buffer = io.StringIO()
    save_trace(iter(stream), buffer)
    text = buffer.getvalue()
    blob = encode(stream)

    def best(fn) -> float:
        times = []
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    json_s = best(lambda: list(load_trace(io.StringIO(text))))
    cold_s = best(lambda: decode_columns(blob).materialize())
    columns = decode_columns(blob)
    warm_s = best(columns.materialize)
    return {
        "profile": profile,
        "insts": insts,
        "json_bytes": len(text.encode()),
        "binary_bytes": len(blob),
        "json_ms_per_pass": round(json_s * 1e3, 2),
        "binary_cold_ms": round(cold_s * 1e3, 2),
        "binary_warm_ms_per_pass": round(warm_s * 1e3, 2),
        "speedup_cold": round(json_s / cold_s, 2),
        "speedup_per_pass": round(json_s / warm_s, 2),
    }


def _run_grid(points: list, jobs: int, trace_dir: str, fmt: str,
              shm: bool, affinity: bool) -> tuple[float, list]:
    """One ``run_points`` execution under a controlled data-plane config;
    returns (wall seconds, per-point stats dicts)."""
    from repro.harness.cache import reset_trace_memo
    from repro.harness.parallel import run_points

    with _env(REPRO_TRACE_DIR=trace_dir,
              REPRO_TRACE_FORMAT=fmt,
              REPRO_NO_SHM=None if shm else "1",
              REPRO_NO_AFFINITY=None if affinity else "1",
              REPRO_NO_TRACE_CACHE=None):
        reset_trace_memo()  # a bench run never inherits a warm memo
        start = time.perf_counter()
        results = run_points(points, jobs=jobs)
        wall = time.perf_counter() - start
    failures = [r for r in results if not r.ok]
    if failures:
        raise RuntimeError(f"bench grid point failed: {failures[0].error}")
    return wall, [r.stats.to_dict() for r in results]


#: the two data-plane configurations under comparison
_MODES = {
    "legacy": {"fmt": "jsonl", "shm": False, "affinity": False},
    "dataplane": {"fmt": "binary", "shm": True, "affinity": True},
}


def run_bench(quick: bool = False, jobs: int = 4, seed: int = 1) -> dict:
    """Benchmark the sweep data plane; returns the ``current`` section."""
    from repro.harness.cache import TRACE_MEMO

    exact, sampled = grid_points(quick, seed)
    decode = bench_decode(insts=GRID_INSTS_QUICK if quick else GRID_INSTS,
                          reps=2 if quick else 3)

    grids: dict = {}
    reference: Optional[list] = None
    identical = True
    for grid_name, points in (("exact", exact), ("sampled", sampled)):
        modes = {}
        for mode, knobs in _MODES.items():
            with tempfile.TemporaryDirectory(prefix="bench-sweep-") as root:
                cold_s, cold_stats = _run_grid(points, jobs, root, **knobs)
                warm_s, warm_stats = _run_grid(points, jobs, root, **knobs)
            if cold_stats != warm_stats:
                identical = False
            modes[mode] = {
                "cold_seconds": round(cold_s, 3),
                "warm_seconds": round(warm_s, 3),
                "points_per_sec_cold": round(len(points) / cold_s, 2),
                "points_per_sec_warm": round(len(points) / warm_s, 2),
                "stats": cold_stats,
            }
        if modes["legacy"]["stats"] != modes["dataplane"]["stats"]:
            identical = False
        if grid_name == "exact":
            # determinism cross-check: serial, binary codec, no broadcast
            with tempfile.TemporaryDirectory(prefix="bench-sweep-") as root:
                _, reference = _run_grid(points, 1, root, "binary",
                                         shm=False, affinity=False)
            if reference != modes["dataplane"]["stats"]:
                identical = False
        for mode in modes.values():
            del mode["stats"]  # identity asserted; keep the record small
        grids[grid_name] = {
            "points": len(points),
            "modes": modes,
            "speedup_cold": round(modes["legacy"]["cold_seconds"]
                                  / modes["dataplane"]["cold_seconds"], 2),
            "speedup_warm": round(modes["legacy"]["warm_seconds"]
                                  / modes["dataplane"]["warm_seconds"], 2),
        }

    return {
        "meta": {
            "jobs": jobs,
            "seed": seed,
            "quick": quick,
            "profiles": list(GRID_PROFILES_QUICK if quick
                             else GRID_PROFILES),
            "schemes": list(GRID_SCHEMES),
            "sizes": list(GRID_SIZES_QUICK if quick else GRID_SIZES),
            "insts": GRID_INSTS_QUICK if quick else GRID_INSTS,
            "sampling": GRID_SAMPLING_QUICK if quick else GRID_SAMPLING,
        },
        "decode": decode,
        "grids": grids,
        "identical": identical,
        "trace_memo": TRACE_MEMO.stats(),
    }


def load_record(path: Path = DEFAULT_PATH) -> Optional[dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def diff_against(record: Optional[dict], current: dict) -> list[str]:
    """Human-readable summary, with deltas vs the committed record."""
    lines = []
    decode = current["decode"]
    lines.append(
        f"decode       json {decode['json_ms_per_pass']:.1f}ms/pass | "
        f"binary cold {decode['binary_cold_ms']:.1f}ms "
        f"({decode['speedup_cold']:.2f}x) | per-pass "
        f"{decode['binary_warm_ms_per_pass']:.1f}ms "
        f"({decode['speedup_per_pass']:.2f}x)")
    committed = ((record or {}).get("current") or {}).get("grids", {})
    for name, grid in current["grids"].items():
        plane = grid["modes"]["dataplane"]
        legacy = grid["modes"]["legacy"]
        line = (f"{name:12s} {grid['points']} pts | data plane cold "
                f"{plane['cold_seconds']:.2f}s warm "
                f"{plane['warm_seconds']:.2f}s | legacy cold "
                f"{legacy['cold_seconds']:.2f}s | speedup cold "
                f"{grid['speedup_cold']:.2f}x warm "
                f"{grid['speedup_warm']:.2f}x")
        old = committed.get(name, {}).get("speedup_cold")
        if old:
            line += f" (committed {old:.2f}x)"
        lines.append(line)
    lines.append(f"{'identity':12s} "
                 + ("bit-identical across jobs/shm/codec"
                    if current["identical"] else "MISMATCH"))
    return lines


def check_decode_floor(current: dict,
                       floor: float = DECODE_FLOOR) -> tuple[bool, str]:
    """CI guard: steady-state binary decode vs JSON-lines per pass."""
    speedup = current["decode"]["speedup_per_pass"]
    if speedup < floor:
        return False, (
            f"binary per-pass decode is only {speedup:.2f}x faster than "
            f"JSON-lines (floor {floor:.1f}x): the columnar codec has "
            f"regressed")
    return True, (f"binary per-pass decode speedup {speedup:.2f}x >= "
                  f"floor {floor:.1f}x")


def check_sweep_floor(current: dict, floor: float = SWEEP_FLOOR,
                      grid: str = "sampled") -> tuple[bool, str]:
    """CI guard: cold-cache end-to-end speedup of the data plane, plus
    the bit-identity assertion the bench performed along the way."""
    if not current["identical"]:
        return False, ("sweep results are NOT bit-identical across "
                       "jobs/shared-memory/codec configurations")
    speedup = current["grids"][grid]["speedup_cold"]
    if speedup < floor:
        return False, (
            f"{grid} grid cold-cache speedup {speedup:.2f}x is below the "
            f"floor {floor:.1f}x: the sweep data plane has regressed")
    return True, (f"{grid} grid cold-cache speedup {speedup:.2f}x >= "
                  f"floor {floor:.1f}x (bit-identical)")


def write_record(current: dict, path: Path = DEFAULT_PATH) -> dict:
    out = {"current": current}
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    return out
