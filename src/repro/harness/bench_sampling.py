"""Sampled-simulation benchmark (``repro bench sample`` / BENCH_sampling.json).

Measures what the columnar fast-forward path promises: that the sampling
engine can skip over packed traces without materializing
:class:`~repro.isa.dyninst.DynInst` objects.  Three layers are timed,
each columnar against the per-inst reference path (which pays a full
column materialization per pass — exactly what the engine paid before
the columnar source existed):

* **skim** — branch-predictor-only training over the whole trace.  The
  columnar side is a branch-index scan that touches only the branch
  instructions (typically < 10% of the stream), so this is where the
  zero-materialization design pays off hardest; ``check_skim_floor``
  guards its speedup in CI.
* **fast-forward** — full warming (branch + i-fetch lines + d-cache),
  untracked (conventional) and tracked (sharing; adds the def-use
  model, which inherently walks every instruction).
* **end-to-end** — :func:`~repro.sampling.engine.sampled_simulate` per
  scheme on the standard schedule.  Detailed-window simulation is
  common-mode between both sides, so this multiple is structurally much
  smaller than the skim one; ``check_e2e_floor`` only asserts the
  columnar path never *loses* to the per-inst path.

Both sides of every comparison run in the same process on the same
machine (self-relative, no committed-reference drift), and the warming
comparisons re-assert bit-identity of the warmed state while they are at
it.  A ``no_numpy`` sub-record re-times the warming layer with the
``REPRO_NO_NUMPY`` kill switch engaged, so the stdlib fallback's cost is
on record.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

#: default location of the committed benchmark record (repo root)
DEFAULT_PATH = Path(__file__).resolve().parents[3] / "BENCH_sampling.json"

#: CI floor: columnar skim speedup over the per-inst path
SKIM_FLOOR = 5.0

#: CI floor: worst-scheme end-to-end sampled speedup, columnar vs
#: per-inst.  Windows dominate the end-to-end time and are common-mode,
#: so this floor only asserts "columnar never regresses end-to-end";
#: the committed full record shows the actual multiples per scheme.
E2E_FLOOR = 1.0

BENCH_SCHEMES = ("conventional", "sharing", "hinted", "early")

#: end-to-end schedule: the window gap (period - window - warmup) is
#: smaller than the engine's warm zone, so every skipped instruction
#: gets full warming — the hardest regime for the columnar path
E2E_SAMPLING = "2000:150:100"

BENCH_PROFILE = "hmmer"


@contextmanager
def _env(**overrides):
    """Set (value) / unset (None) environment variables, restoring after."""
    saved = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _trace(profile: str, insts: int, seed: int):
    """(TraceStream, parsed TraceColumns) for one workload."""
    from repro.harness.cache import TraceStream
    from repro.workloads import BENCHMARKS
    from repro.workloads.generator import SyntheticWorkload
    from repro.workloads.trace_codec import encode

    stream_insts = list(SyntheticWorkload(BENCHMARKS[profile],
                                          total_insts=insts, seed=seed))
    stream = TraceStream(encode(stream_insts), insts)
    return stream, stream.columns()


def _warmer(scheme: str, profile: str, with_hierarchy: bool = True):
    from repro.frontend.branch_predictor import BranchUnit
    from repro.harness.runner import make_config
    from repro.sampling.warmer import FunctionalWarmer
    from repro.workloads import BENCHMARKS

    config = make_config(BENCHMARKS[profile], scheme, 64)
    branch_unit = BranchUnit(kind=config.branch_predictor,
                             table_size=config.predictor_table,
                             btb_entries=config.btb_entries,
                             ras_depth=config.ras_depth)
    hierarchy = config.make_hierarchy() if with_hierarchy else None
    return FunctionalWarmer(config, branch_unit, hierarchy=hierarchy)


def _best(reps: int, fn) -> float:
    return min(fn() for _ in range(reps))


def bench_warming(profile: str = BENCH_PROFILE, insts: int = 20_000,
                  seed: int = 1, reps: int = 3) -> dict:
    """Skim and fast-forward throughput, columnar vs per-inst.

    The per-inst side's timed region includes the column
    materialization, because that is what every pass paid before the
    columnar source existed (the engine consumed ``iter(stream)``).
    """
    from repro.sampling.engine import _ColumnarSource, _SampledSource

    stream, cols = _trace(profile, insts, seed)

    def measure(scheme: str, method: str, with_hierarchy: bool) -> dict:
        def per_inst() -> float:
            warmer = _warmer(scheme, profile, with_hierarchy)
            start = time.perf_counter()
            it = iter(cols.materialize())
            source = _SampledSource(lambda: next(it, None))
            getattr(warmer, method)(source, insts)
            return time.perf_counter() - start

        def columnar() -> float:
            warmer = _warmer(scheme, profile, with_hierarchy)
            start = time.perf_counter()
            getattr(warmer, method)(_ColumnarSource(cols), insts)
            return time.perf_counter() - start

        ref_s = _best(reps, per_inst)
        col_s = _best(reps, columnar)
        return {
            "per_inst_insts_per_sec": round(insts / ref_s, 1),
            "columnar_insts_per_sec": round(insts / col_s, 1),
            "per_inst_ms": round(ref_s * 1e3, 2),
            "columnar_ms": round(col_s * 1e3, 2),
            "speedup": round(ref_s / col_s, 2),
        }

    return {
        "profile": profile,
        "insts": insts,
        "branches": len(cols.branch_indices()),
        "skim": measure("conventional", "skim", with_hierarchy=False),
        "fast_forward": measure("conventional", "fast_forward",
                                with_hierarchy=True),
        "fast_forward_tracked": measure("sharing", "fast_forward",
                                        with_hierarchy=True),
    }


def bench_e2e(scheme: str, profile: str = BENCH_PROFILE,
              insts: int = 20_000, seed: int = 1, reps: int = 3,
              spec: str = E2E_SAMPLING) -> dict:
    """End-to-end sampled run, columnar vs per-inst, same estimate.

    Raises if the two paths' :class:`SampledStats` differ — the speedup
    of a wrong answer is not worth recording.
    """
    from repro.harness.runner import make_config
    from repro.sampling import as_schedule, sampled_simulate
    from repro.workloads import BENCHMARKS

    stream, cols = _trace(profile, insts, seed)
    config_args = (BENCHMARKS[profile], scheme, 64)

    ref_stats = col_stats = None

    def per_inst() -> float:
        nonlocal ref_stats
        start = time.perf_counter()
        ref_stats = sampled_simulate(make_config(*config_args),
                                     iter(cols.materialize()),
                                     schedule=as_schedule(spec, seed=seed),
                                     total_insts=insts)
        return time.perf_counter() - start

    def columnar() -> float:
        nonlocal col_stats
        start = time.perf_counter()
        col_stats = sampled_simulate(make_config(*config_args), stream,
                                     schedule=as_schedule(spec, seed=seed),
                                     total_insts=insts)
        return time.perf_counter() - start

    ref_s = _best(reps, per_inst)
    col_s = _best(reps, columnar)
    assert ref_stats is not None and col_stats is not None
    if ref_stats.to_dict() != col_stats.to_dict():
        raise RuntimeError(
            f"columnar sampled stats diverged from the per-inst path "
            f"({scheme}, {profile}, {spec})")
    return {
        "spec": spec,
        "windows": col_stats.windows,
        "ipc": round(col_stats.ipc, 4),
        "per_inst_insts_per_sec": round(insts / ref_s, 1),
        "columnar_insts_per_sec": round(insts / col_s, 1),
        "per_inst_ms": round(ref_s * 1e3, 2),
        "columnar_ms": round(col_s * 1e3, 2),
        "speedup": round(ref_s / col_s, 2),
    }


def run_bench(quick: bool = False, profile: str = BENCH_PROFILE,
              seed: int = 1) -> dict:
    """Benchmark the sampled-simulation path; returns ``current``."""
    from repro.workloads.trace_codec import numpy_backend

    insts = 8_000 if quick else 20_000
    reps = 2 if quick else 3

    warming = bench_warming(profile, insts, seed, reps)
    with _env(REPRO_NO_NUMPY="1"):
        no_numpy = bench_warming(profile, insts, seed, reps)
    schemes = {scheme: bench_e2e(scheme, profile, insts, seed, reps)
               for scheme in BENCH_SCHEMES}

    return {
        "meta": {"profile": profile, "seed": seed, "insts": insts,
                 "reps": reps, "quick": quick, "sampling": E2E_SAMPLING,
                 "numpy": numpy_backend() is not None},
        "warming": warming,
        "warming_no_numpy": no_numpy,
        "schemes": schemes,
    }


def load_record(path: Path = DEFAULT_PATH) -> Optional[dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def diff_against(record: Optional[dict], current: dict) -> list[str]:
    """Human-readable summary, with deltas vs the committed record."""
    lines = []
    for layer in ("skim", "fast_forward", "fast_forward_tracked"):
        row = current["warming"][layer]
        gated = current["warming_no_numpy"][layer]
        lines.append(
            f"{layer:21s} {row['columnar_insts_per_sec']:12,.0f} insts/s "
            f"({row['speedup']:6.2f}x per-inst, "
            f"{gated['speedup']:.2f}x without numpy)")
    committed = ((record or {}).get("current") or {}).get("schemes", {})
    for scheme, row in current["schemes"].items():
        line = (f"e2e {scheme:17s} {row['columnar_insts_per_sec']:12,.0f} "
                f"insts/s ({row['speedup']:6.2f}x per-inst, "
                f"{row['windows']} windows [{row['spec']}])")
        old = committed.get(scheme, {}).get("speedup")
        if old:
            line += f" (committed {old:.2f}x)"
        lines.append(line)
    return lines


def check_skim_floor(current: dict,
                     floor: float = SKIM_FLOOR) -> tuple[bool, str]:
    """CI guard: the columnar skim must beat the per-inst path by
    ``floor``x — it scans only the branch index instead of
    materializing and walking the whole stream."""
    speedup = current["warming"]["skim"]["speedup"]
    if speedup < floor:
        return False, (
            f"columnar skim is only {speedup:.2f}x faster than the "
            f"per-inst path (floor {floor:.1f}x): the branch-index scan "
            f"has regressed")
    return True, (f"columnar skim speedup {speedup:.2f}x >= "
                  f"floor {floor:.1f}x")


def check_e2e_floor(current: dict,
                    floor: float = E2E_FLOOR) -> tuple[bool, str]:
    """CI guard: no scheme's end-to-end sampled run may fall behind the
    per-inst path (windows are common-mode, so even the worst scheme
    must at least break even on the fast-forward savings)."""
    worst_scheme, worst = min(current["schemes"].items(),
                              key=lambda item: item[1]["speedup"])
    if worst["speedup"] < floor:
        return False, (
            f"end-to-end sampled {worst_scheme} runs {worst['speedup']:.2f}x "
            f"vs the per-inst path (floor {floor:.1f}x): the columnar "
            f"source is slower than materializing everything")
    return True, (f"end-to-end worst-scheme ({worst_scheme}) speedup "
                  f"{worst['speedup']:.2f}x >= floor {floor:.1f}x")


def write_record(current: dict, path: Path = DEFAULT_PATH) -> dict:
    out = {"current": current}
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    return out
