"""The paper's headline results (Section VI / abstract).

* ~6% average speedup for SPEC2006 at equal area, and
* the same performance with ~10.5% fewer registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.figures import figure10, figure11
from repro.harness.render import pct
from repro.harness.runner import Scale, geomean


@dataclass
class HeadlineResult:
    average_speedup: float
    iso_ipc_saving: float
    per_size: dict

    def render(self) -> str:
        sizes = ", ".join(f"RF {s}: {pct(v - 1.0)}"
                          for s, v in self.per_size.items())
        return (
            "Headline results\n"
            f"  average SPEC2006 speedup (equal area): {pct(self.average_speedup - 1.0)}"
            f"  [paper: 6%]\n"
            f"  per-size averages: {sizes}\n"
            f"  iso-IPC register saving: {pct(self.iso_ipc_saving)}  [paper: 10.5%]"
        )


def headline(scale: Scale | None = None, *, jobs: int | None = None,
             cache=None, progress=None, **engine) -> HeadlineResult:
    scale = scale or Scale.from_env()
    fp = figure10("specfp", scale, jobs=jobs, cache=cache, progress=progress,
                  **engine)
    si = figure10("specint", scale, jobs=jobs, cache=cache, progress=progress,
                  **engine)
    per_size = {}
    for size in scale.sizes:
        per_size[size] = geomean([fp.average(size), si.average(size)])
    # the paper's single number averages over the pressured register-file
    # range (gains vanish for very large files by construction)
    pressured = [per_size[s] for s in scale.sizes if s <= 80]
    average = geomean(pressured)
    saving = figure11(scale, jobs=jobs, cache=cache, progress=progress,
                      **engine).iso_ipc_saving()
    return HeadlineResult(average_speedup=average, iso_ipc_saving=saving,
                          per_size=per_size)
