"""Machine-readable export of experiment results.

Every figure/table result object renders to text for humans; this module
serialises the same data to JSON so downstream tooling (plotting,
regression tracking across simulator versions) can consume it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from typing import Any


def _jsonable(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def result_to_dict(result: Any) -> dict:
    """Serialise a harness result object (dataclass) to plain dicts."""
    payload = _jsonable(result)
    if not isinstance(payload, dict):
        raise TypeError(f"cannot export {type(result).__name__}")
    payload["_type"] = type(result).__name__
    return payload


def export_results(results: dict[str, Any], path: str) -> None:
    """Write a {name: result} mapping as one JSON document."""
    document = {name: result_to_dict(result) for name, result in results.items()}
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


def load_results(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def compare_speedup_exports(old: dict, new: dict, tolerance: float = 0.05):
    """Regression check between two exported Figure-10 results.

    Returns a list of (benchmark, size, old speedup, new speedup) rows
    whose speedups moved by more than ``tolerance``.
    """
    regressions = []
    old_rows = {row["benchmark"]: row["speedups"] for row in old.get("rows", [])}
    for row in new.get("rows", []):
        benchmark = row["benchmark"]
        if benchmark not in old_rows:
            continue
        for size, new_speedup in row["speedups"].items():
            old_speedup = old_rows[benchmark].get(size)
            if old_speedup is None:
                continue
            if abs(new_speedup - old_speedup) > tolerance:
                regressions.append((benchmark, size, old_speedup, new_speedup))
    return regressions
