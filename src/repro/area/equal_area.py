"""Equal-area register-file configuration (paper Table III).

The paper evaluates the proposed scheme at the *same total area* as each
baseline register file: the scheme's overheads (PRT, issue-queue bits,
predictor) plus the shadow cells are paid for by shrinking the number of
registers.  ``equal_area_banks`` derives a bank split for arbitrary
baseline sizes using the calibrated area model; the paper's own Table III
rows are kept verbatim in :data:`repro.pipeline.config.TABLE_III` and
validated (they never exceed the baseline area) by ``validate_table3``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.area.cacti_lite import (
    banked_rf_area,
    port_scheme_rf_area,
    register_file_area,
    total_overhead_area,
)
from repro.core.register_file import RegisterFileConfig

#: Logical registers per class: bank sizing must leave room for committed state.
_MIN_TOTAL_REGS = 36


def baseline_area(num_regs: int, bits: int = 64) -> float:
    """Area of the baseline register file, in mm²."""
    return register_file_area(num_regs, bits)


def proposed_area(
    banks: tuple[int, ...],
    bits: int = 64,
    include_overheads: bool = True,
    num_regs_for_prt: int | None = None,
) -> float:
    """Area of the proposed configuration (banked RF + scheme overheads)."""
    config = RegisterFileConfig(bank_sizes=tuple(banks))
    area = banked_rf_area(config, bits)
    if include_overheads:
        prt_regs = num_regs_for_prt if num_regs_for_prt is not None else config.total_regs
        area += total_overhead_area(num_regs=prt_regs)
    return area


def _shadow_bank_size(baseline_regs: int) -> int:
    """Per-bank shadow register count, following the paper's progression
    (4 for the smallest files, 6 in the middle, 8 and capped thereafter)."""
    if baseline_regs < 56:
        return 4
    if baseline_regs < 72:
        return 6
    return 8


@lru_cache(maxsize=None)
def equal_area_banks(baseline_regs: int, bits: int = 64) -> tuple[int, int, int, int]:
    """Largest (n0, s, s, s) configuration whose area fits the baseline's.

    Cached: the result is a pure function of its arguments, and the
    sampling engine re-derives the bank split for every per-window
    processor it builds."""
    budget = baseline_area(baseline_regs, bits)
    s = _shadow_bank_size(baseline_regs)
    n0 = max(_MIN_TOTAL_REGS - 3 * s, 1)
    if proposed_area((n0, s, s, s), bits) > budget:
        raise ValueError(
            f"baseline of {baseline_regs} registers is too small for an "
            f"equal-area banked configuration"
        )
    while proposed_area((n0 + 1, s, s, s), bits) <= budget:
        n0 += 1
    return (n0, s, s, s)


def equal_area_regs(
    baseline_regs: int,
    scheme: str,
    bits: int = 64,
    **scheme_kwargs,
) -> int:
    """Largest register count a port-reduced file can hold at equal area.

    A port-reduction scheme (``repro.core.read_ports``) shrinks every bit
    cell, so at the conventional baseline's area budget the same file can
    hold *more* registers.  This is the conventional-baseline analogue of
    :func:`equal_area_banks`: the saved port area is converted back into
    extra rename registers so the comparison against the paper's sharing
    scheme stays equal-area.  ``scheme == 'none'`` returns the baseline
    unchanged.
    """
    if scheme == "none":
        return baseline_regs
    budget = baseline_area(baseline_regs, bits)
    if port_scheme_rf_area(scheme, baseline_regs, bits, **scheme_kwargs) > budget:
        # degenerate calibration (overheads dominate): never shrink
        return baseline_regs
    n = baseline_regs
    while port_scheme_rf_area(scheme, n + 1, bits, **scheme_kwargs) <= budget:
        n += 1
    return n


def validate_table3(table3: dict[int, tuple[int, int, int, int]], bits: int = 64):
    """Check every Table III row fits within the baseline area.

    Returns a list of (baseline, banks, baseline_mm2, proposed_mm2,
    utilisation) rows for reporting.
    """
    rows = []
    for baseline_regs, banks in sorted(table3.items()):
        base = baseline_area(baseline_regs, bits)
        prop = proposed_area(banks, bits)
        rows.append((baseline_regs, banks, base, prop, prop / base))
    return rows
