"""Register-file energy model (extension).

The paper motivates register-file pressure partly through energy:
"increasing the size of the register file ... has important implications
in terms of energy consumption, access time and area" (Section I).  This
module extends CACTI-lite with a first-order energy model so the schemes
can also be compared in energy per instruction:

* dynamic energy per access grows with the word-line/bit-line lengths —
  linear in the register count and in the bits per register, quadratic-ish
  in ports (we reuse the area model's port-dependent cell size);
* writing a shadow cell costs a fixed small increment (the paper's write
  path stores the old value to the shadow cell in parallel);
* leakage is proportional to area.

Constants are representative of a 32 nm register file (CACTI-era numbers)
and are *relative-accuracy* values: use this model to compare schemes at
different sizes, not to predict absolute silicon power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.area.cacti_lite import READ_PORTS, WRITE_PORTS, bit_cell_area
from repro.core.register_file import RegisterFileConfig

#: energy per bit-cell-area unit swung on an access [pJ per µm² of cells
#: on the selected row] — representative 32 nm scaling constant
_E_PER_UM2 = 0.00215
#: extra energy to latch one bit into a shadow cell [pJ]
_E_SHADOW_BIT = 0.0006
#: leakage power per mm² of register-file area [mW/mm²]
_LEAKAGE_PER_MM2 = 18.0


def access_energy(
    num_regs: int,
    bits: int = 64,
    read_ports: int = READ_PORTS,
    write_ports: int = WRITE_PORTS,
) -> float:
    """Dynamic energy of one read or write access, in pJ.

    Word line selects one register's row (bits cells); bit lines span all
    registers — modelled as the row energy plus a bit-line term linear in
    the register count.
    """
    ports = read_ports + write_ports
    row = bits * bit_cell_area(ports) * _E_PER_UM2
    bitline = 0.02 * num_regs * bits * _E_PER_UM2
    return row + bitline


def shadow_write_energy(bits: int = 64) -> float:
    """Extra energy of check-pointing the old value into a shadow cell, pJ."""
    return bits * _E_SHADOW_BIT


def leakage_power(area_mm2: float) -> float:
    """Static power of a register file of the given area, in mW."""
    return area_mm2 * _LEAKAGE_PER_MM2


@dataclass
class EnergyReport:
    """Energy per committed instruction for one simulation."""

    reads: int
    writes: int
    shadow_writes: int
    committed: int
    read_energy_pj: float
    write_energy_pj: float
    shadow_energy_pj: float

    @property
    def total_pj(self) -> float:
        return self.read_energy_pj + self.write_energy_pj + self.shadow_energy_pj

    @property
    def pj_per_inst(self) -> float:
        return self.total_pj / self.committed if self.committed else 0.0


def energy_report(stats, num_regs: int, bits: int = 64) -> EnergyReport:
    """Estimate register-file energy for a finished simulation.

    ``stats`` is a :class:`~repro.pipeline.stats.SimStats`; reads are
    approximated as two per issued instruction, writes as one per
    destination rename, shadow writes as one per reuse (the overwritten
    version is check-pointed).
    """
    renamer = stats.renamer_stats
    reads = 2 * stats.issued
    writes = renamer.dest_insts if renamer else 0
    shadow_writes = renamer.reuses if renamer else 0
    e_access = access_energy(num_regs, bits)
    return EnergyReport(
        reads=reads,
        writes=writes,
        shadow_writes=shadow_writes,
        committed=stats.committed,
        read_energy_pj=reads * e_access,
        write_energy_pj=writes * e_access,
        shadow_energy_pj=shadow_writes * shadow_write_energy(bits),
    )


def scheme_energy_comparison(baseline_stats, proposed_stats,
                             baseline_regs: int,
                             proposed_config: RegisterFileConfig,
                             bits: int = 64) -> dict:
    """Energy-per-instruction comparison at equal area.

    The proposed register file has fewer (multi-ported) registers, so each
    access swings shorter bit lines; shadow-cell check-pointing adds a
    small write-side cost.
    """
    baseline = energy_report(baseline_stats, baseline_regs, bits)
    proposed = energy_report(proposed_stats, proposed_config.total_regs, bits)
    return {
        "baseline_pj_per_inst": baseline.pj_per_inst,
        "proposed_pj_per_inst": proposed.pj_per_inst,
        "ratio": (proposed.pj_per_inst / baseline.pj_per_inst
                  if baseline.pj_per_inst else 1.0),
        "baseline": baseline,
        "proposed": proposed,
    }
