"""CACTI-lite: analytic area model calibrated to the paper's Table II.

The paper used CACTI 6.5 to size the register files and the scheme's
overhead structures.  We use a standard wire-pitch-limited model:

* a register-file bit cell's footprint grows quadratically with its port
  count (each port adds a horizontal and a vertical wire track), so
  ``bit_area = K * (ports + 1)**2``;
* each register carries a port-count-dependent periphery cost (word-line
  drivers, decode) modelled as a per-register constant;
* shadow cells (cross-coupled inverter pairs reached through a pass
  transistor, Figure 6) are *port-independent* and therefore tiny relative
  to a multi-ported main cell.

The two free constants (K and the per-register overhead) are calibrated
exactly against Table II's register files (128 x 64-bit = 0.2834 mm²,
128 x 128-bit = 0.4988 mm² at 8 read + 4 write ports); the SRAM/CAM bit
constants for the PRT, issue-queue extension and predictor are calibrated
against Table II's overhead rows.  All areas are in mm².
"""

from __future__ import annotations

from repro.core.register_file import RegisterFileConfig

#: Default register-file port counts for the 3-wide core (2 reads + 1 write
#: per issue slot, rounded to the paper-era convention of 8R/4W).
READ_PORTS = 8
WRITE_PORTS = 4

# ---- calibration (see module docstring) -----------------------------------
_UM2_PER_MM2 = 1e6

#: bit-cell coefficient: bit_area(ports) = _K_BIT * (ports + 1)^2  [µm²]
_K_BIT = 26.294 / (READ_PORTS + WRITE_PORTS + 1) ** 2
#: per-register periphery (decoders, word-line drivers) [µm²]
_REG_OVERHEAD = 531.2
#: one shadow bit: 2 cross-coupled inverters + pass transistor [µm²]
_SHADOW_BIT = 1.2
#: plain SRAM bit (PRT) [µm²] — calibrated: 384 bits -> 5.08e-4 mm²
_SRAM_BIT = 508.0 / 384.0
#: CAM-ish issue-queue tag bit [µm²] — calibrated: 160 bits -> 1.48e-3 mm²
_CAM_BIT = 1480.0 / 160.0
#: predictor table bit [µm²] — calibrated: 1 Kbit -> 3.1e-3 mm²
_PRED_BIT = 3100.0 / 1024.0


def bit_cell_area(ports: int) -> float:
    """Area of one multi-ported register bit cell, in µm²."""
    return _K_BIT * (ports + 1) ** 2


def register_file_area(
    num_regs: int,
    bits: int = 64,
    read_ports: int = READ_PORTS,
    write_ports: int = WRITE_PORTS,
) -> float:
    """Area of a conventional (no shadow cells) register file, in mm²."""
    ports = read_ports + write_ports
    per_reg = bits * bit_cell_area(ports) + _REG_OVERHEAD
    return num_regs * per_reg / _UM2_PER_MM2


def shadow_cells_area(num_copies: int, bits: int = 64) -> float:
    """Area of ``num_copies`` full-width shadow copies, in mm².

    Port-independent: this is the key cost asymmetry the design exploits
    (Section IV-C1).
    """
    return num_copies * bits * _SHADOW_BIT / _UM2_PER_MM2


def banked_rf_area(
    config: RegisterFileConfig,
    bits: int = 64,
    read_ports: int = READ_PORTS,
    write_ports: int = WRITE_PORTS,
) -> float:
    """Area of the proposed multi-bank register file, in mm²."""
    main = register_file_area(config.total_regs, bits, read_ports, write_ports)
    return main + shadow_cells_area(config.total_shadow_cells, bits)


# ---- read-port-reduction schemes (arXiv 2502.00147) -------------------------
#: flat read ports modelled for the bypass-filter scheme (half of the
#: conventional 8: most operands arrive on the bypass network)
BYPASS_FILTER_READ_PORTS = READ_PORTS // 2


def bypass_filter_overhead_area(
    iq_entries: int = 40,
    bypass_depth: int = 1,
    tag_bits: int = 10,
) -> float:
    """Bypass-filter control overhead, in mm².

    Each issue slot compares up to three source tags against the last
    ``bypass_depth`` cycles of writeback tags (CAM match against the
    bypass bus), deciding per operand whether a physical read port is
    needed.
    """
    bits = iq_entries * 3 * tag_bits * max(bypass_depth, 1)
    return bits * _CAM_BIT / _UM2_PER_MM2


def banked_arbiter_overhead_area(
    banks: int = 4,
    ports_per_bank: int = 2,
    iq_entries: int = 40,
) -> float:
    """Banked-read arbiter overhead, in mm².

    Per-bank demand counters plus grant/select logic, and a small delay
    field per issue-queue entry for the scheduled read slot.
    """
    bits = banks * (8 + 4 * ports_per_bank) + iq_entries * 4
    return bits * _SRAM_BIT / _UM2_PER_MM2


def port_scheme_rf_area(
    scheme: str,
    num_regs: int,
    bits: int = 64,
    *,
    banks: int = 4,
    ports_per_bank: int = 2,
    bypass_depth: int = 1,
    iq_entries: int = 40,
    write_ports: int = WRITE_PORTS,
) -> float:
    """Register file + control overhead under a port-reduction scheme, mm².

    ``bypass_filter`` keeps a flat file at half the read ports;
    ``banked_arbiter`` prices the per-bank cell (each bank's bit cells
    see only that bank's read ports, plus all write ports).  ``none`` is
    the conventional 8R/4W file, so :func:`repro.area.equal_area` can
    treat every scheme uniformly.
    """
    if scheme == "none":
        return register_file_area(num_regs, bits, READ_PORTS, write_ports)
    if scheme == "bypass_filter":
        return (register_file_area(num_regs, bits,
                                   BYPASS_FILTER_READ_PORTS, write_ports)
                + bypass_filter_overhead_area(iq_entries, bypass_depth))
    if scheme == "banked_arbiter":
        return (register_file_area(num_regs, bits,
                                   ports_per_bank, write_ports)
                + banked_arbiter_overhead_area(banks, ports_per_bank,
                                               iq_entries))
    raise ValueError(f"unknown port scheme {scheme!r}")


# ---- overhead structures (Table II rows) ------------------------------------
def prt_area(num_regs: int = 128, counter_bits: int = 2) -> float:
    """PRT: one Read bit + N-bit counter per physical register, in mm²."""
    bits = num_regs * (1 + counter_bits)
    return bits * _SRAM_BIT / _UM2_PER_MM2


def issue_queue_overhead_area(iq_entries: int = 40, counter_bits: int = 2) -> float:
    """Extra version bits in the issue queue (2 per source tag), in mm²."""
    bits = iq_entries * 2 * counter_bits
    return bits * _CAM_BIT / _UM2_PER_MM2


def predictor_area(entries: int = 512, bits_per_entry: int = 2) -> float:
    """Register-type predictor table, in mm²."""
    return entries * bits_per_entry * _PRED_BIT / _UM2_PER_MM2


def total_overhead_area(
    num_regs: int = 128,
    iq_entries: int = 40,
    predictor_entries: int = 512,
    counter_bits: int = 2,
) -> float:
    """Total added area of the scheme's new/extended structures, in mm²."""
    return (
        prt_area(num_regs, counter_bits)
        + issue_queue_overhead_area(iq_entries, counter_bits)
        + predictor_area(predictor_entries)
    )


def access_time_ns(
    num_regs: int,
    bits: int = 64,
    read_ports: int = READ_PORTS,
    write_ports: int = WRITE_PORTS,
    shadow_cells_per_reg: float = 0.0,
) -> float:
    """First-order register-file access time, in ns.

    Wire-delay model: word-line delay grows with the row width (bits x
    cell pitch), bit-line delay with the column height (registers x cell
    pitch), plus fixed decode/sense time.  Shadow cells hang off the main
    cell through a pass transistor and add *no gate capacitance* to the
    ports; they only stretch the word line slightly — the paper's
    Section IV-C2 claim is that this costs well under 1%, which
    ``benchmarks/test_claim_access_time.py`` checks against this model.
    """
    ports = read_ports + write_ports
    pitch = (ports + 1) * 0.14e-3  # track pitch in mm
    # shadow appendages stretch the word line but hang no gate capacitance
    # on it (they are driven by separate checkpoint/recover signals), so
    # the effective RC penalty per shadow cell is small
    wordline_mm = bits * pitch * (1.0 + 0.003 * shadow_cells_per_reg)
    bitline_mm = num_regs * pitch
    # RC-ish: delay quadratic-in-length terms kept linear for short wires
    wire_ns = 0.05 * (wordline_mm + bitline_mm) +         0.8 * (wordline_mm ** 2 + bitline_mm ** 2)
    fixed_ns = 0.15  # decode + sense amplifier
    return fixed_ns + wire_ns


def table2() -> dict[str, tuple[str, float]]:
    """Reproduce the paper's Table II: unit -> (configuration, area mm²)."""
    return {
        "Integer Register File (64-bit registers)": (
            "128 Registers",
            register_file_area(128, 64),
        ),
        "Floating-point Register File (128-bit registers)": (
            "128 Registers",
            register_file_area(128, 128),
        ),
        "PRT": ("Overhead", prt_area()),
        "Issue Queue": ("Overhead", issue_queue_overhead_area()),
        "Register Predictor": ("Overhead", predictor_area()),
        "Total Overhead": ("", total_overhead_area()),
    }
