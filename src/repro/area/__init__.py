"""Area modelling (the CACTI 6.5 stand-in) and equal-area configuration."""

from repro.area.cacti_lite import (
    register_file_area,
    banked_rf_area,
    shadow_cells_area,
    prt_area,
    issue_queue_overhead_area,
    predictor_area,
    total_overhead_area,
    table2,
)
from repro.area.equal_area import (
    baseline_area,
    proposed_area,
    equal_area_banks,
    validate_table3,
)

__all__ = [
    "register_file_area",
    "banked_rf_area",
    "shadow_cells_area",
    "prt_area",
    "issue_queue_overhead_area",
    "predictor_area",
    "total_overhead_area",
    "table2",
    "baseline_area",
    "proposed_area",
    "equal_area_banks",
    "validate_table3",
]
