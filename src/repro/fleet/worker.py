"""Remote sweep worker: lease, simulate, heartbeat, upload, repeat.

A worker is a loop around one TCP session: ``hello`` (which the
coordinator rejects outright on a code-fingerprint mismatch — a
version-skewed worker must not compute anything), then lease points and
run them through the exact same :func:`~repro.harness.parallel._worker`
entry as every local execution mode, so a point's statistics cannot
depend on *where* it ran.

Concurrency is deliberately primitive: while the main thread simulates,
a heartbeat thread owns the socket exclusively, extending the lease
deadline every few seconds; the main thread only touches the socket
before and after.  No multiplexing, no async — a dead socket surfaces as
an exception in whichever thread holds it, the session ends, and the
reconnect loop (deterministic seeded backoff jitter, same scheme as the
local fleet's retry path) starts a fresh one.  Anything the worker
abandoned mid-point comes back via lease expiry on the coordinator.

Traces move through the content-addressed store: before simulating, the
worker asks the coordinator for the point's trace blob (keyed by the
same fingerprinted :func:`~repro.harness.cache.trace_key` as the local
cache); a hit lands in the worker's local cache so generation is
skipped, a miss means the worker generates locally and publishes the
blob back for the rest of the fleet.  Every transfer is digest-verified
on receipt, both directions.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.fleet import protocol
from repro.fleet.cas import CasError, ContentStore, blob_digest
from repro.fleet.coordinator import FleetEvents

#: result-upload attempts per lease before abandoning (each rejection is
#: a clean resend of freshly serialized bytes)
UPLOAD_ATTEMPTS = 3


class FatalRejection(RuntimeError):
    """The coordinator refused this worker permanently; do not reconnect."""


@dataclass(frozen=True)
class WorkerConfig:
    """Shape of one worker process."""

    host: str = "127.0.0.1"
    port: int = 0
    name: str = ""  # defaults to worker-<pid>
    #: target interval between lease heartbeats (clamped well under the
    #: coordinator's lease deadline once a point is leased)
    heartbeat_interval: float = 5.0
    #: consecutive connection/session failures tolerated before giving up
    #: (any committed progress resets the count)
    reconnect_attempts: int = 10
    reconnect_delay: float = 0.25
    connect_timeout: float = 5.0
    socket_timeout: float = 60.0
    #: salt for the deterministic reconnect-backoff jitter
    seed: int = 0
    max_frame: int = protocol.MAX_FRAME
    #: when set, the final event summary is atomically written here as
    #: JSON — how chaos campaigns read a (possibly SIGKILLed) worker back
    events_path: str = ""
    #: when set, exported as ``REPRO_TRACE_DIR``/``REPRO_CACHE_DIR``
    #: before any cache is opened (per-worker isolation in tests/chaos)
    trace_dir: str = ""
    cache_dir: str = ""
    #: claim this code fingerprint instead of the real one (how the
    #: chaos harness models a version-skewed worker)
    fingerprint: str = ""
    #: file descriptors to close at process start — a fork-started
    #: worker inherits the coordinator's listening socket, which would
    #: keep the port bound across a coordinator restart
    close_fds: tuple = ()


class WorkerChaos:
    """Self-inflicted faults, installed by the chaos campaign.

    Each knob is a countdown — the fault fires that many times, then the
    worker behaves; a rejected upload therefore retries *clean*, which is
    exactly the recovery path under test.
    """

    def __init__(self, truncate_uploads: int = 0, corrupt_uploads: int = 0,
                 stall_points: int = 0, stall_duration: float = 0.0) -> None:
        self.truncate_uploads = truncate_uploads
        self.corrupt_uploads = corrupt_uploads
        self.stall_points = stall_points
        self.stall_duration = stall_duration
        self.events: list[dict] = []

    def mangle_upload(self, body: bytes) -> tuple[bytes, Optional[str]]:
        """Maybe damage an upload body (the digest still names the
        *correct* bytes, so the coordinator must notice)."""
        if self.truncate_uploads > 0 and len(body) > 1:
            self.truncate_uploads -= 1
            self.events.append({"event": "chaos_truncate_upload"})
            return body[:len(body) // 2], "truncate_upload"
        if self.corrupt_uploads > 0 and body:
            self.corrupt_uploads -= 1
            self.events.append({"event": "chaos_corrupt_upload"})
            mangled = bytearray(body)
            mangled[len(mangled) // 3] ^= 0x40
            return bytes(mangled), "corrupt_upload"
        return body, None

    def point_stall(self) -> float:
        """Seconds to stall (heartbeats stopped) before uploading —
        modelling a worker that goes silent past the lease deadline."""
        if self.stall_points > 0:
            self.stall_points -= 1
            self.events.append({"event": "chaos_stall_point",
                                "duration": self.stall_duration})
            return self.stall_duration
        return 0.0


class FleetWorker:
    """One worker process: reconnect loop around lease/run/upload."""

    def __init__(self, config: WorkerConfig, *,
                 store: Optional[ContentStore] = None,
                 fingerprint: Optional[str] = None,
                 chaos: Optional[WorkerChaos] = None) -> None:
        from repro.harness.cache import code_fingerprint

        self.config = config
        self.name = config.name or f"worker-{os.getpid()}"
        self.store = store if store is not None else ContentStore()
        self.fingerprint = fingerprint if fingerprint is not None \
            else (config.fingerprint or code_fingerprint())
        self.chaos = chaos
        self.events = FleetEvents()
        self.points_done = 0
        self._progressed = False

    # -------------------------------------------------------------- main loop
    def run(self) -> dict:
        """Work until the coordinator says ``done``; returns a summary.

        Transient failures (refused connection during a coordinator
        restart, a dropped socket mid-session) reconnect with
        deterministic seeded backoff; committed progress resets the
        failure budget.  A fatal rejection (fingerprint mismatch) or an
        exhausted budget ends the worker with ``fatal`` set — it never
        spins forever against a dead or incompatible coordinator.
        """
        from repro.harness.parallel import _backoff

        failures = 0
        finished = False
        fatal = None
        while not finished:
            sock = None
            try:
                sock = self._connect()
                finished = self._session(sock)
            except FatalRejection as exc:
                fatal = str(exc)
                break
            except (protocol.ProtocolError, OSError) as exc:
                self.events.note(
                    "session_errors",
                    error=f"{type(exc).__name__}: {exc}"[:200])
            finally:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
            if self._progressed:
                failures = 0
                self._progressed = False
            if not finished:
                failures += 1
                if failures > self.config.reconnect_attempts:
                    fatal = (f"gave up after {failures} consecutive "
                             f"connection failures")
                    break
                # capped: a worker polling a restarting coordinator must
                # come back within seconds, not exponentially later
                time.sleep(min(_backoff(self.config.reconnect_delay,
                                        failures, self.config.seed), 5.0))
        summary = {
            "worker": self.name,
            "finished": finished,
            "fatal": fatal,
            "points_done": self.points_done,
            "events": self.events.snapshot(),
            "chaos": list(self.chaos.events) if self.chaos else [],
        }
        self._write_events(summary)
        return summary

    def _write_events(self, summary: dict) -> None:
        if not self.config.events_path:
            return
        from repro.harness.cache import atomic_write_bytes

        atomic_write_bytes(
            Path(self.config.events_path),
            json.dumps(summary, sort_keys=True).encode("utf-8"))

    # --------------------------------------------------------------- session
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.config.host, self.config.port),
            timeout=self.config.connect_timeout)
        ok = False
        try:
            sock.settimeout(self.config.socket_timeout)
            reply, _ = protocol.request(sock, {
                "type": "hello",
                "protocol": protocol.PROTOCOL_VERSION,
                "fingerprint": self.fingerprint,
                "worker": self.name,
            }, max_frame=self.config.max_frame)
            if reply.get("type") == "error":
                reason = str(reply.get("reason", "rejected"))
                if reply.get("fatal"):
                    self.events.note("fatal_rejections", reason=reason[:200])
                    raise FatalRejection(reason)
                raise protocol.ProtocolError(f"hello rejected: {reason}")
            if reply.get("type") != "welcome":
                raise protocol.ProtocolError(
                    f"expected welcome, got {reply.get('type')!r}")
            self.events.incr("sessions")
            ok = True
            return sock
        finally:
            if not ok:
                sock.close()

    def _session(self, sock: socket.socket) -> bool:
        """Lease/run until ``done`` (True) or the socket dies (raises)."""
        while True:
            reply, _ = self._request(sock, {"type": "lease"})
            kind = reply.get("type")
            if kind == "done":
                try:
                    protocol.send_message(sock, {"type": "bye"})
                except OSError:
                    pass
                return True
            if kind == "idle":
                time.sleep(float(reply.get("delay", 0.2)))
                continue
            if kind == "point":
                self._execute(sock, reply)
                self._progressed = True
                continue
            if kind == "error":
                if reply.get("fatal"):
                    raise FatalRejection(str(reply.get("reason", "rejected")))
                self.events.note("soft_errors",
                                 reason=str(reply.get("reason"))[:200])
                continue
            raise protocol.ProtocolError(f"unexpected reply type {kind!r}")

    def _request(self, sock, msg, body: bytes = b"") -> tuple[dict, bytes]:
        return protocol.request(sock, msg, body,
                                max_frame=self.config.max_frame)

    # -------------------------------------------------------------- one point
    def _execute(self, sock: socket.socket, lease_msg: dict) -> None:
        from repro.harness.parallel import _worker

        index = int(lease_msg["index"])
        lease = str(lease_msg["lease"])
        deadline = float(lease_msg.get("deadline", 30.0))
        point = protocol.point_from_dict(lease_msg["point"])

        # trace first (before heartbeats start: blob transfer and
        # simulation never share the socket with the heartbeat thread)
        coordinator_has_trace = self._fetch_trace(sock, point)

        stop_hb = threading.Event()
        hb_state: dict = {"lost": False, "error": None}
        interval = min(self.config.heartbeat_interval,
                       max(deadline / 3.0, 0.05))
        hb_thread = threading.Thread(
            target=self._heartbeat_loop,
            args=(sock, lease, interval, stop_hb, hb_state),
            daemon=True, name=f"{self.name}-heartbeat")
        hb_thread.start()
        try:
            _, stats_dict, error = _worker((index, point))
        finally:
            stop_hb.set()
            hb_thread.join()
        if hb_state["error"] is not None:
            raise hb_state["error"]  # socket died; lease expiry recovers
        if not coordinator_has_trace:
            self._publish_trace(sock, point)
        if self.chaos is not None:
            stall = self.chaos.point_stall()
            if stall > 0:
                time.sleep(stall)  # silent past the deadline, on purpose
        if hb_state["lost"]:
            # the coordinator already re-leased this point; the re-run is
            # bit-identical, so abandoning here loses nothing
            self.events.note("leases_lost", index=index)
            return
        if error is not None:
            self.events.note("point_errors", index=index)
            self._request(sock, {"type": "result", "lease": lease,
                                 "index": index, "error": error})
            return
        self._upload(sock, lease, index, stats_dict)

    def _upload(self, sock, lease: str, index: int, stats_dict: dict) -> None:
        body = json.dumps(stats_dict, sort_keys=True).encode("utf-8")
        digest = blob_digest(body)  # of the TRUE bytes, even under chaos
        for _ in range(UPLOAD_ATTEMPTS):
            wire = body
            fault = None
            if self.chaos is not None:
                wire, fault = self.chaos.mangle_upload(body)
            try:
                reply, _ = self._request(sock, {"type": "result",
                                                "lease": lease,
                                                "index": index,
                                                "digest": digest}, wire)
            except (protocol.ProtocolError, OSError):
                if fault is not None and self.chaos is not None:
                    # the mangled body died with the connection — no
                    # coordinator ever saw it, so no rejection counter
                    # will account for it (the chaos classifier needs
                    # to know the difference)
                    self.chaos.events.append({"event": "chaos_mangle_void"})
                raise
            if reply.get("type") == "ok":
                self.points_done += 1
                self.events.incr("uploads_committed")
                return
            if reply.get("stale"):
                self.events.note("leases_lost", index=index)
                return
            if reply.get("type") == "error" and not reply.get("fatal"):
                self.events.note("uploads_rejected",
                                 reason=str(reply.get("reason"))[:200])
                continue
            raise protocol.ProtocolError(
                f"unexpected result reply: {reply!r}")
        # give up; the lease expires and the point requeues elsewhere
        self.events.note("uploads_abandoned", index=index)

    def _heartbeat_loop(self, sock, lease: str, interval: float,
                        stop: threading.Event, state: dict) -> None:
        try:
            while not stop.wait(interval):
                reply, _ = self._request(sock, {"type": "heartbeat",
                                                "lease": lease})
                if not reply.get("known", False):
                    state["lost"] = True
                    return
                self.events.incr("heartbeats")
        except (protocol.ProtocolError, OSError) as exc:
            state["error"] = exc

    # ----------------------------------------------------------------- blobs
    def _trace_key(self, point) -> str:
        return self.store.trace_cache.key_for(point.profile, point.insts,
                                              point.seed)

    def _fetch_trace(self, sock, point) -> bool:
        """Pull the point's trace blob if the coordinator has it; returns
        whether the coordinator had it (False → publish after the run)."""
        key = self._trace_key(point)
        local = self.store.get("trace", key)
        reply, body = self._request(sock, {"type": "blob_get",
                                           "kind": "trace", "key": key})
        if reply.get("type") != "blob" or not reply.get("found"):
            return False
        if local is None:
            try:
                self.store.put("trace", key, body,
                               digest=str(reply.get("digest", "")))
                self.events.incr("traces_fetched")
            except CasError as exc:
                # damaged in flight: refuse it and generate locally
                self.events.note("blobs_rejected", reason=str(exc)[:200])
                return False
        return True

    def _publish_trace(self, sock, point) -> None:
        """Ship a locally generated trace back for the rest of the fleet."""
        key = self._trace_key(point)
        blob = self.store.get("trace", key)
        if blob is None:
            return  # this run didn't leave a binary blob behind
        reply, _ = self._request(sock, {"type": "blob_put", "kind": "trace",
                                        "key": key,
                                        "digest": blob_digest(blob)}, blob)
        if reply.get("type") == "ok":
            self.events.incr("traces_published")


def worker_main(config: WorkerConfig,
                chaos: Optional[WorkerChaos] = None) -> dict:
    """Process entry point: apply cache isolation, run one worker.

    Fork/spawn target for the smoke tool and the chaos harness; also the
    backend of ``repro fleet worker``.  Exports the per-worker cache
    directories *before* the first cache object is constructed, then runs
    the worker to completion and (if configured) leaves its event summary
    on disk for the parent to read back.
    """
    for fd in config.close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    if config.trace_dir:
        os.environ["REPRO_TRACE_DIR"] = config.trace_dir
    if config.cache_dir:
        os.environ["REPRO_CACHE_DIR"] = config.cache_dir
    if config.trace_dir or config.cache_dir:
        # fork-started children inherit the parent's warm in-memory trace
        # memo; drop it so this worker's cache isolation is real (its
        # traces come from its own dir or the coordinator's blob store)
        from repro.harness.cache import reset_trace_memo

        reset_trace_memo()
    worker = FleetWorker(config, chaos=chaos)
    return worker.run()
