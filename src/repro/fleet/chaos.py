"""Chaos campaign: seeded fault injection against a live sweep fleet.

The distributed fleet claims a strong invariant: no matter what dies,
stalls, lies or disconnects, a sweep either finishes **bit-identical**
to a serial reference run or fails loudly.  This module attacks that
claim the same way :mod:`repro.faults` attacks the renamer's recovery
machinery — a seeded campaign injects faults, classifies what each one
did, and gates on the taxonomy:

* **masked** — the fault landed where it could do no harm (an idle
  worker killed, an upload mangler that never got an upload);
* **detected** — the fleet refused the faulty party outright (a
  version-skewed worker's fingerprint rejected at ``hello``);
* **recovered** — the fault cost work that the fleet re-leased,
  re-ran or re-uploaded to the same final bits (an expired lease, a
  rejected upload, a coordinator restart resumed from its journal);
* **silent** — the fault changed the sweep's results, or a corruption
  passed a checkpoint that must have caught it.  **Never acceptable.**

Every campaign round runs a small sweep grid through a real coordinator
and real forked worker processes on localhost, injects its drawn faults
(SIGKILL mid-point, connection drops, truncated/corrupted uploads,
heartbeat silence past the lease deadline, coordinator restart,
fingerprint skew), then compares the surviving results against an
in-process ``jobs=1`` reference — byte equality of the stats dicts, not
approximation.  Unexpected outcomes are shrunk ddmin-style to a minimal
fault plan that still reproduces them, and reported through the same
:class:`~repro.faults.report.CampaignReport` as the microarchitectural
campaign.
"""

from __future__ import annotations

import json
import os
import random
import signal
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.faults.report import CampaignReport
from repro.fleet.cas import ContentStore
from repro.fleet.coordinator import FleetConfig, FleetCoordinator
from repro.fleet.worker import WorkerChaos, WorkerConfig, worker_main

#: chaos fault kinds (disjoint from repro.faults.injectors.KINDS)
KINDS = (
    "kill_worker",          # SIGKILL a worker process mid-sweep
    "partition",            # hard-close live worker connections
    "truncate_upload",      # worker sends half a result body
    "corrupt_upload",       # worker flips a bit in a result body
    "stall_worker",         # worker goes silent past the lease deadline
    "restart_coordinator",  # coordinator killed and restarted mid-sweep
    "version_skew",         # a worker with a wrong code fingerprint
)

#: outcomes each kind may legitimately produce; anything else is a
#: campaign failure (and ``silent`` is never in any set)
EXPECTED_OUTCOMES = {
    "kill_worker": {"masked", "recovered"},
    "partition": {"masked", "recovered"},
    "truncate_upload": {"masked", "recovered"},
    "corrupt_upload": {"masked", "recovered"},
    "stall_worker": {"masked", "recovered"},
    "restart_coordinator": {"masked", "recovered"},
    "version_skew": {"detected"},
}


@dataclass(frozen=True)
class ChaosSpec:
    """One drawn fault: what, when, and against whom."""

    kind: str
    round_index: int
    #: target worker slot (upload/stall/kill faults), or None
    worker: Optional[int] = None
    #: seconds after round start at which a harness-side fault fires
    delay: float = 0.0

    def to_dict(self) -> dict:
        return {"kind": self.kind, "round": self.round_index,
                "worker": self.worker, "delay": round(self.delay, 3)}


@dataclass
class ChaosRecord:
    """One injected fault and its classification."""

    index: int
    spec: ChaosSpec
    outcome: str
    expected: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"index": self.index, "spec": self.spec.to_dict(),
                "outcome": self.outcome, "expected": self.expected,
                "detail": self.detail}


@dataclass(frozen=True)
class ChaosConfig:
    """Campaign shape.  Defaults give ~8 faults per round on a 6-point
    grid with sub-second leases — dense enough that a 100-fault gate
    finishes in minutes, slow enough that every fault has a live sweep
    to land on."""

    seed: int = 0
    faults: int = 100
    workers: int = 3
    points: int = 6
    insts: int = 800
    profile: str = "gsm"
    schemes: tuple = ("sharing", "conventional")
    lease_deadline: float = 1.2
    heartbeat_interval: float = 0.25
    #: lease re-grants per point (generous: chaos may cost several)
    retries: int = 6
    #: wall-clock bound on one round before the harness declares it hung
    round_timeout: float = 90.0
    shrink: bool = True
    #: scratch root (tempdir when empty); every round isolates its own
    #: journal, result cache and per-worker trace dirs under it
    workdir: str = ""


# ------------------------------------------------------------------ planning
def _plan_round(config: ChaosConfig, round_index: int,
                budget: int) -> list[ChaosSpec]:
    """Draw this round's fault plan (pure function of seed + round)."""
    rng = random.Random((config.seed << 16) | round_index)
    count = min(budget, rng.randint(3, 6))
    specs: list[ChaosSpec] = []
    used_restart = False
    used_skew = False
    kills: set[int] = set()
    for _ in range(count):
        kind = rng.choice(KINDS)
        if kind == "restart_coordinator":
            if used_restart:
                kind = "kill_worker"
            used_restart = True
        if kind == "version_skew":
            if used_skew:
                kind = "partition"
            used_skew = True
        worker: Optional[int] = None
        delay = rng.uniform(0.2, 1.4)
        if kind == "kill_worker":
            candidates = [w for w in range(config.workers)
                          if w not in kills]
            if not candidates:
                kind = "partition"
            else:
                worker = rng.choice(candidates)
                kills.add(worker)
        if kind in ("truncate_upload", "corrupt_upload", "stall_worker"):
            worker = rng.randrange(config.workers)
        specs.append(ChaosSpec(kind=kind, round_index=round_index,
                               worker=worker, delay=delay))
    return specs


def _round_points(config: ChaosConfig, round_index: int) -> list:
    from repro.harness.parallel import SweepPoint
    from repro.workloads.profiles import BENCHMARKS

    profile = BENCHMARKS[config.profile]
    return [
        SweepPoint(profile=profile,
                   scheme=config.schemes[i % len(config.schemes)],
                   size=48, insts=config.insts,
                   seed=1 + round_index * config.points + i)
        for i in range(config.points)
    ]


# ----------------------------------------------------------------- one round
class RoundResult:
    """Everything one round leaves behind for classification."""

    def __init__(self) -> None:
        self.coordinator_counters: dict[str, int] = {}
        self.coordinator_log: list[dict] = []
        self.worker_summaries: dict[int, dict] = {}
        self.killed: set[int] = set()
        self.dropped = 0
        self.restart_pending = 0  # points unresolved at coordinator restart
        self.divergences: list[str] = []
        self.errors: list[str] = []
        self.timed_out = False

    def counter(self, name: str) -> int:
        return self.coordinator_counters.get(name, 0)

    def worker_chaos_fired(self, worker: int, event: str) -> int:
        summary = self.worker_summaries.get(worker) or {}
        return sum(1 for entry in summary.get("chaos", [])
                   if entry.get("event") == event)


def _merge_counters(into: dict, counters: dict) -> None:
    for name, value in counters.items():
        into[name] = into.get(name, 0) + value


def _run_round(config: ChaosConfig, round_index: int,
               specs: list[ChaosSpec], workdir: Path) -> RoundResult:
    """Execute one chaos round: sweep + injections + bit-identity check."""
    from repro.harness.parallel import SweepJournal, run_points

    outcome = RoundResult()
    points = _round_points(config, round_index)

    # serial reference, in-process (this also pregenerates every trace
    # into the parent's trace cache — the coordinator's CAS — so workers
    # exercise the blob_get path instead of all generating locally)
    reference = run_points(points, jobs=1)
    failed = [r for r in reference if not r.ok]
    if failed:  # the reference itself must be beyond suspicion
        raise RuntimeError(
            f"serial reference failed on {failed[0].point.label()}: "
            f"{failed[0].error}")
    ref_dicts = [r.stats.to_dict() for r in reference]

    round_dir = workdir / f"round{round_index:03d}"
    round_dir.mkdir(parents=True, exist_ok=True)
    journal = SweepJournal(round_dir / "journal.jsonl")
    store = ContentStore()  # parent-default caches: shared traces
    results: dict[int, object] = {}
    lock = threading.Lock()

    def finish(index: int, result) -> None:
        with lock:
            results[index] = result
        if result.ok:
            journal.record(result.point, result.stats)

    fleet_cfg = FleetConfig(
        host="127.0.0.1", port=0,
        lease_deadline=config.lease_deadline,
        # never steal work while remotes are alive: the faults must land
        # on remote executions, not on a coordinator racing its fleet
        local_fallback_after=max(4 * config.lease_deadline, 3.0),
        socket_timeout=30.0)

    restart_at = [spec.delay for spec in specs
                  if spec.kind == "restart_coordinator"]
    kills = sorted((spec.delay, spec.worker) for spec in specs
                   if spec.kind == "kill_worker")
    partitions = sorted(spec.delay for spec in specs
                        if spec.kind == "partition")
    skewed = any(spec.kind == "version_skew" for spec in specs)

    # ---------------------------------------------------------- first serve
    pending = [i for i in range(len(points)) if i not in results]
    coordinator = FleetCoordinator(points, pending, finish, fleet_cfg,
                                   retries=config.retries, store=store)
    host, port = coordinator.start()

    # ---------------------------------------------------------- the workers
    import multiprocessing
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()

    processes: dict[int, object] = {}
    event_paths: dict[int, Path] = {}

    def spawn_worker(slot: int, fingerprint: str = "") -> None:
        chaos = WorkerChaos(
            truncate_uploads=sum(1 for s in specs
                                 if s.kind == "truncate_upload"
                                 and s.worker == slot),
            corrupt_uploads=sum(1 for s in specs
                                if s.kind == "corrupt_upload"
                                and s.worker == slot),
            stall_points=sum(1 for s in specs
                             if s.kind == "stall_worker"
                             and s.worker == slot),
            stall_duration=config.lease_deadline + 0.75)
        events_path = round_dir / f"worker{slot}.json"
        event_paths[slot] = events_path
        wcfg = WorkerConfig(
            host=host, port=port, name=f"r{round_index}w{slot}",
            heartbeat_interval=config.heartbeat_interval,
            reconnect_attempts=20, reconnect_delay=0.2,
            connect_timeout=5.0, socket_timeout=30.0, seed=slot,
            events_path=str(events_path),
            trace_dir=str(round_dir / f"trace{slot}"),
            cache_dir=str(round_dir / f"cache{slot}"),
            fingerprint=fingerprint,
            close_fds=(coordinator.listener_fd,))
        process = ctx.Process(target=worker_main, args=(wcfg, chaos),
                              daemon=True)
        process.start()
        processes[slot] = process

    for slot in range(config.workers):
        spawn_worker(slot)
    if skewed:
        # the extra, incompatible worker: slot index past the real fleet
        spawn_worker(config.workers, fingerprint="skewed-fingerprint")

    # --------------------------------------------------- harness-side faults
    start = time.monotonic()
    abort = threading.Event()
    injector_stop = threading.Event()

    def injector() -> None:
        timeline = sorted(
            [(delay, "kill", worker) for delay, worker in kills]
            + [(delay, "partition", None) for delay in partitions]
            + [(delay, "restart", None) for delay in restart_at])
        for delay, action, worker in timeline:
            wait = start + delay - time.monotonic()
            if wait > 0 and injector_stop.wait(wait):
                return
            if action == "kill":
                process = processes.get(worker)
                if process is not None and process.is_alive():
                    os.kill(process.pid, signal.SIGKILL)
                    outcome.killed.add(worker)
            elif action == "partition":
                outcome.dropped += coordinator.drop_connections(
                    1, random.Random(
                        f"{config.seed}:{round_index}:{delay}"))
            elif action == "restart":
                abort.set()

    injector_thread = threading.Thread(target=injector, daemon=True)
    injector_thread.start()

    # hard watchdog: a hung round must fail the campaign, not wedge it
    hard_stop = threading.Event()

    def _hard_timeout() -> None:
        hard_stop.set()
        abort.set()

    watchdog = threading.Timer(config.round_timeout, _hard_timeout)
    watchdog.daemon = True
    watchdog.start()

    def snapshot_coordinator(coord: FleetCoordinator) -> None:
        snap = coord.events.snapshot()
        _merge_counters(outcome.coordinator_counters, snap["counters"])
        outcome.coordinator_log.extend(snap["log"])

    completed = coordinator.run(stop=abort)
    if completed:
        coordinator.drain()
    coordinator.stop()
    snapshot_coordinator(coordinator)

    if not completed and abort.is_set() and not hard_stop.is_set():
        # ------------------------------------------------- the restart
        # a new coordinator process-equivalent: same port, fresh state,
        # resumed from the journal exactly as `--resume` would
        journal2 = SweepJournal(round_dir / "journal.jsonl")
        pending2 = []
        for i, point in enumerate(points):
            if i in results:
                continue
            stats = journal2.get(journal2.key_for_point(point))
            if stats is not None:
                from repro.harness.parallel import PointResult
                results[i] = PointResult(point, stats=stats,
                                         journaled=True, attempts=0)
                continue
            pending2.append(i)
        outcome.restart_pending = len(pending2)
        if pending2:
            def finish2(index: int, result) -> None:
                with lock:
                    results[index] = result
                if result.ok:
                    journal2.record(result.point, result.stats)

            coordinator2 = FleetCoordinator(
                points, pending2, finish2,
                FleetConfig(host=host, port=port,
                            lease_deadline=config.lease_deadline,
                            local_fallback_after=fleet_cfg
                            .local_fallback_after,
                            socket_timeout=30.0),
                retries=config.retries, store=store)
            try:
                coordinator2.start()
            except OSError:
                # port still draining a half-closed socket: give it a
                # beat and retry once before falling back local-only
                time.sleep(0.5)
                coordinator2 = FleetCoordinator(
                    points, pending2, finish2,
                    FleetConfig(host=host, port=port,
                                lease_deadline=config.lease_deadline,
                                local_fallback_after=1.0,
                                socket_timeout=30.0),
                    retries=config.retries, store=store)
                coordinator2.start()
            completed = coordinator2.run(stop=hard_stop)
            if completed:
                coordinator2.drain()
            coordinator2.stop()
            snapshot_coordinator(coordinator2)
        else:
            completed = True

    watchdog.cancel()
    injector_stop.set()
    injector_thread.join(timeout=5.0)
    outcome.timed_out = hard_stop.is_set()

    # ------------------------------------------------------- worker cleanup
    for slot, process in processes.items():
        process.join(timeout=8.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - last resort
            process.kill()
            process.join()
    for slot, path in event_paths.items():
        try:
            outcome.worker_summaries[slot] = json.loads(path.read_text())
        except (OSError, ValueError):
            pass  # SIGKILLed or still mid-write: no summary, by design

    # -------------------------------------------------- the bit-identity gate
    for i, point in enumerate(points):
        result = results.get(i)
        if result is None:
            outcome.divergences.append(
                f"{point.label()}: never resolved")
            continue
        if not result.ok:
            outcome.errors.append(
                f"{point.label()}: {str(result.error)[:200]}")
            continue
        if result.stats.to_dict() != ref_dicts[i]:
            outcome.divergences.append(
                f"{point.label()}: stats differ from the serial reference")
    return outcome


# ------------------------------------------------------------ classification
def _classify_round(specs: list[ChaosSpec],
                    outcome: RoundResult) -> list[tuple[ChaosSpec, str, str]]:
    """(spec, outcome, detail) for every fault of one round."""
    verdicts: list[tuple[ChaosSpec, str, str]] = []

    diverged = bool(outcome.divergences) or outcome.timed_out
    # round-level pools (faults of one kind share observable counters);
    # fired counts dedup by (worker, kind) — several specs may drive one
    # worker's countdown, but its events must be counted once
    upload_workers = {s.worker for s in specs
                      if s.kind in ("truncate_upload", "corrupt_upload")}
    mangles_fired = sum(
        outcome.worker_chaos_fired(worker, f"chaos_{kind}")
        for worker, kind in {(s.worker, s.kind) for s in specs
                             if s.kind in ("truncate_upload",
                                           "corrupt_upload")})
    # mangles whose connection died before the coordinator saw them:
    # nothing to refuse, nothing committed — they don't need a counter
    mangles_void = sum(
        outcome.worker_chaos_fired(worker, "chaos_mangle_void")
        for worker in upload_workers)
    mangles_delivered = max(0, mangles_fired - mangles_void)
    rejected = outcome.counter("uploads_rejected")
    expiries = outcome.counter("leases_expired")
    stale = outcome.counter("stale_uploads")
    # a mangled upload is *refused* either by digest rejection or — when
    # its lease expired during the retries — as a stale-lease discard;
    # both keep it out of the results, which is the invariant
    refused = rejected + stale
    expired_workers = {entry.get("worker")
                       for entry in outcome.coordinator_log
                       if entry.get("event") == "leases_expired"}

    for spec in specs:
        if diverged:
            verdicts.append((spec, "silent",
                             "; ".join(outcome.divergences)[:400]
                             or "round timed out"))
            continue
        if outcome.errors:
            verdicts.append((spec, "error",
                             "; ".join(outcome.errors)[:400]))
            continue
        kind = spec.kind
        if kind == "kill_worker":
            if spec.worker not in outcome.killed:
                verdicts.append((spec, "masked",
                                 "worker already exited before the kill"))
            elif f"r{spec.round_index}w{spec.worker}" in expired_workers \
                    or expiries > 0:
                verdicts.append((spec, "recovered",
                                 f"{expiries} lease expiries requeued"))
            else:
                verdicts.append((spec, "masked",
                                 "worker held no lease when killed"))
        elif kind == "partition":
            if outcome.dropped == 0:
                verdicts.append((spec, "masked",
                                 "no live connection to drop"))
            else:
                verdicts.append((spec, "recovered",
                                 f"{outcome.dropped} connection(s) "
                                 f"dropped; fleet reconnected"))
        elif kind in ("truncate_upload", "corrupt_upload"):
            fired = outcome.worker_chaos_fired(spec.worker,
                                               f"chaos_{kind}")
            if fired == 0:
                verdicts.append((spec, "masked",
                                 "worker never got an upload to mangle"))
            elif mangles_delivered == 0:
                verdicts.append((spec, "masked",
                                 "mangled upload(s) died with their "
                                 "connection before delivery"))
            elif refused >= mangles_delivered:
                verdicts.append((spec, "recovered",
                                 f"{rejected} rejection(s) + {stale} "
                                 f"stale discard(s) covered "
                                 f"{mangles_delivered} delivered mangled "
                                 f"upload(s)"))
            else:
                verdicts.append((spec, "silent",
                                 f"{mangles_delivered} delivered mangled "
                                 f"upload(s) but only {refused} "
                                 f"refusal(s)"))
        elif kind == "stall_worker":
            fired = outcome.worker_chaos_fired(spec.worker,
                                               "chaos_stall_point")
            if fired == 0:
                verdicts.append((spec, "masked",
                                 "worker never got a point to stall on"))
            elif expiries + stale > 0:
                verdicts.append((spec, "recovered",
                                 f"{expiries} expiries, {stale} stale "
                                 f"upload(s) discarded"))
            elif outcome.restart_pending > 0:
                # the coordinator restart discarded all lease state, so
                # the expiry this stall would have caused is unprovable;
                # the journal resume re-ran whatever was outstanding
                verdicts.append((spec, "masked",
                                 "lease state lost to the coordinator "
                                 "restart before the stall could expire"))
            else:
                verdicts.append((spec, "silent",
                                 "stall past the deadline left no "
                                 "expiry or stale-upload trace"))
        elif kind == "restart_coordinator":
            if outcome.restart_pending > 0:
                verdicts.append((spec, "recovered",
                                 f"resumed {outcome.restart_pending} "
                                 f"point(s) from the journal"))
            else:
                verdicts.append((spec, "masked",
                                 "sweep finished before the restart"))
        elif kind == "version_skew":
            if outcome.counter("fingerprint_rejections") > 0:
                verdicts.append((spec, "detected",
                                 "skewed worker rejected at hello"))
            else:
                verdicts.append((spec, "silent",
                                 "skewed worker was never rejected"))
        else:  # pragma: no cover - plan and kinds are drawn together
            verdicts.append((spec, "error", f"unknown kind {kind!r}"))
    return verdicts


# ----------------------------------------------------------------- shrinking
def _ddmin(specs: list[ChaosSpec],
           fails: Callable[[list[ChaosSpec]], bool],
           budget: int = 12) -> list[ChaosSpec]:
    """Minimise a fault plan while ``fails`` holds (ddmin over the list)."""
    current = list(specs)
    attempts = 0
    chunk = max(1, len(current) // 2)
    while chunk >= 1 and attempts < budget:
        shrunk = False
        for offset in range(0, len(current), chunk):
            candidate = current[:offset] + current[offset + chunk:]
            if not candidate:
                continue
            attempts += 1
            if fails(candidate):
                current = candidate
                shrunk = True
                break
            if attempts >= budget:
                break
        if not shrunk:
            chunk //= 2
    return current


# ------------------------------------------------------------------ campaign
def run_campaign(
    config: Optional[ChaosConfig] = None,
    progress: Optional[Callable[[ChaosRecord], None]] = None,
    **overrides,
) -> CampaignReport:
    """Run a chaos campaign; returns the aggregated report.

    Deterministic per seed at the *plan* level (which faults fire, when,
    against whom); the classifications may differ across machines (a
    kill can land before or after a lease), which is exactly why every
    kind carries an expected-outcome *set*.  The invariants are machine-
    independent: zero ``silent`` classifications, zero unexpected
    outcomes, and every round bit-identical to its serial reference.
    """
    if config is None:
        config = ChaosConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a ChaosConfig or keyword overrides")

    workdir = Path(config.workdir) if config.workdir \
        else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    workdir.mkdir(parents=True, exist_ok=True)

    records: list[ChaosRecord] = []
    report = CampaignReport(seed=config.seed, injections=config.faults,
                            schemes=tuple(config.schemes),
                            title="fleet chaos campaign")
    round_index = 0
    while len(records) < config.faults:
        specs = _plan_round(config, round_index,
                            config.faults - len(records))
        outcome = _run_round(config, round_index, specs, workdir)
        verdicts = _classify_round(specs, outcome)
        unexpected_here = False
        for spec, verdict, detail in verdicts:
            record = ChaosRecord(
                index=len(records), spec=spec, outcome=verdict,
                expected=verdict in EXPECTED_OUTCOMES[spec.kind],
                detail=detail)
            records.append(record)
            by = report.counts.setdefault(spec.kind, {})
            by[verdict] = by.get(verdict, 0) + 1
            if not record.expected:
                report.unexpected.append(record.to_dict())
                unexpected_here = True
            if progress is not None:
                progress(record)
        if unexpected_here and config.shrink:
            reproducer = _shrink_round(config, round_index, specs, workdir)
            if reproducer is not None:
                report.reproducers.append(reproducer)
        round_index += 1
    report.injections = len(records)
    return report


def _shrink_round(config: ChaosConfig, round_index: int,
                  specs: list[ChaosSpec], workdir: Path) -> Optional[dict]:
    """ddmin the fault plan of a failed round to a minimal reproducer."""
    replay_counter = [0]

    def fails(candidate: list[ChaosSpec]) -> bool:
        replay_counter[0] += 1
        replay_dir = workdir / f"shrink{round_index}-{replay_counter[0]}"
        outcome = _run_round(config, round_index, candidate, replay_dir)
        return any(verdict not in EXPECTED_OUTCOMES[spec.kind]
                   for spec, verdict, _ in
                   _classify_round(candidate, outcome))

    if not fails(specs):
        return None  # refuses to reproduce: flaky, report the round as-is
    minimal = _ddmin(specs, fails)
    return {
        "round": round_index,
        "seed": config.seed,
        "faults": [spec.to_dict() for spec in minimal],
        "replays": replay_counter[0],
    }
