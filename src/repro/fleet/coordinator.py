"""TCP sweep coordinator: lease-based point distribution across hosts.

The coordinator owns a sweep's pending-point queue (journal- and
cache-prefiltered by :func:`~repro.harness.parallel.run_points`) and
serves the fleet protocol (:mod:`repro.fleet.protocol`) to any number of
remote workers.  The design goal is the same silent-divergence-is-failure
contract as the rest of the harness: every point's statistics are a pure
function of the point, so the fleet may kill, retry, re-lease and
re-order freely — correctness only requires that nothing *wrong* is ever
committed, which the protocol enforces structurally:

* a worker must present the coordinator's **code fingerprint** in its
  ``hello`` or the session is rejected — a mixed-version fleet refuses
  to exchange work instead of computing subtly different numbers (and
  the cache keys fold the fingerprint in anyway, a second line of
  defense);
* a **lease** carries a deadline; heartbeats extend it, and a missed
  deadline (worker killed, partitioned, or just stalled) requeues the
  point for someone else — at most ``retries`` re-leases before the
  point is reported failed;
* a **result upload is verified, then committed**: the frame CRC, the
  SHA-256 body digest and a full ``stats_from_dict`` round-trip must all
  pass before anything reaches the journal or cache; a truncated or
  bit-flipped upload is rejected (the worker re-uploads) and a stale
  upload for an expired lease is discarded — the re-leased execution
  produces the identical result;
* when every remote dies, the coordinator **degrades to local
  execution**: its main loop picks pending points up itself (with the
  serial wall-clock watchdog still enforced), so a sweep never hangs on
  an empty fleet.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.fleet import protocol
from repro.fleet.cas import CasError, ContentStore, blob_digest, verify_digest

#: delay (seconds) suggested to an idle worker before its next lease ask
IDLE_DELAY = 0.2


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one coordinator endpoint."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (read the bound port off ``address``)
    #: seconds a lease stays valid without a heartbeat
    lease_deadline: float = 30.0
    #: seconds of remote silence before the coordinator starts executing
    #: pending points itself; 0 means it always helps
    local_fallback_after: float = 3.0
    #: whether the coordinator may execute points locally at all
    local: bool = True
    #: per-connection socket timeout (an abandoned half-open connection
    #: must not pin a handler thread forever)
    socket_timeout: float = 60.0
    max_frame: int = protocol.MAX_FRAME


def resolve_fleet_config(spec: Union[str, FleetConfig]) -> FleetConfig:
    """``"host:port"`` shorthand or a :class:`FleetConfig` passthrough."""
    if isinstance(spec, FleetConfig):
        return spec
    host, _, port = str(spec).rpartition(":")
    try:
        return FleetConfig(host=host or "127.0.0.1", port=int(port))
    except ValueError:
        raise ValueError(f"fleet address {spec!r}: expected HOST:PORT") \
            from None


class FleetEvents:
    """Thread-safe counters + a bounded structured event log.

    The chaos harness classifies injected faults by reading these back:
    a kill that mattered shows up as ``leases_expired``, a mangled
    upload as ``uploads_rejected``, a version-skewed worker as
    ``fingerprint_rejections`` — detection must be *observable*, not
    inferred.
    """

    LOG_LIMIT = 10_000

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.log: list[dict] = []

    def incr(self, name: str, count: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + count

    def note(self, event: str, **fields) -> None:
        with self._lock:
            self.counters[event] = self.counters.get(event, 0) + 1
            if len(self.log) < self.LOG_LIMIT:
                self.log.append({"event": event, **fields})

    def get(self, name: str) -> int:
        with self._lock:
            return self.counters.get(name, 0)

    def snapshot(self) -> dict:
        with self._lock:
            return {"counters": dict(self.counters), "log": list(self.log)}


@dataclass
class _Lease:
    index: int
    attempt: int
    worker: str
    deadline: float  # monotonic


class _FleetServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, coordinator: "FleetCoordinator") -> None:
        self.coordinator = coordinator
        super().__init__(address, _FleetHandler)


class _FleetHandler(socketserver.BaseRequestHandler):
    """One worker connection: hello/fingerprint gate, then request loop."""

    def handle(self) -> None:  # noqa: C901 - a dispatch loop
        coord: FleetCoordinator = self.server.coordinator
        sock: socket.socket = self.request
        events = coord.events
        worker = None
        try:
            sock.settimeout(coord.config.socket_timeout)
            msg, _ = protocol.recv_message(sock, coord.config.max_frame)
            if msg.get("type") != "hello" \
                    or msg.get("protocol") != protocol.PROTOCOL_VERSION:
                protocol.send_message(sock, {
                    "type": "error", "fatal": True,
                    "reason": f"expected hello at protocol version "
                              f"{protocol.PROTOCOL_VERSION}"})
                return
            if msg.get("fingerprint") != coord.fingerprint:
                events.note("fingerprint_rejections",
                            worker=msg.get("worker"),
                            theirs=str(msg.get("fingerprint"))[:16])
                protocol.send_message(sock, {
                    "type": "error", "fatal": True,
                    "reason": "code fingerprint mismatch: this worker runs "
                              "different simulator source than the "
                              "coordinator; results would not be "
                              "comparable"})
                return
            worker = str(msg.get("worker") or "anonymous")
            coord._register(worker, sock)
            events.incr("workers_connected")
            protocol.send_message(sock, {"type": "welcome",
                                         "fingerprint": coord.fingerprint})
            while not coord.stopping:
                msg, body = protocol.recv_message(sock, coord.config.max_frame)
                coord.touch_remote()
                reply, reply_body = coord.dispatch(worker, msg, body)
                if reply is None:  # bye
                    return
                protocol.send_message(sock, reply, reply_body)
                if reply.get("fatal"):
                    return
        except protocol.ConnectionClosed:
            pass
        except (protocol.ProtocolError, OSError) as exc:
            events.note("connection_errors", worker=worker,
                        error=f"{type(exc).__name__}: {exc}"[:200])
        finally:
            if worker is not None:
                coord._unregister(worker, sock)


class FleetCoordinator:
    """Owns the point queue, leases, commits and the TCP server."""

    def __init__(
        self,
        points: list,
        pending: list[int],
        finish: Callable[[int, object], None],
        config: FleetConfig,
        *,
        timeout: Optional[float] = None,
        retries: int = 0,
        store: Optional[ContentStore] = None,
        fingerprint: Optional[str] = None,
        events: Optional[FleetEvents] = None,
    ) -> None:
        from repro.harness.cache import code_fingerprint

        self.points = points
        self.config = config
        self.timeout = timeout
        self.retries = retries
        self.events = events if events is not None else FleetEvents()
        self.store = store if store is not None else ContentStore()
        self.fingerprint = fingerprint if fingerprint is not None \
            else code_fingerprint()
        self._finish = finish
        self._lock = threading.RLock()
        self._queue: deque[tuple[int, int]] = deque(
            (index, 1) for index in pending)
        self._leases: dict[str, _Lease] = {}
        self._lease_seq = 0
        self._unresolved: set[int] = set(pending)
        self._stop = threading.Event()
        self._server: Optional[_FleetServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        #: worker name -> set of live sockets (for drop/partition + liveness)
        self._connections: dict[str, set] = {}
        #: monotonic timestamp of the last remote activity; seeds at
        #: construction so the fallback window measures from sweep start
        self._last_remote = time.monotonic()

    # ---------------------------------------------------------------- server
    def start(self) -> tuple[str, int]:
        """Bind and serve in a daemon thread; returns (host, port)."""
        self._server = _FleetServer((self.config.host, self.config.port),
                                    self)
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1}, daemon=True,
            name="fleet-coordinator")
        self._serve_thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None, "start() first"
        return self._server.server_address[:2]

    @property
    def listener_fd(self) -> int:
        """The listening socket's fd — processes forked after
        :meth:`start` must close their inherited copy
        (:attr:`WorkerConfig.close_fds`), or a coordinator restart on
        the same port finds it still bound by its own workers."""
        assert self._server is not None, "start() first"
        return self._server.fileno()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def stop(self) -> None:
        """Stop serving: close the listener and abort every connection.

        Safe to call at any moment — this is also how the chaos harness
        models a coordinator crash.  Unresolved points stay unresolved;
        a new coordinator over the same journal resumes them.
        """
        self._stop.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        with self._lock:
            socks = [s for conns in self._connections.values()
                     for s in conns]
        for sock in socks:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)

    def drain(self, timeout: float = 2.0) -> None:
        """Give connected workers a moment to observe ``done`` and leave."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not any(self._connections.values()):
                    return
            time.sleep(0.05)

    # ------------------------------------------------------------ connection
    def _register(self, worker: str, sock) -> None:
        with self._lock:
            self._connections.setdefault(worker, set()).add(sock)
            self._last_remote = time.monotonic()

    def _unregister(self, worker: str, sock) -> None:
        with self._lock:
            conns = self._connections.get(worker)
            if conns is not None:
                conns.discard(sock)
                if not conns:
                    del self._connections[worker]

    def touch_remote(self) -> None:
        with self._lock:
            self._last_remote = time.monotonic()

    def live_workers(self) -> int:
        with self._lock:
            return sum(1 for conns in self._connections.values() if conns)

    def drop_connections(self, count: int = 1, rng=None) -> int:
        """Hard-close ``count`` live worker connections (chaos partition).

        The worker sees a dead socket mid-session and reconnects with
        backoff; any lease it held expires and requeues.  Returns how
        many connections were actually dropped.
        """
        with self._lock:
            socks = [s for conns in self._connections.values()
                     for s in conns]
        if rng is not None:
            rng.shuffle(socks)
        dropped = 0
        for sock in socks[:count]:
            try:
                sock.shutdown(socket.SHUT_RDWR)
                dropped += 1
            except OSError:
                pass
        if dropped:
            self.events.note("connections_dropped", count=dropped)
        return dropped

    # -------------------------------------------------------------- protocol
    def dispatch(self, worker: str, msg: dict,
                 body: bytes) -> tuple[Optional[dict], bytes]:
        """Handle one authenticated request; returns (reply, reply body)."""
        kind = msg.get("type")
        if kind == "lease":
            return self._handle_lease(worker), b""
        if kind == "heartbeat":
            return self._handle_heartbeat(msg), b""
        if kind == "result":
            return self._handle_result(worker, msg, body), b""
        if kind == "blob_get":
            return self._handle_blob_get(msg)
        if kind == "blob_put":
            return self._handle_blob_put(msg, body), b""
        if kind == "bye":
            return None, b""
        return {"type": "error", "fatal": True,
                "reason": f"unknown message type {kind!r}"}, b""

    def _handle_lease(self, worker: str) -> dict:
        with self._lock:
            self._expire_leases()
            if self._queue:
                index, attempt = self._queue.popleft()
                self._lease_seq += 1
                lease_id = f"L{self._lease_seq}-{index}.{attempt}"
                self._leases[lease_id] = _Lease(
                    index=index, attempt=attempt, worker=worker,
                    deadline=time.monotonic() + self.config.lease_deadline)
                self.events.incr("leases_granted")
                return {"type": "point", "lease": lease_id, "index": index,
                        "deadline": self.config.lease_deadline,
                        "point": protocol.point_to_dict(self.points[index])}
            if self._unresolved:
                return {"type": "idle", "delay": IDLE_DELAY}
            return {"type": "done"}

    def _handle_heartbeat(self, msg: dict) -> dict:
        with self._lock:
            lease = self._leases.get(msg.get("lease"))
            if lease is None:
                # expired (and maybe already re-leased): tell the worker
                # its execution is moot so it can abandon the point
                return {"type": "ok", "known": False}
            lease.deadline = time.monotonic() + self.config.lease_deadline
            self.events.incr("heartbeats")
            return {"type": "ok", "known": True}

    def _handle_result(self, worker: str, msg: dict, body: bytes) -> dict:
        from repro.harness.parallel import PointResult, _bound_error
        from repro.pipeline.stats import stats_from_dict

        with self._lock:
            lease = self._leases.get(msg.get("lease"))
            if lease is None:
                # lease expired: the point was (or will be) re-leased and
                # re-run to the identical result — discard, don't commit
                self.events.note("stale_uploads", worker=worker)
                return {"type": "error", "fatal": False, "stale": True,
                        "reason": "unknown or expired lease"}
            index = lease.index
            if msg.get("index") != index:
                del self._leases[msg["lease"]]
                self.events.note("uploads_rejected", worker=worker,
                                 reason="index mismatch")
                self._requeue(index, lease.attempt,
                              "result upload named the wrong point index")
                return {"type": "error", "fatal": False,
                        "reason": "index does not match the lease"}
            error = msg.get("error")
            if error is not None:
                # the worker ran the point and it failed in simulation:
                # consume the lease, retry or report like any crash
                del self._leases[msg["lease"]]
                self.events.note("point_failures", worker=worker)
                self._requeue(index, lease.attempt, _bound_error(str(error)))
                return {"type": "ok"}
            try:
                verify_digest(body, msg.get("digest", ""))
                stats = stats_from_dict(json.loads(body.decode("utf-8")))
            except (CasError, Exception) as exc:
                # verified-then-committed: a truncated or bit-flipped
                # upload is rejected and the lease stays live (with a
                # fresh deadline) so the worker can re-upload
                lease.deadline = time.monotonic() \
                    + self.config.lease_deadline
                self.events.note(
                    "uploads_rejected", worker=worker,
                    reason=f"{type(exc).__name__}: {exc}"[:200])
                return {"type": "error", "fatal": False,
                        "reason": f"upload rejected: "
                                  f"{type(exc).__name__}: {exc}"[:400]}
            del self._leases[msg["lease"]]
            self.events.incr("uploads_committed")
            self._resolve(index, PointResult(
                self.points[index], stats=stats, attempts=lease.attempt))
            return {"type": "ok"}

    def _handle_blob_get(self, msg: dict) -> tuple[dict, bytes]:
        try:
            blob = self.store.get(str(msg.get("kind")), str(msg.get("key")))
        except CasError as exc:
            return {"type": "error", "fatal": False,
                    "reason": str(exc)}, b""
        if blob is None:
            return {"type": "blob", "found": False, "digest": ""}, b""
        self.events.incr("blobs_served")
        return {"type": "blob", "found": True,
                "digest": blob_digest(blob)}, blob

    def _handle_blob_put(self, msg: dict, body: bytes) -> dict:
        try:
            self.store.put(str(msg.get("kind")), str(msg.get("key")),
                           body, digest=str(msg.get("digest", "")))
        except CasError as exc:
            self.events.note("blobs_rejected", reason=str(exc)[:200])
            return {"type": "error", "fatal": False, "reason": str(exc)}
        self.events.incr("blobs_received")
        return {"type": "ok"}

    # ----------------------------------------------------------- lease state
    def _expire_leases(self) -> None:
        """Requeue every lease past its deadline (caller holds the lock)."""
        now = time.monotonic()
        for lease_id in [lid for lid, lease in self._leases.items()
                         if now >= lease.deadline]:
            lease = self._leases.pop(lease_id)
            self.events.note("leases_expired", worker=lease.worker,
                             index=lease.index, attempt=lease.attempt)
            self._requeue(
                lease.index, lease.attempt,
                f"lease expired after {self.config.lease_deadline}s "
                f"without a heartbeat (worker {lease.worker})")

    def _requeue(self, index: int, attempt: int, error: str) -> None:
        from repro.harness.parallel import PointResult, _bound_error

        if attempt > self.retries:
            self._resolve(index, PointResult(
                self.points[index], error=_bound_error(error),
                attempts=attempt))
            return
        self.events.incr("requeues")
        self._queue.append((index, attempt + 1))

    def _resolve(self, index: int, result) -> None:
        if index not in self._unresolved:
            return  # stale duplicate; first resolution won
        self._unresolved.discard(index)
        self._finish(index, result)

    # ------------------------------------------------------------- execution
    def _local_should_run(self) -> bool:
        """Degrade to local execution only after ``local_fallback_after``
        seconds of total remote silence — whether the fleet died or never
        showed up.  Any remote message (a lease ask, a heartbeat, an
        upload) resets the window, so a live fleet keeps the work."""
        if not self.config.local:
            return False
        if self.config.local_fallback_after <= 0:
            return True
        with self._lock:
            stalled = time.monotonic() - self._last_remote
        return stalled > self.config.local_fallback_after

    def run(self, stop: Optional[threading.Event] = None) -> bool:
        """Block until every point resolves (or ``stop``/:meth:`stop`).

        The graceful-degrade loop: while remote workers are alive and
        active the coordinator only expires leases; once they all die
        (or go silent past ``local_fallback_after``) it executes pending
        points itself — through the same bounded-error, wall-clock-
        watchdogged serial runner as a degraded local sweep.  Returns
        True when everything resolved.
        """
        from repro.harness.parallel import (PointResult, _worker_with_timeout,
                                            stats_from_dict)

        while True:
            with self._lock:
                if not self._unresolved:
                    return True
                self._expire_leases()
                task = None
                if self._queue and self._local_should_run():
                    task = self._queue.popleft()
            if self._stop.is_set() or (stop is not None and stop.is_set()):
                if task is not None:
                    with self._lock:
                        self._queue.appendleft(task)
                return False
            if task is None:
                time.sleep(0.05)
                continue
            index, attempt = task
            self.events.incr("local_points")
            _, stats_dict, error = _worker_with_timeout(
                (index, self.points[index]), self.timeout)
            with self._lock:
                if error is not None:
                    self._requeue(index, attempt, error)
                else:
                    self._resolve(index, PointResult(
                        self.points[index],
                        stats=stats_from_dict(stats_dict),
                        attempts=attempt))


def fleet_execute(
    points: list,
    pending: list[int],
    finish: Callable[[int, object], None],
    config: FleetConfig,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    store: Optional[ContentStore] = None,
    events: Optional[FleetEvents] = None,
    stop: Optional[threading.Event] = None,
    on_bound: Optional[Callable[[tuple], None]] = None,
) -> FleetCoordinator:
    """Serve ``pending`` points over TCP until resolved; returns the
    coordinator (stopped) for event introspection.

    The :func:`~repro.harness.parallel.run_points` backend for
    ``remote=...``: ``finish`` is the engine's usual commit callback, so
    journal/cache writes and progress reporting behave identically to
    every other execution mode.  ``on_bound`` fires with the (host,
    port) actually bound — useful with an ephemeral port.  ``stop`` lets
    a caller (the chaos harness) abort mid-sweep, modelling a
    coordinator crash; unresolved points stay unresolved.
    """
    coordinator = FleetCoordinator(points, pending, finish, config,
                                   timeout=timeout, retries=retries,
                                   store=store, events=events)
    coordinator.start()
    if on_bound is not None:
        on_bound(coordinator.address)
    try:
        completed = coordinator.run(stop=stop)
        if completed:
            coordinator.drain()
    finally:
        coordinator.stop()
    return coordinator
