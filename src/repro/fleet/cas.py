"""Content-addressed store bridge between the fleet and the on-disk caches.

The fleet does not invent a new storage format: blobs are addressed by
the *existing* cache keys — :func:`repro.harness.cache.trace_key` for
pregenerated ``.rtc`` trace blobs and :func:`repro.harness.cache.point_key`
for result snapshots — both of which already fold in a code fingerprint,
so a mixed-version fleet self-invalidates (a stale worker's keys simply
never match) instead of cross-polluting caches.

Every transfer is digest-verified end to end:

* the sender computes ``sha256(body)`` and ships it in the frame header;
* the receiver recomputes it over the received bytes and **rejects** on
  mismatch — a truncated or bit-flipped upload is refused, never cached;
* blobs are additionally *semantically* validated before commit (a trace
  blob must pass the codec's own header+CRC check, a result blob must
  round-trip through ``stats_from_dict``), so even a correctly-delivered
  garbage blob cannot enter a cache;
* commits go through the caches' atomic temp-file + fsync + rename
  writes, so a crash mid-commit leaves the previous state, not a torn
  entry.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

#: blob namespaces the store serves
KINDS = ("trace", "result")


class CasError(RuntimeError):
    """A blob failed digest or semantic validation; nothing was stored."""


def blob_digest(body: bytes) -> str:
    """The content address of a blob: hex SHA-256 of its bytes."""
    return hashlib.sha256(body).hexdigest()


def verify_digest(body: bytes, claimed: str) -> None:
    """Raise :class:`CasError` unless ``body`` hashes to ``claimed``."""
    actual = blob_digest(body)
    if actual != claimed:
        raise CasError(f"digest mismatch: body hashes to {actual[:16]}…, "
                       f"header claims {str(claimed)[:16]}…")


class ContentStore:
    """(kind, key) ↔ validated blob bytes, backed by the existing caches.

    ``trace`` blobs live in a :class:`~repro.harness.cache.TraceCache`
    (binary ``.rtc`` entries only — the JSON-lines interchange format is
    not served over the wire); ``result`` blobs live in a
    :class:`~repro.harness.cache.ResultCache` as the exact stored JSON
    bytes.  Both sides of a fleet hold one of these over their local
    cache directories; the coordinator's store is what ``blob_get`` /
    ``blob_put`` frames talk to.
    """

    def __init__(self, result_cache=None, trace_cache=None) -> None:
        from repro.harness.cache import ResultCache, TraceCache

        self.result_cache = result_cache if result_cache is not None \
            else ResultCache()
        self.trace_cache = trace_cache if trace_cache is not None \
            else TraceCache()
        self.served = 0
        self.committed = 0
        self.rejected = 0

    # ------------------------------------------------------------------ read
    def get(self, kind: str, key: str) -> Optional[bytes]:
        """The blob for (kind, key), or ``None`` on a miss.

        Reads are validated by the underlying caches (codec header+CRC
        for traces, JSON+schema for results), so a corrupt on-disk entry
        reads as a miss here too — it is never shipped to a peer.
        """
        if kind == "trace":
            blob = self.trace_cache.get_blob(key)
        elif kind == "result":
            blob = self.result_cache.get_bytes(key)
        else:
            raise CasError(f"unknown blob kind {kind!r}")
        if blob is not None:
            self.served += 1
        return blob

    # ----------------------------------------------------------------- write
    def put(self, kind: str, key: str, body: bytes,
            digest: Optional[str] = None) -> str:
        """Validate and atomically commit a blob; returns its digest.

        Raises :class:`CasError` (and stores nothing) when the digest
        does not match or the blob fails its format's own validation —
        the verified-then-committed rule that keeps a truncated or
        corrupted transfer out of the cache.
        """
        try:
            if digest is not None:
                verify_digest(body, digest)
            if kind == "trace":
                self._put_trace(key, body)
            elif kind == "result":
                self._put_result(key, body)
            else:
                raise CasError(f"unknown blob kind {kind!r}")
        except CasError:
            self.rejected += 1
            raise
        self.committed += 1
        return digest if digest is not None else blob_digest(body)

    def _put_trace(self, key: str, body: bytes) -> None:
        from repro.workloads.trace_codec import TraceCodecError, validate_blob

        try:
            validate_blob(body)  # magic/version/schema + payload crc32
        except (TraceCodecError, ValueError) as exc:
            raise CasError(f"trace blob failed codec validation: {exc}") \
                from None
        self.trace_cache.put_blob(key, body)

    def _put_result(self, key: str, body: bytes) -> None:
        from repro.pipeline.stats import stats_from_dict

        try:
            raw = json.loads(body.decode("utf-8"))
            stats_from_dict(raw)  # schema validation, result discarded
        except Exception as exc:
            raise CasError(f"result blob failed stats validation: "
                           f"{type(exc).__name__}: {exc}") from None
        self.result_cache.put_bytes(key, body)
