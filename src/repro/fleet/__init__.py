"""Distributed sweep fleet: TCP coordinator, remote workers, chaos harness.

Extends the self-healing local sweep fleet (``repro.harness.parallel``)
across hosts.  A coordinator owns the journal-backed point queue and a
content-addressed blob store over the existing result/trace caches;
remote workers lease points under heartbeat deadlines and upload
digest-verified results.  Because every point is a pure function of its
spec (and every cache key folds in a code fingerprint), the fleet can
lose workers, connections, uploads or even the coordinator itself and
still finish bit-identical to a serial run — which is exactly what the
chaos harness (:mod:`repro.fleet.chaos`) asserts under seeded fault
injection.
"""

from repro.fleet.cas import CasError, ContentStore, blob_digest, verify_digest
from repro.fleet.chaos import (ChaosConfig, ChaosRecord, ChaosSpec,
                               run_campaign)
from repro.fleet.coordinator import (FleetConfig, FleetCoordinator,
                                     FleetEvents, fleet_execute,
                                     resolve_fleet_config)
from repro.fleet.protocol import (MAGIC, MAX_FRAME, PROTOCOL_VERSION,
                                  ConnectionClosed, ProtocolError,
                                  point_from_dict, point_to_dict,
                                  recv_message, request, send_message)
from repro.fleet.worker import FleetWorker, WorkerConfig, worker_main

__all__ = [
    "ChaosConfig",
    "ChaosRecord",
    "ChaosSpec",
    "run_campaign",
    "CasError",
    "ContentStore",
    "blob_digest",
    "verify_digest",
    "FleetConfig",
    "FleetCoordinator",
    "FleetEvents",
    "fleet_execute",
    "resolve_fleet_config",
    "MAGIC",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ConnectionClosed",
    "ProtocolError",
    "point_from_dict",
    "point_to_dict",
    "recv_message",
    "request",
    "send_message",
    "FleetWorker",
    "WorkerConfig",
    "worker_main",
]
