"""Length-prefixed, CRC-framed message protocol for the sweep fleet.

One frame carries one message: a small JSON *header* (the control part:
message type, keys, lease ids, digests) plus an optional binary *body*
(trace blobs, result snapshots).  The layout, little-endian::

    magic "RFLT" | header_len u32 | body_len u64 | crc32 u32 | header | body

The crc32 covers header+body, so a bit flip anywhere in a frame — or a
truncated send from a dying peer — is a loud :class:`ProtocolError` at
the receiver, never a silently wrong message.  A clean EOF *between*
frames raises :class:`ConnectionClosed` (the normal way a session ends);
EOF *inside* a frame is corruption and raises :class:`ProtocolError`.

Every transfer of cache content additionally carries a SHA-256 digest of
the body in the header (see :mod:`repro.fleet.cas`), so even a frame
that passes the CRC cannot commit wrong bytes into a cache: the framing
check catches transport damage, the digest check catches anything that
went wrong before framing (a chaos-mangled upload, a buggy peer).

Messages are deliberately few — the fleet is a work queue, not an RPC
system:

=============  =============================================================
``hello``      worker → coordinator: protocol version + code fingerprint
``welcome``    coordinator → worker: accepted (echoes its fingerprint)
``lease``      worker asks for a point
``point``      a leased point: index, spec, lease id, deadline seconds
``idle``       nothing to lease right now; retry after ``delay``
``done``       every point resolved; the worker should exit
``heartbeat``  worker → coordinator: extend the lease deadline
``result``     point outcome upload: stats JSON body + digest, or error
``blob_get``   content-addressed cache read: (kind, key)
``blob_put``   content-addressed cache write: (kind, key, digest) + body
``blob``       ``blob_get`` reply: found flag, digest, body
``ok``         generic acknowledgement
``error``      rejection; ``fatal`` means the session must end
``bye``        worker → coordinator: clean disconnect
=============  =============================================================
"""

from __future__ import annotations

import dataclasses
import json
import socket
import struct
import zlib

MAGIC = b"RFLT"
PROTOCOL_VERSION = 1

#: refuse frames larger than this (a corrupt length prefix must not make
#: the receiver try to allocate gigabytes)
MAX_FRAME = 256 << 20

_HEADER = struct.Struct("<4sIQI")


class ProtocolError(RuntimeError):
    """Malformed, corrupt or oversized frame; the connection is dead."""


class ConnectionClosed(ProtocolError):
    """Peer closed the connection cleanly at a frame boundary."""


def send_message(sock: socket.socket, msg: dict, body: bytes = b"") -> None:
    """Serialize and send one frame (header JSON + optional body)."""
    header = json.dumps(msg, sort_keys=True).encode("utf-8")
    crc = zlib.crc32(header + body) & 0xFFFFFFFF
    sock.sendall(_HEADER.pack(MAGIC, len(header), len(body), crc)
                 + header + body)


def _recv_exact(sock: socket.socket, size: int,
                at_boundary: bool = False) -> bytes:
    """Read exactly ``size`` bytes.  EOF at byte 0 of a frame boundary is
    a clean close; EOF anywhere else is a truncated frame."""
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_boundary and remaining == size:
                raise ConnectionClosed("peer closed the connection")
            raise ProtocolError(
                f"truncated frame: peer closed with {remaining} of "
                f"{size} byte(s) outstanding")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket,
                 max_frame: int = MAX_FRAME) -> tuple[dict, bytes]:
    """Receive one frame; returns ``(header dict, body bytes)``.

    Raises :class:`ProtocolError` on a bad magic, an oversized length, a
    CRC mismatch, a truncated frame or an unparseable header — all of
    which mean the stream can no longer be trusted and the connection
    must be dropped.
    """
    prefix = _recv_exact(sock, _HEADER.size, at_boundary=True)
    magic, header_len, body_len, crc = _HEADER.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if header_len + body_len > max_frame:
        raise ProtocolError(
            f"frame of {header_len + body_len} bytes exceeds the "
            f"{max_frame}-byte limit")
    header = _recv_exact(sock, header_len)
    body = _recv_exact(sock, body_len) if body_len else b""
    if zlib.crc32(header + body) & 0xFFFFFFFF != crc:
        raise ProtocolError("frame CRC mismatch (corrupt or torn frame)")
    try:
        msg = json.loads(header.decode("utf-8"))
        if not isinstance(msg, dict) or "type" not in msg:
            raise ValueError("header must be an object with a 'type'")
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from None
    return msg, body


def request(sock: socket.socket, msg: dict, body: bytes = b"",
            max_frame: int = MAX_FRAME) -> tuple[dict, bytes]:
    """Send one message and wait for its reply (the client-side idiom)."""
    send_message(sock, msg, body)
    return recv_message(sock, max_frame)


# --------------------------------------------------------- point transport
def point_to_dict(point) -> dict:
    """JSON-able snapshot of a :class:`~repro.harness.parallel.SweepPoint`."""
    return {
        "profile": dataclasses.asdict(point.profile),
        "scheme": point.scheme,
        "size": point.size,
        "insts": point.insts,
        "seed": point.seed,
        "sampling": point.sampling,
        "port_scheme": point.port_scheme,
    }


def point_from_dict(raw: dict):
    """Rebuild a :class:`~repro.harness.parallel.SweepPoint`.

    The profile is matched back to the canonical ``BENCHMARKS`` instance
    when the field values agree (so identity-based memo keys stay warm);
    an unknown or diverged profile is reconstructed field by field —
    JSON stringifies the ``consumer_dist`` int keys, which must be
    converted back before the dataclass round-trips.
    """
    from repro.harness.parallel import SweepPoint
    from repro.workloads.profiles import BENCHMARKS, WorkloadProfile

    profile_raw = dict(raw["profile"])
    profile_raw["consumer_dist"] = {
        int(k): v for k, v in profile_raw["consumer_dist"].items()}
    canonical = BENCHMARKS.get(profile_raw["name"])
    if canonical is not None \
            and dataclasses.asdict(canonical) == profile_raw:
        profile = canonical
    else:
        profile = WorkloadProfile(**profile_raw)
    return SweepPoint(
        profile=profile,
        scheme=raw["scheme"],
        size=raw["size"],
        insts=raw["insts"],
        seed=raw["seed"],
        sampling=raw.get("sampling"),
        port_scheme=raw.get("port_scheme", "none"),
    )
