"""Instruction fetch engine.

Pulls the dynamic instruction stream from an :class:`InstSource` into the
fetch queue, modelling I-cache latency, branch-prediction outcomes and the
misprediction stall/redirect penalty.  After a precise exception the
processor re-injects squashed instructions through :meth:`FetchUnit.inject_replay`,
which are refetched in order ahead of new instructions from the source.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Optional, Protocol

from repro.frontend.branch_predictor import BranchUnit
from repro.isa.dyninst import DynInst


class InstSource(Protocol):
    """Anything that produces the dynamic instruction stream in order."""

    def next_inst(self) -> Optional[DynInst]:
        """Return the next instruction, or None at end of stream."""
        ...


class IterSource:
    """Adapts a plain iterator/generator of DynInst to :class:`InstSource`."""

    def __init__(self, iterator: Iterable[DynInst]) -> None:
        self._iter: Iterator[DynInst] = iter(iterator)

    def next_inst(self) -> Optional[DynInst]:
        return next(self._iter, None)


class FetchUnit:
    """Correct-path fetch with I-cache and branch-misprediction stalls."""

    def __init__(
        self,
        source: InstSource,
        branch_unit: BranchUnit,
        icache,
        fetch_width: int = 3,
        queue_size: int = 32,
        mispredict_penalty: int = 15,
        line_bytes: int = 64,
        inst_bytes: int = 4,
        wrong_path=None,
    ) -> None:
        self.source = source
        self.branch_unit = branch_unit
        self.icache = icache
        self.fetch_width = fetch_width
        self.queue_size = queue_size
        self.mispredict_penalty = mispredict_penalty
        self.line_bytes = line_bytes
        self.inst_bytes = inst_bytes
        #: WrongPathGenerator, or None for the stall-on-mispredict model
        self.wrong_path = wrong_path
        self._wrong_branch: Optional[DynInst] = None
        self._wrong_pc = 0

        self.queue: deque[DynInst] = deque()
        self.replay: deque[DynInst] = deque()
        self._pending: Optional[DynInst] = None
        self._eof = False
        self._stall_until = 0  # I-cache stall
        self._resume_at: Optional[int] = None  # misprediction stall (None = not stalled)
        self._waiting_branch_seq: Optional[int] = None
        self._last_line: Optional[int] = None
        self.fetched = 0
        self.icache_stall_cycles = 0

    # ------------------------------------------------------------------ state
    @property
    def eof(self) -> bool:
        """True when the source is exhausted and all queues are drained."""
        return (
            self._eof
            and self._pending is None
            and not self.queue
            and not self.replay
        )

    def _next_raw(self) -> Optional[DynInst]:
        if self._wrong_branch is not None:
            dyn = self.wrong_path.next_inst(self._wrong_pc)
            self._wrong_pc += 1
            return dyn
        if self.replay:
            return self.replay.popleft()
        if self._eof:
            return None
        dyn = self.source.next_inst()
        if dyn is None:
            self._eof = True
        return dyn

    # ------------------------------------------------------------- operations
    def tick(self, cycle: int) -> None:
        """Fetch up to ``fetch_width`` instructions into the queue."""
        if self._waiting_branch_seq is not None:
            return  # stalled: mispredicted branch not resolved yet
        if self._resume_at is not None:
            if cycle < self._resume_at:
                return  # redirect penalty still draining
            self._resume_at = None
        if cycle < self._stall_until:
            self.icache_stall_cycles += 1
            return

        for _ in range(self.fetch_width):
            if len(self.queue) >= self.queue_size:
                return
            dyn = self._pending if self._pending is not None else self._next_raw()
            self._pending = None
            if dyn is None:
                return

            # I-cache: charge latency when crossing into a new line
            addr = dyn.pc * self.inst_bytes
            line = addr // self.line_bytes
            if line != self._last_line:
                latency = self.icache.access(addr, False, cycle) if self.icache else 1
                self._last_line = line
                if latency > 1:
                    self._stall_until = cycle + latency - 1
                    self._pending = dyn
                    return

            dyn.fetch_cycle = cycle
            self.queue.append(dyn)
            self.fetched += 1

            if dyn.info.is_branch:
                correct = self.branch_unit.observe(dyn)
                if not correct:
                    dyn.mispredicted = True
                    if self.wrong_path is None or dyn.wrong_path:
                        self._waiting_branch_seq = dyn.seq
                        return  # stall until resolution
                    # speculate down the wrong path until resolution
                    self._wrong_branch = dyn
                    self._wrong_pc = (dyn.pc + 1) if dyn.taken else (
                        dyn.target if dyn.target is not None else dyn.pc + 1)
                    return  # redirect ends the fetch group
                if dyn.taken:
                    return  # taken branch ends the fetch group

    def next_active_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which :meth:`tick` could make progress.

        Returns None when fetch cannot wake on its own — stalled on an
        unresolved branch (an external ``branch_resolved`` call restarts
        it) or the source is exhausted with nothing buffered.  Used by the
        event-driven cycle loop to bound quiet-cycle skips.
        """
        if self._waiting_branch_seq is not None:
            return None
        if (self._eof and self._pending is None and not self.replay
                and self._wrong_branch is None):
            return None
        start = cycle + 1
        if self._resume_at is not None and self._resume_at > start:
            start = self._resume_at
        if self._stall_until > start:
            start = self._stall_until
        return start

    def account_idle(self, first: int, last: int) -> None:
        """Bulk-account the stall bookkeeping :meth:`tick` would have done
        over the skipped quiet cycles ``[first, last]``.

        Mirrors tick()'s early-return order: no counting while waiting on
        a branch; cycles below ``_resume_at`` drain the redirect penalty
        silently; remaining cycles below ``_stall_until`` are I-cache
        stall cycles.
        """
        if self._waiting_branch_seq is not None:
            return
        lo = first
        if self._resume_at is not None and self._resume_at > lo:
            lo = self._resume_at
        hi = min(last + 1, self._stall_until)
        if hi > lo:
            self.icache_stall_cycles += hi - lo

    def branch_resolved(self, dyn: DynInst, cycle: int, extra_recovery: int = 0) -> None:
        """Called at writeback of a branch; resumes fetch if it was the stalling one."""
        if self._waiting_branch_seq == dyn.seq:
            self._waiting_branch_seq = None
            self._resume_at = cycle + self.mispredict_penalty + extra_recovery
        if self._wrong_branch is dyn:
            # discard everything fetched down the wrong path and redirect
            # (rebuilt in place: the processor's hot loop holds a reference
            # to this deque)
            self._wrong_branch = None
            if self._pending is not None and self._pending.wrong_path:
                self._pending = None
            kept = [d for d in self.queue if not d.wrong_path]
            self.queue.clear()
            self.queue.extend(kept)
            self._resume_at = cycle + self.mispredict_penalty + extra_recovery
            self._last_line = None

    def pop(self) -> Optional[DynInst]:
        return self.queue.popleft() if self.queue else None

    def peek(self) -> Optional[DynInst]:
        return self.queue[0] if self.queue else None

    def inject_replay(self, insts: Iterable[DynInst], cycle: int, redirect_penalty: int) -> None:
        """Flush the fetch queue and re-fetch ``insts`` (in order) first.

        Re-fetch order must follow sequence numbers: the newly squashed
        instructions, then an instruction stalled in the pending slot
        (I-cache miss in flight), then any not-yet-refetched instructions
        from an earlier exception.
        """
        self.queue.clear()
        self._wrong_branch = None
        tail: list[DynInst] = []
        if self._pending is not None and not self._pending.wrong_path:
            self._pending.reset_pipeline_state()
            tail.append(self._pending)
        self._pending = None
        tail.extend(self.replay)
        self.replay = deque(insts)
        self.replay.extend(tail)
        self._waiting_branch_seq = None
        self._resume_at = cycle + redirect_penalty
        self._last_line = None
