"""Branch direction/target prediction.

The simulator fetches down the *correct* path (see DESIGN.md): the
predictor's job is to decide, per fetched branch, whether the front end
would have predicted it correctly.  A misprediction stalls fetch until the
branch resolves and then charges the configured redirect penalty, which is
how the misprediction cost manifests in both the baseline and the proposed
renaming scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.dyninst import DynInst


class _SaturatingCounterTable:
    """Table of 2-bit saturating counters (0..3, taken when >= 2)."""

    __slots__ = ("entries", "mask")

    def __init__(self, size: int, init: int = 1) -> None:
        if size & (size - 1):
            raise ValueError("predictor table size must be a power of two")
        self.entries = [init] * size
        self.mask = size - 1

    def counter(self, index: int) -> int:
        return self.entries[index & self.mask]

    def predict(self, index: int) -> bool:
        return self.entries[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        index &= self.mask
        value = self.entries[index]
        if taken:
            self.entries[index] = min(3, value + 1)
        else:
            self.entries[index] = max(0, value - 1)


class BimodalPredictor:
    """PC-indexed 2-bit bimodal predictor."""

    def __init__(self, size: int = 4096) -> None:
        self.table = _SaturatingCounterTable(size)

    def predict(self, pc: int) -> bool:
        return self.table.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(pc, taken)


class GSharePredictor:
    """Global-history XOR-indexed 2-bit predictor."""

    def __init__(self, size: int = 4096, history_bits: int = 12) -> None:
        self.table = _SaturatingCounterTable(size)
        self.history = 0
        self.history_mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return pc ^ self.history

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)
        self.history = ((self.history << 1) | int(taken)) & self.history_mask


class TournamentPredictor:
    """Alpha-21264-style tournament: a chooser selects, per PC, between a
    bimodal (local) and a gshare (global-history) component."""

    def __init__(self, size: int = 4096, history_bits: int = 12) -> None:
        self.bimodal = BimodalPredictor(size)
        self.gshare = GSharePredictor(size, history_bits)
        self.chooser = _SaturatingCounterTable(size, init=2)  # favour gshare

    def predict(self, pc: int) -> bool:
        if self.chooser.predict(pc):
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        bimodal_correct = self.bimodal.predict(pc) == taken
        gshare_correct = self.gshare.predict(pc) == taken
        if bimodal_correct != gshare_correct:
            self.chooser.update(pc, gshare_correct)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)


class BranchTargetBuffer:
    """Direct-mapped BTB with tags; holds predicted targets of taken branches."""

    def __init__(self, entries: int = 2048) -> None:
        if entries & (entries - 1):
            raise ValueError("BTB size must be a power of two")
        self.mask = entries - 1
        self.tags: list[Optional[int]] = [None] * entries
        self.targets: list[int] = [0] * entries

    def lookup(self, pc: int) -> Optional[int]:
        index = pc & self.mask
        if self.tags[index] == pc:
            return self.targets[index]
        return None

    def update(self, pc: int, target: int) -> None:
        index = pc & self.mask
        self.tags[index] = pc
        self.targets[index] = target


class ReturnAddressStack:
    """Fixed-depth return address stack for call/return prediction."""

    def __init__(self, depth: int = 16) -> None:
        self.depth = depth
        self.stack: list[int] = []

    def push(self, addr: int) -> None:
        if len(self.stack) == self.depth:
            self.stack.pop(0)
        self.stack.append(addr)

    def pop(self) -> Optional[int]:
        return self.stack.pop() if self.stack else None


@dataclass
class BranchStats:
    branches: int = 0
    mispredicted: int = 0
    btb_misses: int = 0

    @property
    def accuracy(self) -> float:
        return 1.0 - self.mispredicted / self.branches if self.branches else 1.0


class BranchUnit:
    """Combined direction predictor + BTB + RAS.

    ``observe(dyn)`` is called once per fetched branch; it returns True when
    the front end predicts the branch correctly (direction *and* target) and
    updates all predictor state with the actual outcome.
    """

    def __init__(
        self,
        kind: str = "gshare",
        table_size: int = 4096,
        btb_entries: int = 2048,
        ras_depth: int = 16,
    ) -> None:
        if kind == "gshare":
            self.direction = GSharePredictor(table_size)
        elif kind == "bimodal":
            self.direction = BimodalPredictor(table_size)
        elif kind == "tournament":
            self.direction = TournamentPredictor(table_size)
        else:
            raise ValueError(f"unknown predictor kind {kind!r}")
        self.btb = BranchTargetBuffer(btb_entries)
        self.ras = ReturnAddressStack(ras_depth)
        self.stats = BranchStats()

    def observe(self, dyn: DynInst) -> bool:
        """Predict the fetched branch ``dyn``; returns prediction correctness."""
        return self.observe_packed(dyn.info, dyn.pc, dyn.taken, dyn.next_pc)

    def observe_packed(self, info, pc: int, taken: bool,
                       next_pc: int) -> bool:
        """:meth:`observe` on unpacked fields — the columnar fast-forward
        path trains the predictor straight from packed trace columns, so
        no :class:`DynInst` is required."""
        self.stats.branches += 1
        correct = True

        if info.is_return:
            predicted_target = self.ras.pop()
            correct = predicted_target == next_pc
        elif info.is_cond:
            pred_taken = self.direction.predict(pc)
            self.direction.update(pc, taken)
            if pred_taken != taken:
                correct = False
            elif taken:
                correct = self._check_target(pc, next_pc)
        else:  # unconditional jump / call
            correct = self._check_target(pc, next_pc)

        if info.is_call:
            self.ras.push(pc + 1)
        if not correct:
            self.stats.mispredicted += 1
        return correct

    def _check_target(self, pc: int, next_pc: int) -> bool:
        target = self.btb.lookup(pc)
        hit = target == next_pc
        if target is None:
            self.stats.btb_misses += 1
        self.btb.update(pc, next_pc)
        return hit
