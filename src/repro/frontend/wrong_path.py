"""Wrong-path instruction synthesis.

When ``MachineConfig.model_wrong_path`` is set, a mispredicted branch no
longer stalls fetch: the front end keeps fetching down the *wrong* path
until the branch resolves, and the fetched instructions are renamed,
issued and executed speculatively — consuming physical registers, issue
slots and cache bandwidth, overwriting shared registers — and are then
squashed by a walk-back that restores the rename map and rolls reused
registers back to their shadow-cell copies (the paper's Section IV-B
branch-misprediction case).

Since neither the functional executor nor the trace generator knows the
program's actual wrong-path code, the wrong path is synthesised: a
plausible mix of ALU operations and loads over the architectural
registers.  Wrong-path instructions are flagged (``DynInst.wrong_path``)
so the pipeline skips operand verification for them (their input values
are meaningless by construction) and asserts they never commit.
"""

from __future__ import annotations

import random

from repro.isa.dyninst import DynInst
from repro.isa.opcodes import Op
from repro.isa.registers import xreg

_OPS = (Op.ADD, Op.XOR, Op.SUB, Op.AND, Op.OR)


class WrongPathGenerator:
    """Synthesises the instructions beyond a mispredicted branch."""

    def __init__(self, seed: int = 0xBAD, load_frac: float = 0.2,
                 working_set: int = 8 << 20) -> None:
        self.rng = random.Random(seed)
        self.load_frac = load_frac
        self.working_set = working_set
        self._seq = 0
        self.generated = 0

    def next_inst(self, pc: int) -> DynInst:
        """One wrong-path instruction at ``pc`` (sequence numbers are
        negative: they never mix with architectural ones)."""
        self._seq -= 1
        self.generated += 1
        rng = self.rng
        if rng.random() < self.load_frac:
            dyn = DynInst(
                seq=self._seq,
                pc=pc,
                op=Op.LD,
                dest=xreg(rng.randint(1, 30)),
                srcs=(xreg(rng.randint(1, 30)),),
                imm=0,
                wrong_path=True,
            )
            dyn.mem_addr = rng.randrange(0, self.working_set, 8)
        else:
            dyn = DynInst(
                seq=self._seq,
                pc=pc,
                op=rng.choice(_OPS),
                dest=xreg(rng.randint(1, 30)),
                srcs=(xreg(rng.randint(1, 30)), xreg(rng.randint(1, 30))),
                wrong_path=True,
            )
        dyn.result = 0  # meaningless token; never observed by correct path
        dyn.next_pc = pc + 1
        return dyn
