"""Front-end substrate: branch prediction and instruction fetch."""

from repro.frontend.branch_predictor import (
    BimodalPredictor,
    GSharePredictor,
    TournamentPredictor,
    BranchTargetBuffer,
    ReturnAddressStack,
    BranchUnit,
)
from repro.frontend.fetch import FetchUnit, InstSource, IterSource

__all__ = [
    "BimodalPredictor",
    "GSharePredictor",
    "TournamentPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "BranchUnit",
    "FetchUnit",
    "InstSource",
    "IterSource",
]
