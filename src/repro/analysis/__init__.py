"""Dataflow analyses reproducing the paper's motivation study (Figs 1-3)
and the shadow-cell demand study (Fig 9)."""

from repro.analysis.consumers import ConsumerAnalysis, analyze_stream
from repro.analysis.reuse_chains import ReuseChainAnalysis, analyze_chains
from repro.analysis.shadow_demand import ShadowDemand, measure_shadow_demand
from repro.analysis.lifetimes import (
    LifetimeAnalysis,
    ValueLifetime,
    analyze_lifetimes,
)

__all__ = [
    "ConsumerAnalysis",
    "analyze_stream",
    "ReuseChainAnalysis",
    "analyze_chains",
    "ShadowDemand",
    "measure_shadow_demand",
    "LifetimeAnalysis",
    "ValueLifetime",
    "analyze_lifetimes",
]
