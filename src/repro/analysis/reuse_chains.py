"""Idealized reuse-chain analysis (paper Figure 3).

Replays the stream through an *oracle* renamer: an instruction with a
destination register can reuse a source's physical register when it is
that value's only consumer (oracle knowledge of the full stream).  Each
physical register tracks its chain depth; Figure 3 classifies reusing
instructions by the depth they land at (one / two / three / more-than-
three reuses) and lets a reuse-limit be imposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.isa.dyninst import DynInst
from repro.isa.registers import RegRef


@dataclass
class ReuseChainAnalysis:
    dest_insts: int = 0
    #: histogram: chain depth (1, 2, 3, 4=more) -> reusing instruction count
    depth_histogram: dict = field(default_factory=dict)

    def reuse_fraction(self, limit: int | None = None) -> float:
        """Fraction of dest-instructions that avoid an allocation when a
        register may be reused up to ``limit`` times (None = unlimited)."""
        if not self.dest_insts:
            return 0.0
        total = 0
        for depth, count in self.depth_histogram.items():
            if limit is None or depth <= limit:
                total += count
        return total / self.dest_insts

    def depth_fraction(self, depth: int) -> float:
        """Fraction of dest-instructions whose reuse lands at ``depth``
        (depth 4 aggregates 'more than three')."""
        if not self.dest_insts:
            return 0.0
        return self.depth_histogram.get(depth, 0) / self.dest_insts

    def figure3_series(self) -> dict:
        """The four Figure 3 buckets: one/two/three/more reuses."""
        return {
            "one": self.depth_fraction(1),
            "two": self.depth_fraction(2),
            "three": self.depth_fraction(3),
            "more": self.depth_fraction(4),
        }


def analyze_chains(stream: Iterable[DynInst]) -> ReuseChainAnalysis:
    insts = list(stream)

    # oracle pass: total consumer count per produced value (producer seq)
    consumer_count: dict[int, int] = {}
    producer_of: dict[RegRef, int] = {}  # current value's producer seq
    for dyn in insts:
        seen: set[RegRef] = set()
        for src in dyn.srcs:
            if src in seen:
                continue
            seen.add(src)
            producer = producer_of.get(src)
            if producer is not None:
                consumer_count[producer] = consumer_count.get(producer, 0) + 1
        if dyn.dest is not None:
            producer_of[dyn.dest] = dyn.seq

    # reuse pass: track chain depth of the register backing each value
    result = ReuseChainAnalysis()
    producer_of.clear()
    chain_depth: dict[int, int] = {}  # producer seq -> depth of its register
    consumed_so_far: dict[int, int] = {}
    for dyn in insts:
        reuse_from = None
        seen = set()
        for src in dyn.srcs:
            if src in seen:
                continue
            seen.add(src)
            producer = producer_of.get(src)
            if producer is None:
                continue
            consumed_so_far[producer] = consumed_so_far.get(producer, 0) + 1
            if (
                dyn.dest is not None
                and src.cls is dyn.dest.cls
                and consumer_count.get(producer) == 1
                and reuse_from is None
            ):
                reuse_from = producer
        if dyn.dest is None:
            continue
        result.dest_insts += 1
        if reuse_from is not None:
            depth = min(chain_depth.get(reuse_from, 0) + 1, 4)
            result.depth_histogram[depth] = result.depth_histogram.get(depth, 0) + 1
            chain_depth[dyn.seq] = depth if depth < 4 else 4
        else:
            chain_depth[dyn.seq] = 0
        producer_of[dyn.dest] = dyn.seq
    return result
