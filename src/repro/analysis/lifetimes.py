"""Register lifetime analysis (the paper's Section II motivation).

Conventional renaming releases a physical register only when the
redefining instruction commits, so "many cycles may happen between the
last read of the register and its release, leading to suboptimal
utilization".  This analysis quantifies that: from a committed pipeline
trace (``Processor(..., keep_trace=True)``) it reconstructs, for every
produced value,

* ``definition``   — the producer's writeback cycle,
* ``last_read``    — the last consumer's issue cycle,
* ``release``      — the redefiner's commit cycle (conventional release
  point),

and reports the *dead interval* (release − last_read): register-file
occupancy that the paper's scheme reclaims by reusing the register at the
consumer's rename.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.isa.dyninst import DynInst


@dataclass
class ValueLifetime:
    producer_seq: int
    allocated: int  # rename cycle of the producer
    defined: int  # writeback cycle
    last_read: Optional[int]  # issue cycle of the last consumer (None: unread)
    released: Optional[int]  # commit cycle of the redefiner (None: never)

    @property
    def dead_interval(self) -> Optional[int]:
        """Cycles the register stays allocated after its last read."""
        if self.released is None:
            return None
        anchor = self.last_read if self.last_read is not None else self.defined
        return max(0, self.released - anchor)

    @property
    def live_interval(self) -> Optional[int]:
        if self.released is None:
            return None
        return max(0, self.released - self.allocated)


@dataclass
class LifetimeAnalysis:
    lifetimes: list = field(default_factory=list)

    @property
    def mean_dead_interval(self) -> float:
        values = [lt.dead_interval for lt in self.lifetimes
                  if lt.dead_interval is not None]
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_live_interval(self) -> float:
        values = [lt.live_interval for lt in self.lifetimes
                  if lt.live_interval is not None]
        return sum(values) / len(values) if values else 0.0

    @property
    def dead_fraction(self) -> float:
        """Share of the total allocated register-cycles that are dead."""
        dead = sum(lt.dead_interval for lt in self.lifetimes
                   if lt.dead_interval is not None)
        live = sum(lt.live_interval for lt in self.lifetimes
                   if lt.live_interval is not None)
        return dead / live if live else 0.0

    def percentile_dead(self, fraction: float) -> int:
        values = sorted(lt.dead_interval for lt in self.lifetimes
                        if lt.dead_interval is not None)
        if not values:
            return 0
        return values[min(len(values) - 1, int(fraction * len(values)))]


def analyze_lifetimes(trace: Iterable[DynInst]) -> LifetimeAnalysis:
    """Reconstruct value lifetimes from a committed pipeline trace.

    Works for any renaming scheme; for the sharing scheme, reused
    versions share a physical register, so their "release" reflects the
    reuse point (the dead interval collapses for reused values — which is
    precisely the paper's point).
    """
    result = LifetimeAnalysis()

    # Single in-order pass (commit order == program order).  Physical
    # register tags recycle across lifetimes, so each tag's *current*
    # producer and reads are tracked and the lifetime is closed when the
    # redefining instruction appears.
    open_producer: dict = {}  # tag -> producing DynInst
    open_last_read: dict = {}  # tag -> latest consumer issue cycle

    for dyn in trace:
        if dyn.micro_op:
            continue
        # 1. source reads bind to the currently open lifetimes
        for tag in dyn.src_tags:
            if tag in open_producer and dyn.issue_cycle >= 0:
                previous = open_last_read.get(tag, -1)
                open_last_read[tag] = max(previous, dyn.issue_cycle)

        if dyn.dest is None or dyn.dest_tag is None:
            continue

        # 2. the previous mapping of the destination dies here
        prev = dyn.prev_map
        if prev is not None:
            prev_tag = (dyn.dest_tag[0], prev[0], prev[1]) \
                if len(prev) == 2 else prev
            producer = open_producer.pop(prev_tag, None)
            last_read = open_last_read.pop(prev_tag, None)
            if producer is not None:
                # a reuse is release-on-rename (Section IV-A3): the killed
                # version's storage is handed over at the reuser's rename
                released = (dyn.rename_cycle if dyn.reused_src is not None
                            else dyn.commit_cycle)
                result.lifetimes.append(ValueLifetime(
                    producer_seq=producer.seq,
                    allocated=producer.rename_cycle,
                    defined=producer.complete_cycle,
                    last_read=last_read,
                    released=released,
                ))

        # 3. open this instruction's lifetime
        open_producer[dyn.dest_tag] = dyn
        open_last_read.pop(dyn.dest_tag, None)
    return result
