"""Consumer-count analysis over a dynamic instruction stream.

Reproduces the measurements behind the paper's motivation:

* **Figure 2** — per produced value, the number of consuming instructions
  (one, two, ..., six-or-more);
* **Figure 1** — the percentage of instructions *with a destination
  register* that are the sole consumer of some value, split by whether
  they redefine the consumed logical register (guaranteed last use) or a
  different one (needs the single-use prediction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.isa.dyninst import DynInst
from repro.isa.registers import RegRef


@dataclass
class _ValueRecord:
    producer_seq: int
    #: consumer entries: (consumer_seq, consumer_has_dest, redefines_same_reg)
    consumers: list = field(default_factory=list)


@dataclass
class ConsumerAnalysis:
    """Results of one stream analysis."""

    total_insts: int = 0
    dest_insts: int = 0
    values_produced: int = 0
    #: histogram over consumer counts; key 6 means "six or more", key 0 =
    #: values never consumed inside the analysis window
    consumer_histogram: dict = field(default_factory=dict)
    #: Figure 1 categories (instruction counts)
    single_use_redefine_same: int = 0
    single_use_redefine_other: int = 0

    # ---------------------------------------------------------------- Figure 2
    def consumer_fractions(self, include_unconsumed: bool = False) -> dict:
        """Fractions per consumer-count bucket (Figure 2 series)."""
        histogram = dict(self.consumer_histogram)
        if not include_unconsumed:
            histogram.pop(0, None)
        total = sum(histogram.values())
        if not total:
            return {}
        return {k: v / total for k, v in sorted(histogram.items())}

    @property
    def single_use_value_fraction(self) -> float:
        """Fraction of consumed values with exactly one consumer."""
        fractions = self.consumer_fractions()
        return fractions.get(1, 0.0)

    # ---------------------------------------------------------------- Figure 1
    @property
    def single_consumer_inst_fraction(self) -> float:
        """Fraction of dest-instructions that are sole consumer of a value."""
        if not self.dest_insts:
            return 0.0
        hits = self.single_use_redefine_same + self.single_use_redefine_other
        return hits / self.dest_insts

    @property
    def redefine_same_fraction(self) -> float:
        return self.single_use_redefine_same / self.dest_insts if self.dest_insts else 0.0

    @property
    def redefine_other_fraction(self) -> float:
        return self.single_use_redefine_other / self.dest_insts if self.dest_insts else 0.0


def analyze_stream(stream: Iterable[DynInst]) -> ConsumerAnalysis:
    """Run the consumer analysis over a dynamic instruction stream."""
    result = ConsumerAnalysis()
    live: dict[RegRef, _ValueRecord] = {}
    finished: list[_ValueRecord] = []

    for dyn in stream:
        result.total_insts += 1
        has_dest = dyn.dest is not None
        seen: set[RegRef] = set()
        for src in dyn.srcs:
            if src in seen:
                continue  # one instruction counts once per source value
            seen.add(src)
            record = live.get(src)
            if record is not None:
                record.consumers.append((dyn.seq, has_dest, src == dyn.dest))
        if has_dest:
            result.dest_insts += 1
            old = live.pop(dyn.dest, None)
            if old is not None:
                finished.append(old)
            live[dyn.dest] = _ValueRecord(dyn.seq)
            result.values_produced += 1

    finished.extend(live.values())

    histogram: dict[int, int] = {}
    sole_consumers: dict[int, bool] = {}  # consumer seq -> redefines_same
    for record in finished:
        count = min(len(record.consumers), 6)
        histogram[count] = histogram.get(count, 0) + 1
        if len(record.consumers) == 1:
            consumer_seq, consumer_has_dest, redefines_same = record.consumers[0]
            if consumer_has_dest:
                # an instruction that is sole consumer of several values
                # counts once; the guaranteed (redefine-same) case wins
                previous = sole_consumers.get(consumer_seq, False)
                sole_consumers[consumer_seq] = previous or redefines_same

    result.consumer_histogram = histogram
    for redefines_same in sole_consumers.values():
        if redefines_same:
            result.single_use_redefine_same += 1
        else:
            result.single_use_redefine_other += 1
    return result
