"""Shadow-cell demand study (paper Figure 9).

Runs the sharing scheme with effectively unbounded 3-shadow registers and
samples, every few cycles, how many physical registers currently hold 2,
3 or 4 live versions (i.e. are using at least 1, 2 or 3 shadow cells).
The coverage curves answer Figure 9's question: how many registers with
k shadow cells are needed to cover X% of execution time?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.frontend.fetch import IterSource
from repro.isa.dyninst import DynInst
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import Processor


@dataclass
class ShadowDemand:
    """Sampled shadow-cell usage."""

    #: samples[k] = list of per-sample counts of registers using >= k shadows
    samples: dict = field(default_factory=lambda: {1: [], 2: [], 3: []})

    def registers_needed(self, shadows: int, coverage: float) -> int:
        """Registers with >= ``shadows`` shadow cells covering ``coverage``
        of sampled cycles."""
        data = sorted(self.samples[shadows])
        if not data:
            return 0
        index = min(len(data) - 1, int(coverage * len(data)))
        return data[index]

    def coverage_table(self, coverages=(0.5, 0.75, 0.9, 0.95, 0.99)) -> dict:
        return {
            k: {c: self.registers_needed(k, c) for c in coverages}
            for k in (1, 2, 3)
        }


def measure_shadow_demand(
    workload: Iterable[DynInst],
    total_regs: int = 256,
    sample_interval: int = 64,
    config: Optional[MachineConfig] = None,
) -> ShadowDemand:
    """Run the sharing scheme with ample 3-shadow registers and sample."""
    demand = ShadowDemand()

    def sample(processor: Processor) -> None:
        histogram = processor.renamer.live_version_histogram()
        for k in (1, 2, 3):
            using = sum(count for versions, count in histogram.items()
                        if versions >= k + 1)
            demand.samples[k].append(using)

    cfg = config or MachineConfig()
    cfg = cfg.with_scheme(
        "sharing",
        int_banks=(0, 0, 0, total_regs),
        fp_banks=(0, 0, 0, total_regs),
    )
    processor = Processor(cfg, IterSource(iter(workload)),
                          on_cycle=sample, on_cycle_interval=sample_interval)
    processor.run()
    return demand
