"""Command-line interface.

Usage::

    python -m repro run PROGRAM.s [--scheme sharing] [--int-regs 64] ...
    python -m repro bench NAME [--scheme ...] [--insts 20000] ...
    python -m repro bench [--quick]    # cycle-loop throughput benchmark
    python -m repro bench sweep [--quick] [--jobs 4]  # sweep data plane
    python -m repro bench sample [--quick]  # sampled-simulation throughput
    python -m repro profile sharing:hmmer:10000 [--top 15] [--out p.pstats]
    python -m repro profile sharing:hmmer:20000 --sampled  # phase breakdown
    python -m repro compare NAME [--sizes 48,64,96] [--insts 10000]
    python -m repro figures [fig1 fig2 ... | all]
    python -m repro kernels [--list | NAME]
    python -m repro motivation NAME    # Figures 1-3 stats for one benchmark
    python -m repro verify [--scheme sharing | --all-schemes] [--faults ...]
    python -m repro fuzz [--count 25] [--seed 0] [--out DIR]
    python -m repro fuzz --replay REPRODUCER.json
    python -m repro faults [--injections 200] [--seed 0] [--out REPORT.json]

``run`` executes an assembly file through the timing pipeline; ``bench``
runs one synthetic benchmark profile — or, with no name, the cycle-loop
throughput benchmark behind ``BENCH_cycleloop.json``, or, with the name
``sweep``, the sweep data-plane benchmark behind ``BENCH_sweep.json``
(:mod:`repro.harness.bench_sweep`), or, with the name ``sample``, the
sampled-simulation benchmark behind ``BENCH_sampling.json``
(:mod:`repro.harness.bench_sampling`); ``compare`` sweeps
register-file sizes for baseline vs proposed; ``figures`` regenerates the
paper's tables/figures; ``motivation`` prints the dataflow analysis;
``profile`` wraps one simulation point in cProfile (``run`` and ``verify``
also take ``--profile PATH``).

``verify`` runs every kernel through the pipeline in lockstep with the
in-order golden model (the commit-time differential oracle,
:mod:`repro.verify.oracle`) with invariant checking on; ``fuzz`` runs the
seeded random-program fuzzer (:mod:`repro.verify.fuzz`) across all rename
schemes and shrinks failures to on-disk reproducers.

``compare`` and ``figures`` execute their simulation grids through the
sweep engine: ``--jobs N`` (default: ``REPRO_JOBS`` env, else 1) fans the
points out over N worker processes, and results are served from the
persistent result cache (``REPRO_CACHE_DIR``, default
``~/.cache/repro/sweeps``) unless ``--no-cache`` is given.  The engine is
resilient on demand: ``--timeout`` bounds each point's wall clock (the
straggler's worker is killed and the point requeued), ``--retries``
grants bounded re-execution with exponential backoff, and
``--journal PATH`` / ``--resume`` record completed points crash-safely so
an interrupted sweep picks up where it stopped (docs/RESILIENCE.md).

``faults`` runs the seeded fault-injection campaign
(:mod:`repro.faults`): transient PRF bit flips, PRT metadata corruption,
forced squash storms and interrupt floods, each classified against the
differential oracle as masked / detected / recovered — a nonzero exit
means an injection produced silent data corruption or an unexpected
outcome.

Timing simulations accept ``--sampling PERIOD:WINDOW:WARMUP`` to run
interval-sampled (functional fast-forward between detailed measurement
windows, :mod:`repro.sampling`) instead of cycle-by-cycle; the
``REPRO_SAMPLING`` environment variable sets the same spec globally and
``--exact`` overrides it back to exact simulation.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis import analyze_chains, analyze_stream
from repro.harness.runner import Scale
from repro.isa import assemble
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import simulate
from repro.workloads import ALL_KERNELS as KERNELS
from repro.workloads import BENCHMARKS, SyntheticWorkload


def _machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheme", default="sharing",
                        choices=["conventional", "sharing", "hinted", "early"])
    parser.add_argument("--int-regs", type=int, default=64)
    parser.add_argument("--fp-regs", type=int, default=64)
    parser.add_argument("--counter-bits", type=int, default=2)
    parser.add_argument("--no-verify", action="store_true",
                        help="disable operand verification (faster)")
    parser.add_argument("--detailed", action="store_true",
                        help="print the full statistics report")
    parser.add_argument("--wrong-path", action="store_true",
                        help="model wrong-path speculation")


def _sampling_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--sampling", default=None,
                       metavar="PERIOD:WINDOW:WARMUP",
                       help="interval-sampled simulation: detailed windows "
                            "of WINDOW insts (after WARMUP warm-up insts) "
                            "every PERIOD insts, functional fast-forward "
                            "in between (default: REPRO_SAMPLING env, "
                            "else exact)")
    group.add_argument("--exact", action="store_true",
                       help="force exact cycle-by-cycle simulation, "
                            "overriding REPRO_SAMPLING")


def _resolve_sampling(args) -> str | None:
    """--exact > --sampling > REPRO_SAMPLING env > None (exact)."""
    if getattr(args, "exact", False):
        return None
    spec = getattr(args, "sampling", None)
    if spec is None:
        spec = os.environ.get("REPRO_SAMPLING", "").strip() or None
    if spec is not None:
        from repro.sampling import parse_schedule

        parse_schedule(spec)  # validate before any simulation starts
    return spec


def _sweep_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep "
                             "(default: REPRO_JOBS env, else 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-point wall-clock budget; a straggler's "
                             "worker is killed and the point requeued")
    parser.add_argument("--retries", type=int, default=0,
                        help="re-execution attempts per point after a "
                             "crash, worker death or timeout (default 0)")
    parser.add_argument("--retry-delay", type=float, default=0.25,
                        metavar="SECONDS",
                        help="base backoff between retry attempts "
                             "(exponential with jitter; default 0.25)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="record every completed point in a crash-safe "
                             "journal at PATH; re-running with the same "
                             "journal resumes after an interruption")
    parser.add_argument("--resume", action="store_true",
                        help="shorthand for --journal at the default "
                             "location (REPRO_JOURNAL_DIR, else "
                             "~/.cache/repro/journals/<command>.jsonl)")
    parser.add_argument("--fleet", default=None, metavar="HOST:PORT",
                        help="serve the sweep's pending points to TCP "
                             "fleet workers at HOST:PORT instead of "
                             "running them in local processes (start "
                             "workers with 'repro fleet worker')")


def _config(args) -> MachineConfig:
    return MachineConfig(
        scheme=args.scheme,
        int_regs=args.int_regs,
        fp_regs=args.fp_regs,
        counter_bits=args.counter_bits,
        verify_values=not args.no_verify,
        model_wrong_path=getattr(args, "wrong_path", False),
    )


def _print_stats(stats, detailed: bool = False) -> None:
    # sampled runs: say so up front — every number below is an estimate
    if hasattr(stats, "sampling_report"):
        print(stats.sampling_report())
    if detailed:
        print(stats.detailed_report())
        return
    print(stats.summary())
    renamer = stats.renamer_stats
    if renamer is not None and renamer.dest_insts:
        print(f"register reuse    {renamer.reuses}/{renamer.dest_insts} "
              f"({100 * renamer.reuse_fraction:.1f}%) "
              f"[guaranteed {renamer.reuses_guaranteed}, "
              f"predicted {renamer.reuses_predicted}]")
        if renamer.repairs:
            print(f"repairs           {renamer.repairs} "
                  f"({renamer.repair_uops} micro-ops)")
    if stats.branch_stats is not None and stats.branch_stats.branches:
        print(f"branch accuracy   {100 * stats.branch_stats.accuracy:.1f}%")


def _simulate_program(args, program, budget=10_000_000, max_insts=None,
                      sampling=None, sampling_seed=1):
    """Run a program; the hinted scheme gets lookahead hint annotation."""
    if args.scheme == "hinted":
        from repro.frontend.fetch import IterSource
        from repro.isa.executor import FunctionalExecutor
        from repro.workloads.lookahead import annotate_hints

        executor = FunctionalExecutor(program)
        source = IterSource(annotate_hints(executor.run(budget)))
        return simulate(_config(args), source, max_insts=max_insts,
                        sampling=sampling, sampling_seed=sampling_seed)
    return simulate(_config(args), program, max_insts=max_insts,
                    program_budget=budget, sampling=sampling,
                    sampling_seed=sampling_seed)


def _profiled(args, fn):
    """Run ``fn`` under cProfile when ``--profile PATH`` was given: dump the
    pstats file and print the top-15 functions by cumulative time."""
    if not getattr(args, "profile", None):
        return fn()
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return fn()
    finally:
        profiler.disable()
        profiler.dump_stats(args.profile)
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(15)
        print(f"profile written to {args.profile}", file=sys.stderr)


def cmd_run(args) -> int:
    with open(args.program) as handle:
        program = assemble(handle.read())
    sampling = _resolve_sampling(args)
    stats = _profiled(
        args, lambda: _simulate_program(args, program, max_insts=args.insts,
                                        sampling=sampling))
    _print_stats(stats, args.detailed)
    return 0


def cmd_bench(args) -> int:
    if args.name is None:
        return _cmd_bench_cycleloop(args)
    if args.name == "sweep":
        return _cmd_bench_sweep(args)
    if args.name == "sample":
        return _cmd_bench_sample(args)
    if args.name not in BENCHMARKS:
        print(f"unknown benchmark {args.name!r}; use one of: "
              f"{', '.join(sorted(BENCHMARKS))}", file=sys.stderr)
        return 1
    workload = SyntheticWorkload(BENCHMARKS[args.name],
                                 total_insts=args.insts, seed=args.seed)
    sampling = _resolve_sampling(args)
    stats = simulate(_config(args), iter(workload),
                     max_insts=args.insts if sampling else None,
                     sampling=sampling, sampling_seed=args.seed)
    _print_stats(stats, args.detailed)
    return 0


def _cmd_bench_cycleloop(args) -> int:
    """``repro bench`` with no profile name: the cycle-loop throughput
    benchmark behind BENCH_cycleloop.json (see repro.harness.bench)."""
    import json
    from pathlib import Path

    from repro.harness import bench

    record = bench.load_record()
    current = bench.run_bench(quick=args.quick, seed=args.seed)
    for line in bench.diff_against(record, current):
        print(line)

    if args.quick:
        # quick mode (CI): never touch the committed record; write the
        # artifact elsewhere and enforce the throughput floor
        out = Path(args.out or "bench-quick.json")
        out.write_text(json.dumps({"current": current}, indent=2,
                                  sort_keys=True) + "\n")
        print(f"results written to {out}", file=sys.stderr)
        if not args.no_floor:
            ok, message = bench.check_floor(record, current,
                                            tolerance=args.floor_tolerance)
            print(message)
            sampled_ok, sampled_message = bench.check_sampled_floor(
                current, floor=args.sampled_floor)
            print(sampled_message)
            if not (ok and sampled_ok):
                return 1
        return 0

    out = Path(args.out) if args.out else bench.DEFAULT_PATH
    bench.write_record(current, path=out)
    print(f"results written to {out}", file=sys.stderr)
    return 0


def _cmd_bench_sweep(args) -> int:
    """``repro bench sweep``: the sweep data-plane benchmark behind
    BENCH_sweep.json (see repro.harness.bench_sweep)."""
    import json
    from pathlib import Path

    from repro.harness import bench_sweep

    record = bench_sweep.load_record()
    current = bench_sweep.run_bench(quick=args.quick, jobs=args.jobs,
                                    seed=args.seed)
    for line in bench_sweep.diff_against(record, current):
        print(line)

    if args.quick:
        # quick mode (CI): never touch the committed record; write the
        # artifact elsewhere and enforce the data-plane floors
        out = Path(args.out or "bench-sweep.json")
        out.write_text(json.dumps({"current": current}, indent=2,
                                  sort_keys=True) + "\n")
        print(f"results written to {out}", file=sys.stderr)
        if not args.no_floor:
            decode_ok, decode_message = bench_sweep.check_decode_floor(
                current, floor=args.decode_floor)
            print(decode_message)
            sweep_ok, sweep_message = bench_sweep.check_sweep_floor(
                current, floor=args.sweep_floor)
            print(sweep_message)
            if not (decode_ok and sweep_ok):
                return 1
        return 0

    out = Path(args.out) if args.out else bench_sweep.DEFAULT_PATH
    bench_sweep.write_record(current, path=out)
    print(f"results written to {out}", file=sys.stderr)
    return 0


def _cmd_bench_sample(args) -> int:
    """``repro bench sample``: the sampled-simulation benchmark behind
    BENCH_sampling.json (see repro.harness.bench_sampling)."""
    import json
    from pathlib import Path

    from repro.harness import bench_sampling

    record = bench_sampling.load_record()
    current = bench_sampling.run_bench(quick=args.quick, seed=args.seed)
    for line in bench_sampling.diff_against(record, current):
        print(line)

    if args.quick:
        # quick mode (CI): never touch the committed record; write the
        # artifact elsewhere and enforce the columnar floors
        out = Path(args.out or "bench-sampling.json")
        out.write_text(json.dumps({"current": current}, indent=2,
                                  sort_keys=True) + "\n")
        print(f"results written to {out}", file=sys.stderr)
        if not args.no_floor:
            skim_ok, skim_message = bench_sampling.check_skim_floor(
                current, floor=args.skim_floor)
            print(skim_message)
            e2e_ok, e2e_message = bench_sampling.check_e2e_floor(
                current, floor=args.e2e_floor)
            print(e2e_message)
            if not (skim_ok and e2e_ok):
                return 1
        return 0

    out = Path(args.out) if args.out else bench_sampling.DEFAULT_PATH
    bench_sampling.write_record(current, path=out)
    print(f"results written to {out}", file=sys.stderr)
    return 0


def cmd_profile(args) -> int:
    """``repro profile SCHEME[:PROFILE[:INSTS]]``: cProfile one simulation
    point and report the top-N functions by cumulative time."""
    import cProfile
    import pstats

    parts = args.point.split(":")
    scheme = parts[0]
    profile_name = parts[1] if len(parts) > 1 else "hmmer"
    insts = int(parts[2]) if len(parts) > 2 else 10_000
    if scheme not in ("conventional", "sharing", "hinted", "early"):
        print(f"unknown scheme {scheme!r}", file=sys.stderr)
        return 1
    if profile_name not in BENCHMARKS:
        print(f"unknown benchmark {profile_name!r}; use one of: "
              f"{', '.join(sorted(BENCHMARKS))}", file=sys.stderr)
        return 1
    if args.sampled is not None:
        return _cmd_profile_sampled(args, scheme, profile_name, insts)

    from repro.pipeline.processor import IterSource, Processor

    stream = list(SyntheticWorkload(BENCHMARKS[profile_name],
                                    total_insts=insts, seed=args.seed))
    config = MachineConfig(scheme=scheme, verify_values=False)
    processor = Processor(config, IterSource(iter(stream)))
    profiler = cProfile.Profile()
    profiler.enable()
    processor.run()
    profiler.disable()
    if args.out:
        profiler.dump_stats(args.out)
        print(f"profile written to {args.out}", file=sys.stderr)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(args.top)
    loop = processor.loop_used
    label = f"loop={loop}"
    if loop == "generated":
        try:
            from repro.codegen import kernel_fingerprint
            label += f" kernel={kernel_fingerprint(config)}"
        except Exception:
            pass
    print(f"{scheme}:{profile_name}:{insts}  {label}  "
          f"cycles={processor.stats.cycles}  "
          f"skipped={processor.cycles_skipped}")
    return 0


def _cmd_profile_sampled(args, scheme: str, profile_name: str,
                         insts: int) -> int:
    """``repro profile --sampled``: cProfile one interval-sampled point
    and attribute its wall time to the engine's phases — skim,
    fast-forward (warming) and detailed windows — before the usual
    top-N function listing."""
    import cProfile
    import pstats
    import time

    from repro.harness.cache import TraceStream
    from repro.pipeline.processor import Processor
    from repro.sampling import as_schedule, sampled_simulate
    from repro.sampling.warmer import FunctionalWarmer
    from repro.workloads.trace_codec import encode

    stream_insts = list(SyntheticWorkload(BENCHMARKS[profile_name],
                                          total_insts=insts, seed=args.seed))
    stream = TraceStream(encode(stream_insts), insts)
    stream.columns()  # parse outside the profiled region
    config = MachineConfig(scheme=scheme, verify_values=False)

    phases = {"skim": 0.0, "fast_forward": 0.0, "window": 0.0}
    calls = {"skim": 0, "fast_forward": 0, "window": 0}
    originals = (("skim", FunctionalWarmer, "skim"),
                 ("fast_forward", FunctionalWarmer, "fast_forward"),
                 ("window", Processor, "run"))

    def attributed(name, fn):
        def wrapper(*wargs, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*wargs, **kwargs)
            finally:
                phases[name] += time.perf_counter() - start
                calls[name] += 1
        return wrapper

    saved = [(cls, attr, getattr(cls, attr)) for _, cls, attr in originals]
    profiler = cProfile.Profile()
    start = time.perf_counter()
    try:
        for name, cls, attr in originals:
            setattr(cls, attr, attributed(name, getattr(cls, attr)))
        profiler.enable()
        stats = sampled_simulate(
            config, stream, schedule=as_schedule(args.sampled,
                                                 seed=args.seed),
            total_insts=insts)
        profiler.disable()
    finally:
        for cls, attr, fn in saved:
            setattr(cls, attr, fn)
    total = time.perf_counter() - start

    other = total - sum(phases.values())
    print(f"{scheme}:{profile_name}:{insts}  sampled [{args.sampled}]  "
          f"windows={stats.windows}  "
          f"fast-forwarded={stats.insts_fast_forwarded}  "
          f"total {total * 1e3:.1f}ms")
    for name in ("skim", "fast_forward", "window"):
        share = 100.0 * phases[name] / total if total else 0.0
        print(f"  {name:14s} {phases[name] * 1e3:8.1f}ms  {share:5.1f}%  "
              f"({calls[name]} calls)")
    print(f"  {'other':14s} {other * 1e3:8.1f}ms  "
          f"{100.0 * other / total if total else 0.0:5.1f}%  "
          f"(setup, materialize, scaling)")

    if args.out:
        profiler.dump_stats(args.out)
        print(f"profile written to {args.out}", file=sys.stderr)
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(args.top)
    return 0


def _sweep_cache(args):
    """Result cache honouring --no-cache (None disables caching)."""
    if getattr(args, "no_cache", False):
        return None
    from repro.harness.cache import ResultCache

    return ResultCache()


def _sweep_journal(args, command: str):
    """SweepJournal from --journal/--resume, or None."""
    path = getattr(args, "journal", None)
    if path is None and getattr(args, "resume", False):
        from repro.harness.cache import default_journal_dir

        path = default_journal_dir() / f"{command}.jsonl"
    if path is None:
        return None
    from repro.harness.parallel import SweepJournal

    journal = SweepJournal(path)
    if len(journal):
        print(f"resuming from journal {journal.path} "
              f"({len(journal)} completed point(s))", file=sys.stderr)
    return journal


def _sweep_engine(args, command: str) -> dict:
    """Keyword arguments for run_points / the figure helpers, resolved
    from the shared --jobs/--no-cache/--timeout/--retries/--journal
    options."""
    return {
        "jobs": args.jobs,
        "cache": _sweep_cache(args),
        "timeout": getattr(args, "timeout", None),
        "retries": getattr(args, "retries", 0),
        "retry_delay": getattr(args, "retry_delay", 0.25),
        "journal": _sweep_journal(args, command),
        "remote": getattr(args, "fleet", None),
    }


def cmd_compare(args) -> int:
    from repro.harness.parallel import SweepPoint, collect_stats, run_points

    if args.name not in BENCHMARKS:
        print(f"unknown benchmark {args.name!r}", file=sys.stderr)
        return 1
    profile = BENCHMARKS[args.name]
    sizes = [int(s) for s in args.sizes.split(",")]
    sampling = _resolve_sampling(args)
    points = [SweepPoint(profile=profile, scheme=scheme, size=size,
                         insts=args.insts, seed=args.seed, sampling=sampling)
              for size in sizes for scheme in ("conventional", "sharing")]
    engine = _sweep_engine(args, "compare")
    cache = engine["cache"]
    stats = collect_stats(run_points(points, **engine))
    suffix = f", sampled [{sampling}]" if sampling else ""
    print(f"{args.name} ({profile.suite}), {args.insts} instructions{suffix}")
    print(f"{'RF size':>8s} {'baseline':>9s} {'proposed':>9s} {'speedup':>8s}")
    for size in sizes:
        baseline = stats[(profile.name, "conventional", size, args.seed)].ipc
        proposed = stats[(profile.name, "sharing", size, args.seed)].ipc
        speedup = proposed / baseline - 1 if baseline else 0.0
        print(f"{size:8d} {baseline:9.3f} {proposed:9.3f} "
              f"{100 * speedup:+7.1f}%")
    _print_cache_summary(cache)
    return 0


def _print_cache_summary(cache) -> None:
    if cache is not None and (cache.hits or cache.misses):
        print(f"result cache: {cache.hits} hit(s), {cache.misses} miss(es) "
              f"[{cache.root}]", file=sys.stderr)


def cmd_figures(args) -> int:
    from dataclasses import replace

    from repro.harness import (figure1, figure2, figure3, figure9, figure10,
                               figure11, figure12, figure_ports, headline,
                               table1, table2_result, table3)
    # --exact/--sampling override whatever REPRO_SAMPLING put in the Scale
    scale = replace(Scale.from_env(), sampling=_resolve_sampling(args))
    wanted = set(args.which) or {"all"}
    engine = _sweep_engine(args, "figures")
    cache = engine["cache"]

    def want(key):
        return "all" in wanted or key in wanted

    if want("tables"):
        print(table1(), "\n")
        print(table2_result().render(), "\n")
        print(table3().render(), "\n")
    # analysis-only figures (no timing simulation -> no sweep engine)
    for key, fn in (("fig1", figure1), ("fig2", figure2), ("fig3", figure3),
                    ("fig9", figure9)):
        if want(key):
            print(fn(scale).render(), "\n")
    for key, fn in (("fig11", figure11), ("fig12", figure12),
                    ("ports", figure_ports)):
        if want(key):
            print(fn(scale, **engine).render(), "\n")
    if want("fig10"):
        for suite in ("specfp", "specint", "media+cog"):
            print(figure10(suite, scale, **engine).render(), "\n")
    if want("headline"):
        print(headline(scale, **engine).render())
    _print_cache_summary(cache)
    return 0


def cmd_kernels(args) -> int:
    if args.list or not args.name:
        print("available kernels:", ", ".join(sorted(KERNELS)))
        return 0
    if args.name not in KERNELS:
        print(f"unknown kernel {args.name!r}", file=sys.stderr)
        return 1
    kernel = KERNELS[args.name]()
    stats = _simulate_program(args, kernel.program, budget=2_000_000)
    print(f"kernel {kernel.name}: ", end="")
    _print_stats(stats, args.detailed)
    return 0


def cmd_verify(args) -> int:
    """Oracle-checked kernel battery: the commit-time differential oracle
    plus cross-structure invariants, over every kernel program."""
    return _profiled(args, lambda: _cmd_verify_body(args))


def _cmd_verify_body(args) -> int:
    from repro.isa.executor import FirstTouchFaults
    from repro.pipeline.debug import check_invariants
    from repro.verify.oracle import lockstep_run

    schemes = (["conventional", "sharing", "hinted", "early"]
               if args.all_schemes else [args.scheme])
    names = [args.kernel] if args.kernel else sorted(KERNELS)
    for name in names:
        if name not in KERNELS:
            print(f"unknown kernel {name!r}", file=sys.stderr)
            return 1
    failures = 0
    for scheme in schemes:
        variants = [("plain", {}, None)]
        if scheme != "early":  # early release has no precise state
            if args.faults:
                variants.append(("faults", {}, FirstTouchFaults))
            if args.interrupts:
                variants.append(("interrupts", {"interrupt_interval": 500},
                                 None))
        for name in names:
            program = KERNELS[name]().program
            for label, overrides, fault_cls in variants:
                config = MachineConfig(
                    scheme=scheme, int_regs=args.int_regs,
                    fp_regs=args.fp_regs, counter_bits=args.counter_bits,
                    verify_values=not args.no_verify, **overrides)
                try:
                    stats = lockstep_run(
                        config, program,
                        fault_model=fault_cls() if fault_cls else None,
                        on_cycle=check_invariants,
                        on_cycle_interval=args.check_interval)
                except AssertionError as exc:
                    failures += 1
                    print(f"FAIL  {scheme:12s} {name:10s} {label}: {exc}")
                else:
                    print(f"ok    {scheme:12s} {name:10s} {label:10s} "
                          f"{stats.committed} insts, ipc={stats.ipc:.2f}")
    if failures:
        print(f"{failures} verification failure(s)", file=sys.stderr)
        return 1
    print("all verification runs passed")
    return 0


def cmd_fuzz(args) -> int:
    from repro.verify.fuzz import ALL_SCHEMES, FuzzFailure, FuzzProgram, fuzz, run_case

    schemes = (tuple(args.schemes.split(","))
               if args.schemes else ALL_SCHEMES)
    if args.replay:
        try:
            fp = FuzzProgram.load(args.replay)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load reproducer {args.replay!r}: {exc}",
                  file=sys.stderr)
            return 1
        try:
            counts = run_case(fp, schemes=schemes)
        except FuzzFailure as failure:
            print(f"FAIL  {failure}")
            return 1
        print(f"ok    seed {fp.seed} ({fp.variant}), "
              f"{fp.instruction_count()} IR instructions: "
              + ", ".join(f"{s}={n}" for s, n in counts.items()))
        return 0
    failures = fuzz(count=args.count, seed_base=args.seed, size=args.size,
                    schemes=schemes, out_dir=args.out, log=print)
    if failures:
        print(f"{len(failures)} fuzz failure(s); reproducers in {args.out}",
              file=sys.stderr)
        return 1
    print(f"fuzz campaign clean: {args.count} programs, "
          f"schemes {', '.join(schemes)}")
    return 0


def cmd_faults(args) -> int:
    """Seeded fault-injection campaign across the rename schemes."""
    from repro.faults import run_campaign

    schemes = tuple(args.schemes.split(",")) if args.schemes else None
    overrides = {"injections": args.injections, "seed": args.seed,
                 "shrink": not args.no_shrink}
    if schemes:
        overrides["schemes"] = schemes

    def progress(record):
        if args.verbose:
            print(f"[{record.index + 1}/{args.injections}] "
                  f"{record.spec.kind:<16} {record.spec.scheme:<12} "
                  f"-> {record.outcome}"
                  + ("" if record.expected else "  UNEXPECTED"))

    try:
        report = run_campaign(progress=progress, **overrides)
    except ValueError as exc:  # e.g. an unknown scheme name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for line in report.summary_lines():
        print(line)
    if args.out:
        report.save(args.out)
        print(f"report written to {args.out}", file=sys.stderr)
    return 0 if report.clean else 1


def cmd_fleet_serve(args) -> int:
    """Coordinate a benchmark sweep for TCP fleet workers."""
    from repro.fleet import FleetConfig
    from repro.harness.parallel import SweepPoint, run_points

    if args.name not in BENCHMARKS:
        print(f"unknown benchmark {args.name!r}", file=sys.stderr)
        return 1
    profile = BENCHMARKS[args.name]
    sizes = [int(s) for s in args.sizes.split(",")]
    schemes = args.schemes.split(",")
    points = [SweepPoint(profile=profile, scheme=scheme, size=size,
                         insts=args.insts, seed=args.seed)
              for scheme in schemes for size in sizes]
    config = FleetConfig(host=args.host, port=args.port,
                         lease_deadline=args.lease_deadline,
                         local_fallback_after=args.local_after)
    print(f"serving {len(points)} point(s) at {args.host}:{args.port} "
          f"(connect workers with: repro fleet worker "
          f"{args.host}:{args.port})", file=sys.stderr)
    results = run_points(points, jobs=1, cache=_sweep_cache(args),
                         timeout=args.timeout, retries=args.retries,
                         journal=_sweep_journal(args, "fleet-serve"),
                         remote=config)
    failures = 0
    for point, result in zip(points, results):
        if result.error:
            failures += 1
            line = f"FAILED after {result.attempts} attempt(s)"
        else:
            line = (f"ipc={result.stats.ipc:.4f} "
                    f"attempts={result.attempts}")
        print(f"{point.scheme:<14} {args.name} rf={point.size:<4} {line}")
    if failures:
        print(f"{failures} point(s) failed", file=sys.stderr)
    return 1 if failures else 0


def cmd_fleet_worker(args) -> int:
    """Run one fleet worker against a coordinator."""
    from repro.fleet import WorkerConfig, worker_main

    host, _, port = args.address.rpartition(":")
    try:
        port_num = int(port)
    except ValueError:
        print(f"fleet address {args.address!r}: expected HOST:PORT",
              file=sys.stderr)
        return 2
    config = WorkerConfig(host=host or "127.0.0.1", port=port_num,
                          name=args.name, seed=args.seed,
                          heartbeat_interval=args.heartbeat,
                          reconnect_attempts=args.reconnect_attempts,
                          trace_dir=args.trace_dir or "",
                          cache_dir=args.cache_dir or "",
                          events_path=args.events_out or "")
    summary = worker_main(config)
    print(f"worker {summary['worker']}: {summary['points_done']} point(s) "
          + ("done" if summary["finished"]
             else f"then stopped: {summary['fatal']}"))
    return 0 if summary["finished"] else 1


def cmd_fleet_chaos(args) -> int:
    """Seeded chaos campaign against a live localhost fleet."""
    from repro.fleet import run_campaign

    overrides = {"faults": args.faults, "seed": args.seed,
                 "workers": args.workers, "points": args.points,
                 "insts": args.insts, "shrink": not args.no_shrink}
    if args.schemes:
        overrides["schemes"] = tuple(args.schemes.split(","))
    if args.workdir:
        overrides["workdir"] = args.workdir

    def progress(record):
        if args.verbose:
            print(f"[{record.index + 1}/{args.faults}] "
                  f"{record.spec.kind:<18} round {record.spec.round_index} "
                  f"-> {record.outcome}"
                  + ("" if record.expected else "  UNEXPECTED"))

    report = run_campaign(progress=progress, **overrides)
    for line in report.summary_lines():
        print(line)
    if args.out:
        report.save(args.out)
        print(f"report written to {args.out}", file=sys.stderr)
    return 0 if report.clean else 1


def cmd_motivation(args) -> int:
    if args.name not in BENCHMARKS:
        print(f"unknown benchmark {args.name!r}", file=sys.stderr)
        return 1
    profile = BENCHMARKS[args.name]
    stream = list(SyntheticWorkload(profile, total_insts=args.insts,
                                    seed=args.seed))
    consumers = analyze_stream(iter(stream))
    chains = analyze_chains(iter(stream))
    series = chains.figure3_series()
    print(f"{args.name} ({profile.suite}), {args.insts} instructions")
    print(f"single-consumer values (Fig 2):        "
          f"{100 * consumers.single_use_value_fraction:.1f}%")
    print(f"single-consumer instructions (Fig 1):  "
          f"{100 * consumers.single_consumer_inst_fraction:.1f}% "
          f"(same {100 * consumers.redefine_same_fraction:.1f}% / "
          f"other {100 * consumers.redefine_other_fraction:.1f}%)")
    print(f"reuse chains (Fig 3): one {100 * series['one']:.1f}%  "
          f"two {100 * series['two']:.1f}%  three {100 * series['three']:.1f}%  "
          f"more {100 * series['more']:.1f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Register renaming with physical register "
        "sharing (HPCA 2018) — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate an assembly file")
    p_run.add_argument("program")
    p_run.add_argument("--insts", type=int, default=None)
    p_run.add_argument("--profile", default=None, metavar="PATH",
                       help="cProfile the run; dump pstats to PATH and "
                            "print the top-15 cumulative functions")
    _machine_args(p_run)
    _sampling_args(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_bench = sub.add_parser(
        "bench", help="run one benchmark profile; with no name, run the "
        "cycle-loop throughput benchmark (BENCH_cycleloop.json); with "
        "'sweep', run the sweep data-plane benchmark (BENCH_sweep.json); "
        "with 'sample', run the sampled-simulation benchmark "
        "(BENCH_sampling.json)")
    p_bench.add_argument("name", nargs="?", default=None)
    p_bench.add_argument("--insts", type=int, default=20_000)
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument("--quick", action="store_true",
                         help="cycle-loop bench: smaller run, write the "
                              "artifact to --out and enforce the "
                              "throughput floor (CI mode)")
    p_bench.add_argument("--out", default=None, metavar="PATH",
                         help="cycle-loop bench: output JSON path")
    p_bench.add_argument("--no-floor", action="store_true",
                         help="cycle-loop bench: skip the floor check in "
                              "--quick mode")
    p_bench.add_argument("--floor-tolerance", type=float, default=0.35,
                         help="allowed sharing-scheme throughput drop vs "
                              "the committed record (default 0.35; the "
                              "committed numbers come from the 20k-inst "
                              "full run, and the generated kernel's "
                              "skip amortisation makes the 8k-inst quick "
                              "run ~20%% slower per instruction)")
    p_bench.add_argument("--jobs", type=int, default=4,
                         help="sweep bench: worker count for the grid "
                              "measurements (default 4)")
    p_bench.add_argument("--decode-floor", type=float, default=5.0,
                         help="sweep bench --quick: minimum binary/jsonl "
                              "per-pass decode speedup before CI fails")
    p_bench.add_argument("--sweep-floor", type=float, default=2.0,
                         help="sweep bench --quick: minimum cold-cache "
                              "sampled-grid speedup before CI fails")
    p_bench.add_argument("--sampled-floor", type=float, default=3.0,
                         help="cycle-loop bench --quick: minimum sampled/"
                              "exact sharing-scheme speedup (default 3.0)")
    p_bench.add_argument("--skim-floor", type=float, default=5.0,
                         help="sample bench --quick: minimum columnar/"
                              "per-inst skim speedup before CI fails")
    p_bench.add_argument("--e2e-floor", type=float, default=1.0,
                         help="sample bench --quick: minimum worst-scheme "
                              "end-to-end columnar speedup before CI fails")
    _machine_args(p_bench)
    _sampling_args(p_bench)
    p_bench.set_defaults(fn=cmd_bench)

    p_prof = sub.add_parser(
        "profile", help="cProfile one simulation point "
        "(SCHEME[:PROFILE[:INSTS]], e.g. sharing:hmmer:10000)")
    p_prof.add_argument("point")
    p_prof.add_argument("--top", type=int, default=15,
                        help="functions to print (default 15)")
    p_prof.add_argument("--seed", type=int, default=1)
    p_prof.add_argument("--out", default=None, metavar="PATH",
                        help="also dump the raw pstats file to PATH")
    p_prof.add_argument("--sampled", nargs="?", const="2000:150:100",
                        default=None, metavar="P:W:U",
                        help="profile the interval-sampled engine instead "
                             "of the exact cycle loop, attributing time "
                             "to the skim / fast-forward / window phases "
                             "(optional schedule, default 2000:150:100)")
    p_prof.set_defaults(fn=cmd_profile)

    p_cmp = sub.add_parser("compare", help="baseline vs proposed sweep")
    p_cmp.add_argument("name")
    p_cmp.add_argument("--sizes", default="48,56,64,80,96")
    p_cmp.add_argument("--insts", type=int, default=10_000)
    p_cmp.add_argument("--seed", type=int, default=1)
    _sweep_args(p_cmp)
    _sampling_args(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_fig = sub.add_parser("figures", help="regenerate tables/figures")
    p_fig.add_argument("which", nargs="*", default=[],
                       help="tables fig1..fig12 ports headline (default: all)")
    _sweep_args(p_fig)
    _sampling_args(p_fig)
    p_fig.set_defaults(fn=cmd_figures)

    p_ker = sub.add_parser("kernels", help="run a real kernel")
    p_ker.add_argument("name", nargs="?")
    p_ker.add_argument("--list", action="store_true")
    _machine_args(p_ker)
    p_ker.set_defaults(fn=cmd_kernels)

    p_ver = sub.add_parser(
        "verify", help="oracle-checked kernel battery (differential "
        "lockstep against the in-order golden model)")
    p_ver.add_argument("--kernel", default=None,
                       help="verify one kernel (default: all)")
    p_ver.add_argument("--all-schemes", action="store_true",
                       help="verify every rename scheme")
    p_ver.add_argument("--faults", action="store_true",
                       help="also run a first-touch page-fault variant")
    p_ver.add_argument("--interrupts", action="store_true",
                       help="also run a periodic-interrupt variant")
    p_ver.add_argument("--check-interval", type=int, default=16,
                       help="invariant-check interval in cycles")
    p_ver.add_argument("--profile", default=None, metavar="PATH",
                       help="cProfile the battery; dump pstats to PATH and "
                            "print the top-15 cumulative functions")
    _machine_args(p_ver)
    p_ver.set_defaults(fn=cmd_verify)

    p_fuzz = sub.add_parser(
        "fuzz", help="random-program fuzzer across all rename schemes")
    p_fuzz.add_argument("--count", type=int, default=25,
                        help="number of seeded programs")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="base seed (program i uses seed+i)")
    p_fuzz.add_argument("--size", type=int, default=40,
                        help="IR items per generated program")
    p_fuzz.add_argument("--schemes", default=None,
                        help="comma-separated scheme subset")
    p_fuzz.add_argument("--out", default="fuzz-failures",
                        help="directory for shrunk reproducers")
    p_fuzz.add_argument("--replay", default=None, metavar="FILE",
                        help="replay one reproducer instead of fuzzing")
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_faults = sub.add_parser(
        "faults", help="seeded fault-injection campaign (bit flips, PRT "
        "corruption, squash storms, interrupt floods) with oracle-checked "
        "outcome classification")
    p_faults.add_argument("--injections", type=int, default=200,
                          help="number of injections to draw (default 200)")
    p_faults.add_argument("--seed", type=int, default=0,
                          help="campaign seed (default 0)")
    p_faults.add_argument("--schemes", default=None,
                          help="comma-separated scheme subset "
                               "(default: conventional,sharing,early)")
    p_faults.add_argument("--out", default=None, metavar="PATH",
                          help="write the JSON campaign report to PATH")
    p_faults.add_argument("--no-shrink", action="store_true",
                          help="skip ddmin shrinking of unexpected outcomes")
    p_faults.add_argument("--verbose", action="store_true",
                          help="print every injection as it classifies")
    p_faults.set_defaults(fn=cmd_faults)

    p_fleet = sub.add_parser(
        "fleet", help="distributed sweep fleet over TCP: coordinator, "
        "workers, chaos campaign")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    p_serve = fleet_sub.add_parser(
        "serve", help="coordinate a benchmark sweep for fleet workers "
        "(degrades to local execution when no workers connect)")
    p_serve.add_argument("name", help="benchmark profile to sweep")
    p_serve.add_argument("--sizes", default="48,56,64,80,96")
    p_serve.add_argument("--insts", type=int, default=10_000)
    p_serve.add_argument("--seed", type=int, default=1)
    p_serve.add_argument("--schemes", default="conventional,sharing",
                         help="comma-separated scheme list "
                              "(default conventional,sharing)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=9461)
    p_serve.add_argument("--lease-deadline", type=float, default=30.0,
                         help="seconds a worker may hold a point without "
                              "heartbeating before it is requeued "
                              "(default 30)")
    p_serve.add_argument("--local-after", type=float, default=3.0,
                         help="seconds of remote silence before the "
                              "coordinator starts running points itself "
                              "(default 3)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="bypass the persistent result cache")
    p_serve.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock budget for the coordinator's "
                              "own local runs")
    p_serve.add_argument("--retries", type=int, default=3,
                         help="lease re-grants per point after worker "
                              "loss (default 3)")
    p_serve.add_argument("--journal", default=None, metavar="PATH",
                         help="crash-safe journal; re-serving with the "
                              "same journal resumes after interruption")
    p_serve.add_argument("--resume", action="store_true",
                         help="shorthand for --journal at the default "
                              "location")
    p_serve.set_defaults(fn=cmd_fleet_serve)

    p_worker = fleet_sub.add_parser(
        "worker", help="lease and simulate points from a coordinator")
    p_worker.add_argument("address", help="coordinator HOST:PORT")
    p_worker.add_argument("--name", default="",
                          help="worker name shown in coordinator events")
    p_worker.add_argument("--seed", type=int, default=0,
                          help="reconnect-backoff jitter seed")
    p_worker.add_argument("--heartbeat", type=float, default=5.0,
                          help="heartbeat interval ceiling in seconds "
                               "(default 5; clamped to the lease "
                               "deadline)")
    p_worker.add_argument("--reconnect-attempts", type=int, default=10,
                          help="consecutive connection failures before "
                               "giving up (default 10)")
    p_worker.add_argument("--trace-dir", default=None, metavar="DIR",
                          help="private trace-cache directory")
    p_worker.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="private result-cache directory")
    p_worker.add_argument("--events-out", default=None, metavar="PATH",
                          help="write the worker's event summary JSON "
                               "to PATH on exit")
    p_worker.set_defaults(fn=cmd_fleet_worker)

    p_chaos = fleet_sub.add_parser(
        "chaos", help="seeded fault campaign against a live localhost "
        "fleet: worker kills, partitions, mangled uploads, stalls, "
        "coordinator restarts — every round must end bit-identical to "
        "a serial reference")
    p_chaos.add_argument("--faults", type=int, default=100,
                         help="fault budget for the campaign (default 100)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="campaign seed (default 0)")
    p_chaos.add_argument("--workers", type=int, default=3,
                         help="fleet workers per round (default 3)")
    p_chaos.add_argument("--points", type=int, default=6,
                         help="sweep points per round (default 6)")
    p_chaos.add_argument("--insts", type=int, default=800,
                         help="instructions per point (default 800)")
    p_chaos.add_argument("--schemes", default=None,
                         help="comma-separated scheme subset")
    p_chaos.add_argument("--workdir", default=None, metavar="DIR",
                         help="keep round artifacts under DIR instead of "
                              "a temporary directory")
    p_chaos.add_argument("--out", default=None, metavar="PATH",
                         help="write the JSON campaign report to PATH")
    p_chaos.add_argument("--no-shrink", action="store_true",
                         help="skip ddmin shrinking of unexpected rounds")
    p_chaos.add_argument("--verbose", action="store_true",
                         help="print every fault as it classifies")
    p_chaos.set_defaults(fn=cmd_fleet_chaos)

    p_mot = sub.add_parser("motivation", help="Figures 1-3 stats for a benchmark")
    p_mot.add_argument("name")
    p_mot.add_argument("--insts", type=int, default=10_000)
    p_mot.add_argument("--seed", type=int, default=1)
    p_mot.set_defaults(fn=cmd_motivation)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
