"""Sparse 8-byte-word-granular memory used by the functional executor."""

from __future__ import annotations

from typing import Iterable, Union

Value = Union[int, float]


class SparseMemory:
    """Word-addressed sparse memory.

    Addresses are normalised to 8-byte alignment; uninitialised words read
    as integer zero.  Values are Python ints or floats (the simulator models
    a 64-bit machine; integer wrap-around is handled by the executor, not
    here).
    """

    __slots__ = ("_words",)

    def __init__(self, init: dict[int, Value] | None = None) -> None:
        self._words: dict[int, Value] = {}
        if init:
            for addr, value in init.items():
                self.store(addr, value)

    @staticmethod
    def _align(addr: int) -> int:
        return addr & ~7

    def load(self, addr: int) -> Value:
        return self._words.get(self._align(addr), 0)

    def store(self, addr: int, value: Value) -> None:
        self._words[self._align(addr)] = value

    def load_block(self, addr: int, count: int) -> list[Value]:
        base = self._align(addr)
        return [self.load(base + 8 * i) for i in range(count)]

    def store_block(self, addr: int, values: Iterable[Value]) -> None:
        base = self._align(addr)
        for i, value in enumerate(values):
            self.store(base + 8 * i, value)

    def copy(self) -> "SparseMemory":
        clone = SparseMemory()
        clone._words = dict(self._words)
        return clone

    def __len__(self) -> int:
        return len(self._words)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMemory):
            return NotImplemented
        return self._words == other._words
