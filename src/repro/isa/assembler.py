"""Two-pass assembler for the toy ISA.

Syntax example::

    .data
    arr:    .word 1 2 3 4
    out:    .zero 4

    .text
    main:   movi x1, arr
            movi x2, 0
            movi x3, 4
    loop:   ld   x4, 0(x1)
            add  x2, x2, x4
            addi x1, x1, 8
            subi x3, x3, 1
            bnez x3, loop
            movi x5, out
            st   x2, 0(x5)
            halt

Comments start with ``#`` or ``;``.  ``call lbl`` and ``ret`` are sugar for
``jal x31, lbl`` and ``jalr x31``.  Immediates may reference data labels.
"""

from __future__ import annotations

import re
from typing import Union

from repro.isa.instruction import Instruction
from repro.isa.opcodes import MNEMONICS, OPCODES, Op
from repro.isa.program import DATA_BASE, Program
from repro.isa.registers import LINK_REG, RegRef, reg, xreg


class AssemblerError(ValueError):
    """Raised on malformed assembly input."""


_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_MEM_RE = re.compile(r"^(?P<off>[^()]*)\((?P<base>[xX]\d+)\)$")


def _strip(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_number(tok: str) -> Union[int, float]:
    tok = tok.strip()
    try:
        return int(tok, 0)
    except ValueError:
        pass
    try:
        return float(tok)
    except ValueError as exc:
        raise AssemblerError(f"bad numeric literal: {tok!r}") from exc


class _Assembler:
    def __init__(self, text: str) -> None:
        self.text = text
        self.labels: dict[str, int] = {}
        self.data: dict[int, Union[int, float]] = {}
        self.pending: list[tuple[str, list[str], int]] = []  # (mnemonic, operands, lineno)
        self._data_ptr = DATA_BASE

    # ------------------------------------------------------------------ pass 1
    def collect(self) -> None:
        section = "text"
        for lineno, raw in enumerate(self.text.splitlines(), start=1):
            line = _strip(raw)
            if not line:
                continue
            while True:
                match = re.match(r"^([\w.$]+):\s*", line)
                if not match:
                    break
                self._define_label(match.group(1), section, lineno)
                line = line[match.end():]
            if not line:
                continue
            if line.startswith("."):
                section = self._directive(line, section, lineno)
                continue
            if section != "text":
                raise AssemblerError(f"line {lineno}: instruction outside .text")
            mnemonic, _, rest = line.partition(" ")
            operands = [tok.strip() for tok in rest.split(",")] if rest.strip() else []
            self.pending.append((mnemonic.lower(), operands, lineno))

    def _define_label(self, name: str, section: str, lineno: int) -> None:
        if not _LABEL_RE.match(name):
            raise AssemblerError(f"line {lineno}: bad label {name!r}")
        if name in self.labels:
            raise AssemblerError(f"line {lineno}: duplicate label {name!r}")
        self.labels[name] = len(self.pending) if section == "text" else self._data_ptr

    def _directive(self, line: str, section: str, lineno: int) -> str:
        parts = line.split()
        name = parts[0]
        if name == ".text":
            return "text"
        if name == ".data":
            return "data"
        if name == ".word":
            for tok in parts[1:]:
                self.data[self._data_ptr] = _parse_number(tok)
                self._data_ptr += 8
            return section
        if name == ".zero":
            count = int(parts[1], 0) if len(parts) > 1 else 1
            for _ in range(count):
                self.data[self._data_ptr] = 0
                self._data_ptr += 8
            return section
        raise AssemblerError(f"line {lineno}: unknown directive {name!r}")

    # ------------------------------------------------------------------ pass 2
    def emit(self) -> Program:
        insts = [self._encode(m, ops, ln) for m, ops, ln in self.pending]
        entry = self.labels.get("main", 0)
        return Program(insts=insts, labels=dict(self.labels), data=dict(self.data), entry=entry)

    def _resolve_imm(self, tok: str, lineno: int) -> Union[int, float]:
        if tok in self.labels:
            return self.labels[tok]
        return _parse_number(tok)

    def _resolve_target(self, tok: str, lineno: int) -> int:
        if tok not in self.labels:
            raise AssemblerError(f"line {lineno}: undefined label {tok!r}")
        return self.labels[tok]

    def _encode(self, mnemonic: str, ops: list[str], lineno: int) -> Instruction:
        # sugar
        if mnemonic == "call":
            return Instruction(Op.JAL, dest=xreg(LINK_REG),
                               target=self._resolve_target(ops[0], lineno), label=ops[0])
        if mnemonic == "ret":
            return Instruction(Op.JALR, srcs=(xreg(LINK_REG),))
        if mnemonic not in MNEMONICS:
            raise AssemblerError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
        op = MNEMONICS[mnemonic]
        info = OPCODES[op]
        fmt = info.asm_fmt
        try:
            return self._encode_fmt(op, fmt, ops, lineno)
        except (IndexError, ValueError) as exc:
            raise AssemblerError(f"line {lineno}: bad operands for {mnemonic}: {exc}") from exc

    def _encode_fmt(self, op: Op, fmt: str, ops: list[str], lineno: int) -> Instruction:
        info = OPCODES[op]
        if fmt == "":
            return Instruction(op)
        if fmt == "d,s,s":
            return Instruction(op, dest=reg(ops[0]), srcs=(reg(ops[1]), reg(ops[2])))
        if fmt == "d,s,s,s":
            return Instruction(op, dest=reg(ops[0]),
                               srcs=(reg(ops[1]), reg(ops[2]), reg(ops[3])))
        if fmt == "d,s,i":
            return Instruction(op, dest=reg(ops[0]), srcs=(reg(ops[1]),),
                               imm=self._resolve_imm(ops[2], lineno))
        if fmt == "d,s":
            return Instruction(op, dest=reg(ops[0]), srcs=(reg(ops[1]),))
        if fmt == "d,i":
            return Instruction(op, dest=reg(ops[0]), imm=self._resolve_imm(ops[1], lineno))
        if fmt == "d,a":
            base, off = self._parse_mem(ops[1], lineno)
            return Instruction(op, dest=reg(ops[0]), srcs=(base,), imm=off)
        if fmt == "v,a":
            base, off = self._parse_mem(ops[1], lineno)
            return Instruction(op, srcs=(reg(ops[0]), base), imm=off)
        if fmt == "s,s,L":
            return Instruction(op, srcs=(reg(ops[0]), reg(ops[1])),
                               target=self._resolve_target(ops[2], lineno), label=ops[2])
        if fmt == "s,L":
            return Instruction(op, srcs=(reg(ops[0]),),
                               target=self._resolve_target(ops[1], lineno), label=ops[1])
        if fmt == "L":
            return Instruction(op, target=self._resolve_target(ops[0], lineno), label=ops[0])
        if fmt == "d,L":
            return Instruction(op, dest=reg(ops[0]),
                               target=self._resolve_target(ops[1], lineno), label=ops[1])
        if fmt == "s":
            return Instruction(op, srcs=(reg(ops[0]),))
        raise AssemblerError(f"line {lineno}: unhandled format {fmt!r} for {op}")

    def _parse_mem(self, tok: str, lineno: int) -> tuple[RegRef, int]:
        match = _MEM_RE.match(tok.replace(" ", ""))
        if not match:
            raise AssemblerError(f"line {lineno}: bad memory operand {tok!r}")
        base = reg(match.group("base"))
        off_tok = match.group("off") or "0"
        off = self._resolve_imm(off_tok, lineno)
        if not isinstance(off, int):
            raise AssemblerError(f"line {lineno}: non-integer offset {off_tok!r}")
        return base, off


def assemble(text: str) -> Program:
    """Assemble ``text`` into a :class:`Program` (labels resolved)."""
    asm = _Assembler(text)
    asm.collect()
    return asm.emit()
