"""In-order functional executor.

Runs a :class:`~repro.isa.program.Program` architecturally (no timing) and
yields the dynamic instruction stream.  The out-of-order pipeline consumes
this stream for timing simulation and uses the recorded operand/result
values to verify, at issue and commit time, that register renaming never
corrupted dataflow.  The executor is also the *reference model* that
precise-exception tests compare recovered architectural state against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Union

from repro.isa.dyninst import DynInst
from repro.isa.memory import SparseMemory
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import FP_REGS, INT_REGS, RegClass, RegRef

Value = Union[int, float]

_I64_MASK = (1 << 64) - 1
_I64_SIGN = 1 << 63


def wrap_i64(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's-complement."""
    value &= _I64_MASK
    return value - (1 << 64) if value & _I64_SIGN else value


class FaultModel:
    """Decides which dynamic memory accesses raise precise exceptions."""

    def should_fault(self, addr: int, seq: int) -> bool:
        raise NotImplementedError

    def service(self, addr: int) -> None:
        """Called when the exception handler 'fixes' the fault."""


class NoFaults(FaultModel):
    """Never fault."""

    def should_fault(self, addr: int, seq: int) -> bool:
        return False


class FirstTouchFaults(FaultModel):
    """The first access to each page raises a page fault (cold faults).

    After the handler services the page, subsequent accesses hit.  This is
    the synthetic stand-in for the paper's TLB-miss / page-fault example
    (Section IV-B): it creates exceptions that arrive while younger
    instructions have already overwritten shared physical registers.
    """

    def __init__(self, page_bits: int = 12, limit: Optional[int] = None) -> None:
        self.page_bits = page_bits
        self.limit = limit
        self.serviced: set[int] = set()
        self.fault_count = 0

    def _page(self, addr: int) -> int:
        return addr >> self.page_bits

    def should_fault(self, addr: int, seq: int) -> bool:
        if self.limit is not None and self.fault_count >= self.limit:
            return False
        if self._page(addr) in self.serviced:
            return False
        self.fault_count += 1
        return True

    def service(self, addr: int) -> None:
        self.serviced.add(self._page(addr))


@dataclass
class ArchState:
    """Snapshot of architectural state (registers + memory)."""

    int_regs: list[int] = field(default_factory=lambda: [0] * INT_REGS)
    fp_regs: list[float] = field(default_factory=lambda: [0.0] * FP_REGS)
    mem: SparseMemory = field(default_factory=SparseMemory)

    def read(self, ref: RegRef) -> Value:
        regs = self.int_regs if ref.cls is RegClass.INT else self.fp_regs
        return regs[ref.idx]

    def write(self, ref: RegRef, value: Value) -> None:
        if ref.cls is RegClass.INT:
            self.int_regs[ref.idx] = wrap_i64(int(value))
        else:
            self.fp_regs[ref.idx] = float(value)

    def clone(self) -> "ArchState":
        return ArchState(list(self.int_regs), list(self.fp_regs), self.mem.copy())

    def regs_equal(self, other: "ArchState") -> bool:
        return self.int_regs == other.int_regs and self.fp_regs == other.fp_regs

    def diff_regs(self, int_regs: list, fp_regs: list) -> list[str]:
        """Registers where this state differs from the given register dump.

        NaN compares equal to NaN.  Returns human-readable entries such as
        ``"x3: expected 7, got 9"`` (expected = this state); empty when the
        register states agree.
        """
        def same(a, b) -> bool:
            return a == b or (a != a and b != b)

        diffs = []
        for prefix, mine, theirs in (("x", self.int_regs, int_regs),
                                     ("f", self.fp_regs, fp_regs)):
            for idx, (a, b) in enumerate(zip(mine, theirs)):
                if not same(a, b):
                    diffs.append(f"{prefix}{idx}: expected {a!r}, got {b!r}")
        return diffs


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        return math.inf if a > 0 else (-math.inf if a < 0 else 0.0)
    return a / b


def _ftoi(a: float) -> int:
    if math.isnan(a) or math.isinf(a):
        return 0
    return wrap_i64(int(a))


_ALU2: dict[Op, Callable[[int, int], int]] = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: a << (b % 64),
    Op.SHR: lambda a, b: a >> (b % 64),
    Op.SLT: lambda a, b: 1 if a < b else 0,
    Op.MUL: lambda a, b: a * b,
    Op.DIV: lambda a, b: 0 if b == 0 else int(a / b),
    Op.REM: lambda a, b: a if b == 0 else a - int(a / b) * b,
}

_ALUI: dict[Op, Callable[[int, int], int]] = {
    Op.ADDI: lambda a, i: a + i,
    Op.SUBI: lambda a, i: a - i,
    Op.ANDI: lambda a, i: a & i,
    Op.ORI: lambda a, i: a | i,
    Op.XORI: lambda a, i: a ^ i,
    Op.SHLI: lambda a, i: a << (i % 64),
    Op.SHRI: lambda a, i: a >> (i % 64),
    Op.SLTI: lambda a, i: 1 if a < i else 0,
}

_FPU2: dict[Op, Callable[[float, float], float]] = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FMIN: min,
    Op.FMAX: max,
    Op.FDIV: _fdiv,
}

_FCMP: dict[Op, Callable[[float, float], int]] = {
    Op.FEQ: lambda a, b: 1 if a == b else 0,
    Op.FLT: lambda a, b: 1 if a < b else 0,
    Op.FLE: lambda a, b: 1 if a <= b else 0,
}

_BRANCH: dict[Op, Callable[[list[int]], bool]] = {
    Op.BEQ: lambda v: v[0] == v[1],
    Op.BNE: lambda v: v[0] != v[1],
    Op.BLT: lambda v: v[0] < v[1],
    Op.BGE: lambda v: v[0] >= v[1],
    Op.BEQZ: lambda v: v[0] == 0,
    Op.BNEZ: lambda v: v[0] != 0,
}


class ProgramError(RuntimeError):
    """Raised when execution escapes the program or exceeds the budget."""


class FunctionalExecutor:
    """Architectural interpreter producing the dynamic instruction stream."""

    def __init__(
        self,
        program: Program,
        mem: Optional[SparseMemory] = None,
        fault_model: Optional[FaultModel] = None,
        pool=None,
    ) -> None:
        self.program = program
        self.state = ArchState(mem=mem if mem is not None else SparseMemory(program.data))
        self.fault_model = fault_model or NoFaults()
        self.pc = program.entry
        self.seq = 0
        self.halted = False
        #: optional DynInstPool; recycles committed instructions the
        #: processor hands back instead of allocating fresh ones
        self.pool = pool

    # -------------------------------------------------------------- stepping
    def step(self) -> Optional[DynInst]:
        """Execute one instruction; returns its DynInst or None when halted."""
        if self.halted:
            return None
        if not 0 <= self.pc < len(self.program):
            raise ProgramError(f"pc out of range: {self.pc}")
        static = self.program.insts[self.pc]
        info = static.info
        state = self.state

        src_values = tuple(state.read(s) for s in static.srcs)
        if self.pool is not None:
            dyn = self.pool.acquire(
                seq=self.seq,
                pc=self.pc,
                op=static.op,
                dest=static.dest,
                srcs=static.srcs,
                imm=static.imm,
                src_values=src_values,
            )
        else:
            dyn = DynInst(
                seq=self.seq,
                pc=self.pc,
                op=static.op,
                dest=static.dest,
                srcs=static.srcs,
                imm=static.imm,
                src_values=src_values,
            )
        self.seq += 1
        next_pc = self.pc + 1
        op = static.op

        if op in _ALU2:
            dyn.result = wrap_i64(_ALU2[op](src_values[0], src_values[1]))
        elif op in _ALUI:
            dyn.result = wrap_i64(_ALUI[op](src_values[0], static.imm))
        elif op is Op.MOV:
            dyn.result = src_values[0]
        elif op is Op.MOVI:
            dyn.result = wrap_i64(int(static.imm))
        elif op in _FPU2:
            dyn.result = _FPU2[op](src_values[0], src_values[1])
        elif op is Op.FABS:
            dyn.result = abs(src_values[0])
        elif op is Op.FNEG:
            dyn.result = -src_values[0]
        elif op is Op.FMOV:
            dyn.result = src_values[0]
        elif op is Op.FLI:
            dyn.result = float(static.imm)
        elif op is Op.FMADD:
            dyn.result = src_values[0] * src_values[1] + src_values[2]
        elif op is Op.CSEL:
            dyn.result = src_values[1] if src_values[0] != 0 else src_values[2]
        elif op is Op.FSQRT:
            dyn.result = math.sqrt(src_values[0]) if src_values[0] >= 0 else 0.0
        elif op is Op.FCVT:
            dyn.result = float(src_values[0])
        elif op is Op.FTOI:
            dyn.result = _ftoi(src_values[0])
        elif op in _FCMP:
            dyn.result = _FCMP[op](src_values[0], src_values[1])
        elif info.is_load:
            addr = wrap_i64(src_values[0] + static.imm)
            dyn.mem_addr = addr
            dyn.faults = self.fault_model.should_fault(addr, dyn.seq)
            value = state.mem.load(addr)
            dyn.result = value if op is Op.FLD else wrap_i64(int(value))
        elif info.is_store:
            addr = wrap_i64(src_values[1] + static.imm)
            dyn.mem_addr = addr
            dyn.store_value = src_values[0]
            dyn.faults = self.fault_model.should_fault(addr, dyn.seq)
            state.mem.store(addr, src_values[0])
        elif info.is_branch:
            dyn.target = static.target
            if info.is_cond:
                dyn.taken = _BRANCH[op](list(src_values))
                if dyn.taken:
                    next_pc = static.target
            elif op is Op.JMP:
                dyn.taken = True
                next_pc = static.target
            elif op is Op.JAL:
                dyn.taken = True
                dyn.result = self.pc + 1
                next_pc = static.target
            elif op is Op.JALR:
                dyn.taken = True
                next_pc = int(src_values[0])
                dyn.target = next_pc
        elif op is Op.TRAP:
            dyn.faults = True  # precise trap; architecturally a no-op once serviced
        elif op is Op.HALT:
            self.halted = True
        elif op is Op.NOP:
            pass
        else:  # pragma: no cover - exhaustive dispatch
            raise ProgramError(f"unimplemented op {op}")

        if dyn.dest is not None and dyn.result is not None:
            state.write(dyn.dest, dyn.result)

        dyn.next_pc = next_pc
        self.pc = next_pc
        return dyn

    def run(self, max_insts: int = 1_000_000) -> Iterator[DynInst]:
        """Yield dynamic instructions until HALT or the budget is exhausted."""
        for _ in range(max_insts):
            dyn = self.step()
            if dyn is None:
                return
            yield dyn
            if dyn.op is Op.HALT:
                return
        raise ProgramError(f"instruction budget exceeded ({max_insts})")


def run_to_completion(
    program: Program,
    max_insts: int = 1_000_000,
    fault_model: Optional[FaultModel] = None,
) -> ArchState:
    """Convenience: run a program architecturally and return the final state."""
    executor = FunctionalExecutor(program, fault_model=fault_model)
    for _ in executor.run(max_insts):
        pass
    return executor.state
