"""Logical register identifiers.

The machine has two decoupled register classes, mirroring the paper's
decoupled integer / floating-point register files: 32 integer registers
(``x0``..``x31``) and 32 floating-point registers (``f0``..``f31``).
``x31`` is used by convention as the link register for ``jal``/``ret`` but
has no special hardware behaviour.
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class RegClass(enum.IntEnum):
    """Register class: integer or floating point."""

    INT = 0
    FP = 1

    @property
    def prefix(self) -> str:
        return "x" if self is RegClass.INT else "f"


#: Number of logical registers per class.
INT_REGS = 32
FP_REGS = 32

#: Link register index (convention only).
LINK_REG = 31


class RegRef(NamedTuple):
    """A reference to one logical register: ``(register class, index)``."""

    cls: RegClass
    idx: int

    def __str__(self) -> str:
        return f"{self.cls.prefix}{self.idx}"


def xreg(idx: int) -> RegRef:
    """Integer register ``x<idx>``."""
    if not 0 <= idx < INT_REGS:
        raise ValueError(f"integer register index out of range: {idx}")
    return RegRef(RegClass.INT, idx)


def freg(idx: int) -> RegRef:
    """Floating-point register ``f<idx>``."""
    if not 0 <= idx < FP_REGS:
        raise ValueError(f"fp register index out of range: {idx}")
    return RegRef(RegClass.FP, idx)


def reg(name: str) -> RegRef:
    """Parse a register name such as ``"x7"`` or ``"f12"``."""
    name = name.strip().lower()
    if len(name) < 2 or name[0] not in "xf":
        raise ValueError(f"bad register name: {name!r}")
    try:
        idx = int(name[1:])
    except ValueError as exc:
        raise ValueError(f"bad register name: {name!r}") from exc
    return xreg(idx) if name[0] == "x" else freg(idx)
