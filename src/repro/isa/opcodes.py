"""Opcode definitions and static metadata.

Each opcode carries the metadata the rest of the system needs: which
functional-unit class executes it, the register classes of its destination
and sources, and whether it is a load / store / branch / call / return /
trap.  Execution latencies are *not* defined here — they belong to the
machine configuration (:mod:`repro.pipeline.config`), keyed by the
functional-unit class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.isa.registers import RegClass

INT = RegClass.INT
FP = RegClass.FP


class Op(enum.Enum):
    """All opcodes of the toy ISA."""

    # integer ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SLT = "slt"
    MOV = "mov"
    MOVI = "movi"
    ADDI = "addi"
    SUBI = "subi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SHLI = "shli"
    SHRI = "shri"
    SLTI = "slti"
    NOP = "nop"
    # integer multiply / divide
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    CSEL = "csel"
    # floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FMIN = "fmin"
    FMAX = "fmax"
    FABS = "fabs"
    FNEG = "fneg"
    FMOV = "fmov"
    FLI = "fli"
    FMADD = "fmadd"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FCVT = "fcvt"  # int -> fp
    FTOI = "ftoi"  # fp -> int (truncate)
    FEQ = "feq"
    FLT = "flt"
    FLE = "fle"
    # memory
    LD = "ld"
    ST = "st"
    FLD = "fld"
    FST = "fst"
    # control flow
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BEQZ = "beqz"
    BNEZ = "bnez"
    JMP = "jmp"
    JAL = "jal"
    JALR = "jalr"
    # system
    TRAP = "trap"
    HALT = "halt"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    op: Op
    fu: str  # 'alu' | 'mul' | 'div' | 'fpu' | 'fpdiv' | 'mem' | 'branch'
    dest: Optional[RegClass] = None
    srcs: tuple[RegClass, ...] = ()
    has_imm: bool = False
    has_fimm: bool = False
    has_label: bool = False
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_cond: bool = False
    is_call: bool = False
    is_return: bool = False
    is_trap: bool = False
    is_halt: bool = False
    asm_fmt: str = ""  # parse shape, see assembler

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store


def _info(op: Op, fu: str, **kw) -> tuple[Op, OpInfo]:
    return op, OpInfo(op=op, fu=fu, **kw)


OPCODES: dict[Op, OpInfo] = dict(
    [
        # ---- integer ALU: d, s, s --------------------------------------
        _info(Op.ADD, "alu", dest=INT, srcs=(INT, INT), asm_fmt="d,s,s"),
        _info(Op.SUB, "alu", dest=INT, srcs=(INT, INT), asm_fmt="d,s,s"),
        _info(Op.AND, "alu", dest=INT, srcs=(INT, INT), asm_fmt="d,s,s"),
        _info(Op.OR, "alu", dest=INT, srcs=(INT, INT), asm_fmt="d,s,s"),
        _info(Op.XOR, "alu", dest=INT, srcs=(INT, INT), asm_fmt="d,s,s"),
        _info(Op.SHL, "alu", dest=INT, srcs=(INT, INT), asm_fmt="d,s,s"),
        _info(Op.SHR, "alu", dest=INT, srcs=(INT, INT), asm_fmt="d,s,s"),
        _info(Op.SLT, "alu", dest=INT, srcs=(INT, INT), asm_fmt="d,s,s"),
        _info(Op.MOV, "alu", dest=INT, srcs=(INT,), asm_fmt="d,s"),
        _info(Op.MOVI, "alu", dest=INT, has_imm=True, asm_fmt="d,i"),
        # ---- integer ALU with immediate: d, s, imm ----------------------
        _info(Op.ADDI, "alu", dest=INT, srcs=(INT,), has_imm=True, asm_fmt="d,s,i"),
        _info(Op.SUBI, "alu", dest=INT, srcs=(INT,), has_imm=True, asm_fmt="d,s,i"),
        _info(Op.ANDI, "alu", dest=INT, srcs=(INT,), has_imm=True, asm_fmt="d,s,i"),
        _info(Op.ORI, "alu", dest=INT, srcs=(INT,), has_imm=True, asm_fmt="d,s,i"),
        _info(Op.XORI, "alu", dest=INT, srcs=(INT,), has_imm=True, asm_fmt="d,s,i"),
        _info(Op.SHLI, "alu", dest=INT, srcs=(INT,), has_imm=True, asm_fmt="d,s,i"),
        _info(Op.SHRI, "alu", dest=INT, srcs=(INT,), has_imm=True, asm_fmt="d,s,i"),
        _info(Op.SLTI, "alu", dest=INT, srcs=(INT,), has_imm=True, asm_fmt="d,s,i"),
        _info(Op.NOP, "alu", asm_fmt=""),
        # ---- integer multiply / divide ----------------------------------
        _info(Op.MUL, "mul", dest=INT, srcs=(INT, INT), asm_fmt="d,s,s"),
        _info(Op.DIV, "div", dest=INT, srcs=(INT, INT), asm_fmt="d,s,s"),
        _info(Op.REM, "div", dest=INT, srcs=(INT, INT), asm_fmt="d,s,s"),
        # conditional select: dest = src2 if src1 != 0 else src3 (branchless)
        _info(Op.CSEL, "alu", dest=INT, srcs=(INT, INT, INT), asm_fmt="d,s,s,s"),
        # ---- floating point ---------------------------------------------
        _info(Op.FADD, "fpu", dest=FP, srcs=(FP, FP), asm_fmt="d,s,s"),
        _info(Op.FSUB, "fpu", dest=FP, srcs=(FP, FP), asm_fmt="d,s,s"),
        _info(Op.FMUL, "fpu", dest=FP, srcs=(FP, FP), asm_fmt="d,s,s"),
        _info(Op.FMIN, "fpu", dest=FP, srcs=(FP, FP), asm_fmt="d,s,s"),
        _info(Op.FMAX, "fpu", dest=FP, srcs=(FP, FP), asm_fmt="d,s,s"),
        _info(Op.FABS, "fpu", dest=FP, srcs=(FP,), asm_fmt="d,s"),
        _info(Op.FNEG, "fpu", dest=FP, srcs=(FP,), asm_fmt="d,s"),
        _info(Op.FMOV, "fpu", dest=FP, srcs=(FP,), asm_fmt="d,s"),
        _info(Op.FLI, "fpu", dest=FP, has_fimm=True, asm_fmt="d,i"),
        _info(Op.FMADD, "fpu", dest=FP, srcs=(FP, FP, FP), asm_fmt="d,s,s,s"),
        _info(Op.FDIV, "fpdiv", dest=FP, srcs=(FP, FP), asm_fmt="d,s,s"),
        _info(Op.FSQRT, "fpdiv", dest=FP, srcs=(FP,), asm_fmt="d,s"),
        _info(Op.FCVT, "fpu", dest=FP, srcs=(INT,), asm_fmt="d,s"),
        _info(Op.FTOI, "fpu", dest=INT, srcs=(FP,), asm_fmt="d,s"),
        _info(Op.FEQ, "fpu", dest=INT, srcs=(FP, FP), asm_fmt="d,s,s"),
        _info(Op.FLT, "fpu", dest=INT, srcs=(FP, FP), asm_fmt="d,s,s"),
        _info(Op.FLE, "fpu", dest=INT, srcs=(FP, FP), asm_fmt="d,s,s"),
        # ---- memory -------------------------------------------------------
        _info(Op.LD, "mem", dest=INT, srcs=(INT,), has_imm=True, is_load=True, asm_fmt="d,a"),
        _info(Op.ST, "mem", srcs=(INT, INT), has_imm=True, is_store=True, asm_fmt="v,a"),
        _info(Op.FLD, "mem", dest=FP, srcs=(INT,), has_imm=True, is_load=True, asm_fmt="d,a"),
        _info(Op.FST, "mem", srcs=(FP, INT), has_imm=True, is_store=True, asm_fmt="v,a"),
        # ---- control flow --------------------------------------------------
        _info(Op.BEQ, "branch", srcs=(INT, INT), has_label=True, is_branch=True, is_cond=True, asm_fmt="s,s,L"),
        _info(Op.BNE, "branch", srcs=(INT, INT), has_label=True, is_branch=True, is_cond=True, asm_fmt="s,s,L"),
        _info(Op.BLT, "branch", srcs=(INT, INT), has_label=True, is_branch=True, is_cond=True, asm_fmt="s,s,L"),
        _info(Op.BGE, "branch", srcs=(INT, INT), has_label=True, is_branch=True, is_cond=True, asm_fmt="s,s,L"),
        _info(Op.BEQZ, "branch", srcs=(INT,), has_label=True, is_branch=True, is_cond=True, asm_fmt="s,L"),
        _info(Op.BNEZ, "branch", srcs=(INT,), has_label=True, is_branch=True, is_cond=True, asm_fmt="s,L"),
        _info(Op.JMP, "branch", has_label=True, is_branch=True, asm_fmt="L"),
        _info(Op.JAL, "branch", dest=INT, has_label=True, is_branch=True, is_call=True, asm_fmt="d,L"),
        _info(Op.JALR, "branch", srcs=(INT,), is_branch=True, is_return=True, asm_fmt="s"),
        # ---- system ----------------------------------------------------------
        _info(Op.TRAP, "alu", is_trap=True, asm_fmt=""),
        _info(Op.HALT, "alu", is_halt=True, asm_fmt=""),
    ]
)

#: Opcode lookup by mnemonic.
MNEMONICS: dict[str, Op] = {op.value: op for op in Op}
