"""Dynamic instruction instances.

A :class:`DynInst` is one executed instance of an instruction flowing
through the timing pipeline.  It carries (a) the architectural facts
recorded by whatever produced the stream — the functional executor for real
programs, or the statistical workload generator for SPEC-like traces — and
(b) mutable pipeline bookkeeping (rename tags, timestamps) that the core
fills in and that is reset when the instruction is replayed after a precise
exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.isa.opcodes import Op, OpInfo, OPCODES
from repro.isa.registers import RegRef

Value = Union[int, float]

#: Rename tag: (physical register id, version).  Version is always 0 for the
#: conventional renamer; the sharing renamer uses the PRT counter value.
Tag = tuple[int, int]


@dataclass(slots=True)
class DynInst:
    """One dynamic instruction."""

    seq: int
    pc: int
    op: Op
    dest: Optional[RegRef] = None
    srcs: tuple[RegRef, ...] = ()
    imm: Union[int, float, None] = None

    # --- control flow facts (valid when the op is a branch) ---------------
    taken: bool = False
    target: Optional[int] = None
    next_pc: int = 0

    # --- memory facts ------------------------------------------------------
    mem_addr: Optional[int] = None
    store_value: Optional[Value] = None

    # --- functional values, used for end-to-end verification ---------------
    result: Optional[Value] = None
    src_values: tuple[Value, ...] = ()

    # --- exception behaviour -------------------------------------------------
    #: raise a precise exception the first time this instruction executes
    faults: bool = False

    # --- micro-op support (single-use misprediction repair) ------------------
    micro_op: bool = False
    pre_renamed: bool = False

    # --- wrong-path speculation ------------------------------------------------
    #: fetched down a mispredicted path; never commits, never verified
    wrong_path: bool = False
    #: squashed by branch-resolution walk-back (ignore pending completions)
    squashed: bool = False

    # --- oracle hints (trace workloads only; used by the oracle renamer) -----
    #: per-source: this instruction is the value's only consumer
    hint_src_single_use: tuple = ()
    #: the value this instruction produces will have exactly one consumer
    hint_dest_single_use: bool = False
    #: forward chain depth of the produced value (bank-placement hint)
    hint_reuse_depth: int = 0

    # --- pipeline bookkeeping (reset on replay) -------------------------------
    dest_tag: Optional[Tag] = None
    src_tags: list = field(default_factory=list)
    prev_map: Optional[Tag] = None
    allocated_new: bool = False
    reused_src: Optional[int] = None
    alloc_bank: Optional[int] = None
    completed: bool = False
    exception_raised: bool = False
    mispredicted: bool = False
    fetch_cycle: int = -1
    rename_cycle: int = -1
    issue_cycle: int = -1
    complete_cycle: int = -1
    commit_cycle: int = -1

    #: back-reference to this instruction's live LSQ entry (set by the LSQ
    #: at insert, cleared at remove/flush); avoids a dict lookup per probe
    lsq_entry: Optional[object] = field(default=None, repr=False, compare=False)

    #: memoised OPCODES[self.op] (hot path: queried several times per stage)
    _info: Optional[OpInfo] = field(default=None, init=False, repr=False,
                                    compare=False)

    @property
    def info(self) -> OpInfo:
        info = self._info
        if info is None:
            info = OPCODES[self.op]
            self._info = info
        return info

    def reset_pipeline_state(self) -> None:
        """Clear pipeline bookkeeping before replaying after a squash."""
        if not self.pre_renamed:
            self.dest_tag = None
            self.src_tags = []
        self.prev_map = None
        self.allocated_new = False
        self.reused_src = None
        self.alloc_bank = None
        self.completed = False
        self.exception_raised = False
        self.mispredicted = False
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.commit_cycle = -1
        self.lsq_entry = None

    def __str__(self) -> str:
        dest = f" {self.dest}<-" if self.dest is not None else " "
        return f"[{self.seq}@{self.pc}] {self.op.value}{dest}{','.join(map(str, self.srcs))}"


class DynInstPool:
    """Free-pool recycler for :class:`DynInst` objects.

    Long streaming runs allocate one DynInst per dynamic instruction; with
    ``__slots__`` the objects are small but the allocator churn still
    dominates quiet workloads.  Producers (the functional executor, the
    synthetic workload generator) acquire instances here and the processor
    releases committed heads back — but only when no trace/oracle/hook can
    still hold a reference (the :class:`Processor` guards this).  Squashed
    wrong-path instructions are never released: the completion heap may
    still reference them.
    """

    __slots__ = ("_free", "allocated", "recycled")

    def __init__(self) -> None:
        self._free: list[DynInst] = []
        self.allocated = 0
        self.recycled = 0

    def acquire(
        self,
        seq: int,
        pc: int,
        op: Op,
        dest: Optional[RegRef] = None,
        srcs: tuple = (),
        imm: Union[int, float, None] = None,
        src_values: tuple = (),
        hint_src_single_use: tuple = (),
        hint_dest_single_use: bool = False,
    ) -> DynInst:
        free = self._free
        if not free:
            self.allocated += 1
            return DynInst(seq=seq, pc=pc, op=op, dest=dest, srcs=srcs,
                           imm=imm, src_values=src_values,
                           hint_src_single_use=hint_src_single_use,
                           hint_dest_single_use=hint_dest_single_use)
        self.recycled += 1
        dyn = free.pop()
        dyn.seq = seq
        dyn.pc = pc
        dyn.op = op
        dyn.dest = dest
        dyn.srcs = srcs
        dyn.imm = imm
        dyn.src_values = src_values
        dyn.hint_src_single_use = hint_src_single_use
        dyn.hint_dest_single_use = hint_dest_single_use
        # reset every remaining field to its dataclass default
        dyn.taken = False
        dyn.target = None
        dyn.next_pc = 0
        dyn.mem_addr = None
        dyn.store_value = None
        dyn.result = None
        dyn.faults = False
        dyn.micro_op = False
        dyn.pre_renamed = False
        dyn.wrong_path = False
        dyn.squashed = False
        dyn.hint_reuse_depth = 0
        dyn.dest_tag = None
        dyn.src_tags = []
        dyn.prev_map = None
        dyn.allocated_new = False
        dyn.reused_src = None
        dyn.alloc_bank = None
        dyn.completed = False
        dyn.exception_raised = False
        dyn.mispredicted = False
        dyn.fetch_cycle = -1
        dyn.rename_cycle = -1
        dyn.issue_cycle = -1
        dyn.complete_cycle = -1
        dyn.commit_cycle = -1
        dyn._info = OPCODES[op]
        dyn.lsq_entry = None
        return dyn

    def release(self, dyn: DynInst) -> None:
        self._free.append(dyn)
