"""Toy RISC ISA used by the simulator.

The ISA is deliberately small but complete enough to write real kernels
(GMM scoring, DNN layers, DCT, FIR, ...): 32 integer registers (``x0``..
``x31``), 32 floating-point registers (``f0``..``f31``), loads/stores,
conditional branches, calls/returns and a ``trap`` instruction for precise
exception testing.  Programs are assembled from text with
:func:`repro.isa.assemble` and executed functionally with
:class:`repro.isa.FunctionalExecutor`, which yields the dynamic instruction
stream (:class:`repro.isa.DynInst`) consumed by the timing pipeline.
"""

from repro.isa.registers import RegClass, RegRef, INT_REGS, FP_REGS, reg, xreg, freg
from repro.isa.opcodes import Op, OpInfo, OPCODES
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.isa.assembler import assemble, AssemblerError
from repro.isa.dyninst import DynInst
from repro.isa.memory import SparseMemory
from repro.isa.executor import (
    FunctionalExecutor,
    ArchState,
    FaultModel,
    NoFaults,
    FirstTouchFaults,
)

__all__ = [
    "RegClass",
    "RegRef",
    "INT_REGS",
    "FP_REGS",
    "reg",
    "xreg",
    "freg",
    "Op",
    "OpInfo",
    "OPCODES",
    "Instruction",
    "Program",
    "assemble",
    "AssemblerError",
    "DynInst",
    "SparseMemory",
    "FunctionalExecutor",
    "ArchState",
    "FaultModel",
    "NoFaults",
    "FirstTouchFaults",
]
