"""Program container: assembled instructions plus initial data memory."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.isa.instruction import Instruction

#: Base address of the data segment laid out by the assembler.
DATA_BASE = 0x1_0000

#: Instruction size in bytes (used to map instruction index -> fetch address).
INST_BYTES = 4


@dataclass
class Program:
    """An assembled program.

    ``insts`` is indexed by PC (instruction index).  ``labels`` maps label
    names to either instruction indices (text labels) or byte addresses
    (data labels).  ``data`` holds the initial contents of memory as a
    mapping from 8-byte-aligned addresses to values.
    """

    insts: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data: dict[int, Union[int, float]] = field(default_factory=dict)
    entry: int = 0

    def __len__(self) -> int:
        return len(self.insts)

    def fetch_address(self, pc: int) -> int:
        """Byte address of the instruction at ``pc`` (for the I-cache)."""
        return pc * INST_BYTES
