"""Static instruction representation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.isa.opcodes import Op, OpInfo, OPCODES
from repro.isa.registers import RegRef


@dataclass(frozen=True)
class Instruction:
    """One static instruction of a :class:`repro.isa.Program`.

    ``target`` holds the branch target as an instruction index (filled in by
    the assembler after label resolution).  ``imm`` is the integer or float
    immediate for immediate-form and memory instructions.
    """

    op: Op
    dest: Optional[RegRef] = None
    srcs: tuple[RegRef, ...] = ()
    imm: Union[int, float, None] = None
    target: Optional[int] = None
    label: Optional[str] = None  # unresolved label name (pre-assembly)

    @property
    def info(self) -> OpInfo:
        return OPCODES[self.op]

    def __str__(self) -> str:
        info = self.info
        parts = []
        if self.dest is not None:
            parts.append(str(self.dest))
        if info.is_store:
            parts.append(str(self.srcs[0]))
            parts.append(f"{self.imm}({self.srcs[1]})")
        elif info.is_load:
            parts.append(f"{self.imm}({self.srcs[0]})")
        else:
            parts.extend(str(s) for s in self.srcs)
            if info.has_imm or info.has_fimm:
                parts.append(str(self.imm))
        if info.has_label:
            parts.append(self.label if self.label is not None else f"@{self.target}")
        return f"{self.op.value} " + ", ".join(parts) if parts else self.op.value
