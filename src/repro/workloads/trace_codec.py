"""Binary columnar trace codec (the :class:`TraceCache` storage format).

:mod:`repro.workloads.trace_io` (JSON lines) remains the human-readable
interchange format; this module is the *fast* one.  A trace is stored as
a versioned, checksummed block of fixed-width columns — one array per
DynInst field — instead of one JSON object per instruction, so decoding
a workload is a handful of C-level ``struct.unpack`` calls plus one
tight materialization loop, rather than per-line ``json.loads`` + dict
lookups + register-name parsing.  Measured on the synthetic benchmark
traces this decodes >5x faster than gzipped JSON lines, and the parsed
columns can be kept and re-materialized per pass (every simulation needs
fresh :class:`~repro.isa.dyninst.DynInst` objects because the pipeline
mutates them in place), which is another ~3x on top.

Layout (all little-endian)::

    header   magic "RTRC" | version u16 | schema digest 8B | count u32
             | payload crc32 u32 | payload length u64
    payload  op u8[n] | flags u8[n] | seq u32[n] | pc u32[n]
             | next_pc u32[n] | dest u8[n] | srcs (count u8[n] + flat
             regs u8[...]) | sparse: target u32, h_srcs (count+mask),
             h_depth u32 | tagged value columns: imm, mem_addr,
             store_value, result | src_values (count u8[n] + tagged
             stream)

Tagged value columns carry ``Optional[int | float | bool]`` payloads
grouped *by tag* (all i64 together, all doubles together, ...), so the
bulk of the data moves through ``struct.unpack`` instead of a per-value
Python branch.  Arbitrary-precision integers that do not fit in an i64
fall back to a length-prefixed decimal blob.

The schema digest hashes the format version, the opcode table and the
column layout: a trace written by a different codec revision fails to
decode with :class:`TraceCodecError` ("version skew"), which the cache
layer treats as a miss.  The trailing crc32 covers the whole payload, so
corruption and truncation are likewise loud, immediate errors — never a
silently wrong stream.

Encoding is defined to be *semantically identical* to a JSON-lines round
trip: fields whose value is ``None`` (or a ``False`` flag) are elided the
same way :func:`repro.workloads.trace_io._encode` elides them, so
``decode(encode(insts))`` equals what ``trace_io`` would have
reconstructed, bit for bit — the hypothesis property in
``tests/test_trace_codec.py`` pins this over fuzzer-generated programs.
"""

from __future__ import annotations

import hashlib
import os
import struct
import zlib
from typing import Iterable, Iterator, List, Optional

from repro.isa.dyninst import DynInst
from repro.isa.opcodes import OPCODES, Op
from repro.isa.registers import INT_REGS, RegClass, RegRef

try:  # optional acceleration only; the codec itself is stdlib-only
    import numpy as _np
except ImportError:  # pragma: no cover - depends on the environment
    _np = None


def numpy_backend():
    """The numpy module, or ``None`` when absent or disabled.

    Checked at use time (not import time) so ``REPRO_NO_NUMPY=1`` can be
    flipped per call site in tests; every numpy result is converted back
    to plain Python ints (``.tolist()``) so the accelerated and stdlib
    paths are indistinguishable downstream.
    """
    if _np is not None and os.environ.get("REPRO_NO_NUMPY", "") in ("", "0"):
        return _np
    return None


MAGIC = b"RTRC"
FORMAT_VERSION = 1

#: opcode table in enum-definition order; the schema digest pins it
_OP_LIST: tuple = tuple(Op)
_OP_INDEX = {op: i for i, op in enumerate(_OP_LIST)}

#: register lookup table: byte (cls * INT_REGS + idx) -> RegRef
_REG_TABLE = tuple(RegRef(cls, idx) for cls in (RegClass.INT, RegClass.FP)
                   for idx in range(INT_REGS))
_REG_INDEX = {ref: i for i, ref in enumerate(_REG_TABLE)}
_NO_REG = 0xFF

#: dest-column lookup: valid register bytes, a sentinel for the invalid
#: gap, and None at _NO_REG — one C-level index per instruction
_BAD_REG = object()
_DEST_TABLE = (list(_REG_TABLE)
               + [_BAD_REG] * (_NO_REG - len(_REG_TABLE)) + [None])

#: static metadata by op *byte* (columnar scans never build Op objects)
_INFO_TABLE = tuple(OPCODES[op] for op in _OP_LIST)

#: public alias for columnar consumers (the sampling warmer)
OP_INFO_TABLE = _INFO_TABLE

#: ``bytes.translate`` tables marking instruction classes: byte -> 1/0.
#: Classifying a whole op column is then one C-level translate call.
_BRANCH_MARKS = bytes(
    1 if b < len(_OP_LIST) and _INFO_TABLE[b].is_branch else 0
    for b in range(256))
_MEM_MARKS = bytes(
    1 if b < len(_OP_LIST) and _INFO_TABLE[b].is_mem else 0
    for b in range(256))

_ONE = b"\x01"

#: per-instruction flag bits
_F_TAKEN = 1
_F_FAULTS = 2
_F_HDEST = 4
_F_TARGET = 8
_F_HSRCS = 16
_F_HDEPTH = 32

#: public alias: the taken bit of the packed flags column
F_TAKEN = _F_TAKEN

#: value tags of the tagged columns
_T_I64 = 1
_T_F64 = 2
_T_BOOL = 3
_T_BIG = 4

#: flag -> translate table marking instructions carrying that flag bit,
#: for O(1)-per-query prefix counts over the packed flags column
_FLAG_MARKS = {
    flag: bytes(1 if b & flag else 0 for b in range(256))
    for flag in (_F_HDEST, _F_TARGET, _F_HSRCS, _F_HDEPTH)
}


def _mark_indices(marks: bytes) -> list:
    """Indices of the set bytes in a 0/1 marks string."""
    np = numpy_backend()
    if np is not None:
        return np.flatnonzero(np.frombuffer(marks, dtype=np.uint8)).tolist()
    out: list = []
    append = out.append
    find = marks.find
    i = find(_ONE)
    while i != -1:
        append(i)
        i = find(_ONE, i + 1)
    return out


_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1
_U32_MAX = (1 << 32) - 1

_HEADER = struct.Struct("<4sH8sIIQ")

_LAYOUT = ("op|flags|seq|pc|next_pc|dest|srcs|target|h_srcs|h_depth"
           "|imm|mem_addr|store_value|result|src_values")


def schema_digest() -> bytes:
    """8-byte digest of everything a reader must agree on."""
    blob = "\0".join([str(FORMAT_VERSION),
                      ",".join(op.value for op in _OP_LIST), _LAYOUT])
    return hashlib.sha256(blob.encode()).digest()[:8]


_SCHEMA = schema_digest()


class TraceCodecError(ValueError):
    """The blob is not a valid trace: corrupt, truncated, or written by a
    different codec revision.  Cache layers treat this as a miss."""


# ---------------------------------------------------------------------- encode
def _encode_value(value, tags: bytearray, i64s: list, f64s: list,
                  bools: bytearray, bigs: list) -> None:
    """Append one non-None value to the tag-grouped streams."""
    cls = type(value)
    if cls is bool:
        tags.append(_T_BOOL)
        bools.append(1 if value else 0)
    elif cls is int:
        if _I64_MIN <= value <= _I64_MAX:
            tags.append(_T_I64)
            i64s.append(value)
        else:
            tags.append(_T_BIG)
            bigs.append(str(value).encode("ascii"))
    elif cls is float:
        tags.append(_T_F64)
        f64s.append(value)
    else:
        raise TraceCodecError(f"unencodable value type {cls.__name__!r}")


def _pack_tagged(indices: list, tags: bytearray, i64s: list, f64s: list,
                 bools: bytearray, bigs: list, parts: list) -> None:
    n = len(indices)
    parts.append(struct.pack(f"<I{n}I", n, *indices))
    parts.append(bytes(tags))
    parts.append(struct.pack(f"<I{len(i64s)}q", len(i64s), *i64s))
    parts.append(struct.pack(f"<I{len(f64s)}d", len(f64s), *f64s))
    parts.append(struct.pack("<I", len(bools)))
    parts.append(bytes(bools))
    parts.append(struct.pack("<I", len(bigs)))
    for blob in bigs:
        parts.append(struct.pack("<I", len(blob)))
        parts.append(blob)


def _u32_column(values: list, what: str) -> bytes:
    for value in values:
        if not 0 <= value <= _U32_MAX:
            raise TraceCodecError(f"{what} {value!r} out of u32 range")
    return struct.pack(f"<{len(values)}I", *values)


def encode(insts: Iterable[DynInst]) -> bytes:
    """Serialize a trace to the columnar binary format.

    Raises :class:`TraceCodecError` for streams the fixed-width columns
    cannot represent (callers fall back to the JSON-lines container).
    """
    ops = bytearray()
    flags = bytearray()
    seqs: list = []
    pcs: list = []
    next_pcs: list = []
    dests = bytearray()
    src_counts = bytearray()
    src_regs = bytearray()
    targets: list = []
    hsrc_bytes = bytearray()
    hdepths: list = []
    # tagged columns: (indices, tags, i64s, f64s, bools, bigs)
    imm_c = ([], bytearray(), [], [], bytearray(), [])
    mem_c = ([], bytearray(), [], [], bytearray(), [])
    store_c = ([], bytearray(), [], [], bytearray(), [])
    result_c = ([], bytearray(), [], [], bytearray(), [])
    sv_counts = bytearray()
    sv_tags = bytearray()
    sv_i64s: list = []
    sv_f64s: list = []
    sv_bools = bytearray()
    sv_bigs: list = []

    count = 0
    for dyn in insts:
        index = count
        count += 1
        try:
            ops.append(_OP_INDEX[dyn.op])
        except KeyError:
            raise TraceCodecError(f"unknown opcode {dyn.op!r}")
        seqs.append(dyn.seq)
        pcs.append(dyn.pc)
        next_pcs.append(dyn.next_pc)
        flag = 0
        if dyn.taken:
            flag |= _F_TAKEN
        if dyn.faults:
            flag |= _F_FAULTS
        if dyn.hint_dest_single_use:
            flag |= _F_HDEST
        if dyn.target is not None:
            flag |= _F_TARGET
            targets.append(dyn.target)
        hints = dyn.hint_src_single_use
        # trace_io semantics: the column exists only when some hint is set
        if hints and any(hints):
            if len(hints) > 8:
                raise TraceCodecError("more than 8 source hints")
            flag |= _F_HSRCS
            mask = 0
            for bit, hint in enumerate(hints):
                if hint:
                    mask |= 1 << bit
            hsrc_bytes.append(len(hints))
            hsrc_bytes.append(mask)
        if dyn.hint_reuse_depth:
            flag |= _F_HDEPTH
            hdepths.append(dyn.hint_reuse_depth)
        flags.append(flag)
        if dyn.dest is None:
            dests.append(_NO_REG)
        else:
            try:
                dests.append(_REG_INDEX[dyn.dest])
            except (KeyError, TypeError):
                raise TraceCodecError(f"unencodable register {dyn.dest!r}")
        srcs = dyn.srcs
        src_counts.append(len(srcs))
        for ref in srcs:
            try:
                src_regs.append(_REG_INDEX[ref])
            except (KeyError, TypeError):
                raise TraceCodecError(f"unencodable register {ref!r}")
        # value fields follow trace_io's "None or False is elided" rule
        for value, column in ((dyn.imm, imm_c), (dyn.mem_addr, mem_c),
                              (dyn.store_value, store_c),
                              (dyn.result, result_c)):
            if value is None or value is False:
                continue
            column[0].append(index)
            _encode_value(value, *column[1:])
        values = dyn.src_values
        if len(values) > 255:
            raise TraceCodecError("more than 255 source values")
        sv_counts.append(len(values))
        for value in values:
            if value is None:
                # JSON would write null; keep positional fidelity
                sv_tags.append(0)
                continue
            _encode_value(value, sv_tags, sv_i64s, sv_f64s, sv_bools,
                          sv_bigs)

    parts = [bytes(ops), bytes(flags),
             _u32_column(seqs, "seq"), _u32_column(pcs, "pc"),
             _u32_column(next_pcs, "next_pc"), bytes(dests),
             bytes(src_counts),
             struct.pack("<I", len(src_regs)), bytes(src_regs),
             struct.pack("<I", len(targets)),
             _u32_column(targets, "target"),
             struct.pack("<I", len(hsrc_bytes) // 2), bytes(hsrc_bytes),
             struct.pack("<I", len(hdepths)),
             _u32_column(hdepths, "hint_reuse_depth")]
    for column in (imm_c, mem_c, store_c, result_c):
        _pack_tagged(*column, parts)
    parts.append(bytes(sv_counts))
    # src_values stream is positional (counts column above): no indices
    _pack_tagged([], sv_tags, sv_i64s, sv_f64s, sv_bools, sv_bigs, parts)
    payload = b"".join(parts)
    header = _HEADER.pack(MAGIC, FORMAT_VERSION, _SCHEMA, count,
                          zlib.crc32(payload), len(payload))
    return header + payload


# ---------------------------------------------------------------------- decode
def _check_header(data: bytes) -> tuple[int, int]:
    """Validate magic/version/length/crc; returns (count, payload offset)."""
    if len(data) < _HEADER.size:
        raise TraceCodecError("truncated trace header")
    magic, version, schema, count, crc, length = \
        _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise TraceCodecError("bad magic: not a columnar trace")
    if version != FORMAT_VERSION or schema != _SCHEMA:
        raise TraceCodecError(
            f"version skew: blob v{version} vs codec v{FORMAT_VERSION}")
    if len(data) - _HEADER.size != length:
        raise TraceCodecError("truncated or padded trace payload")
    if zlib.crc32(memoryview(data)[_HEADER.size:]) != crc:
        raise TraceCodecError("trace payload checksum mismatch")
    return count, _HEADER.size


def trace_count(data: bytes) -> int:
    """Instruction count from a validated header (full crc check)."""
    count, offset = _check_header(data)
    return count


def validate_blob(data: bytes) -> int:
    """Validate a trace blob end to end; returns its instruction count.

    The canonical acceptance check for ``.rtc`` bytes arriving from an
    untrusted hop (the fleet's content-addressed store): magic, version,
    schema digest and the whole-payload crc32 must all hold, or
    :class:`TraceCodecError` is raised and the blob must be discarded.
    """
    return trace_count(data)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int) -> None:
        self.data = data
        self.pos = pos

    def bytes_(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise TraceCodecError("truncated column")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u32(self) -> int:
        return struct.unpack_from("<I", self.bytes_(4))[0]

    def array(self, fmt: str, n: int, width: int) -> tuple:
        return struct.unpack(f"<{n}{fmt}", self.bytes_(n * width))


def _read_tagged(reader: _Reader, count: int) -> list:
    """One tagged value column -> per-instruction values (None default)."""
    n = reader.u32()
    indices = reader.array("I", n, 4)
    tags = reader.bytes_(n)
    i64_raw = reader.array("q", reader.u32(), 8)
    f64_raw = reader.array("d", reader.u32(), 8)
    bool_raw = reader.bytes_(reader.u32())
    n_big = reader.u32()
    big_raw = [int(reader.bytes_(reader.u32()).decode("ascii"))
               for _ in range(n_big)]
    values: list = [None] * count
    if n == 0:
        return values
    if max(indices) >= count:
        raise TraceCodecError("value index out of range")
    # homogeneous columns (the common case: a trace's imm / mem_addr /
    # result values are almost always all-int or all-float) skip the
    # per-value tag dispatch entirely
    if len(i64_raw) == n and not (f64_raw or bool_raw or big_raw):
        for pair in zip(indices, i64_raw):
            values[pair[0]] = pair[1]
        return values
    if len(f64_raw) == n and not (i64_raw or bool_raw or big_raw):
        for pair in zip(indices, f64_raw):
            values[pair[0]] = pair[1]
        return values
    i64s, f64s = iter(i64_raw), iter(f64_raw)
    bools, bigs = iter(bool_raw), iter(big_raw)
    for index, tag in zip(indices, tags):
        if index >= count:
            raise TraceCodecError("value index out of range")
        values[index] = _next_tagged(tag, i64s, f64s, bools, bigs)
    return values


def _next_tagged(tag: int, i64s, f64s, bools, bigs):
    try:
        if tag == _T_I64:
            return next(i64s)
        if tag == _T_F64:
            return next(f64s)
        if tag == _T_BOOL:
            return bool(next(bools))
        if tag == _T_BIG:
            return next(bigs)
    except StopIteration:
        raise TraceCodecError("tagged column underflow")
    if tag == 0:
        return None
    raise TraceCodecError(f"unknown value tag {tag}")


class TraceColumns:
    """A fully parsed (but not yet materialized) trace.

    Parsing happens once; :meth:`materialize` then builds fresh
    :class:`~repro.isa.dyninst.DynInst` objects per call — the pipeline
    mutates instructions in place, so every simulation pass needs its
    own copies.  Keeping the parsed columns between passes is what makes
    re-running many sweep points on one workload cheap.
    """

    __slots__ = ("count", "ops", "op_bytes", "flags", "seqs", "pcs",
                 "next_pcs", "dests", "srcss", "targets", "hsrcs",
                 "hdepths", "imms", "mem_addrs", "store_values", "results",
                 "src_valuess", "_pc_raw", "_branch_idx", "_mem_idx",
                 "_fetch_runs", "_flag_mark_cache")

    def __init__(self, data: bytes) -> None:
        count, offset = _check_header(data)
        self.count = count
        reader = _Reader(data, offset)
        op_list = _OP_LIST
        self.op_bytes = reader.bytes_(count)
        try:
            self.ops = [op_list[b] for b in self.op_bytes]
        except IndexError:
            raise TraceCodecError("opcode index out of range")
        self.flags = reader.bytes_(count)
        self.seqs = reader.array("I", count, 4)
        self._pc_raw = reader.bytes_(count * 4)
        self.pcs = struct.unpack(f"<{count}I", self._pc_raw)
        # range-scan caches, built lazily on first query
        self._branch_idx: Optional[list] = None
        self._mem_idx: Optional[list] = None
        self._fetch_runs: dict = {}
        self._flag_mark_cache: dict = {}
        self.next_pcs = reader.array("I", count, 4)
        dest_table = _DEST_TABLE
        self.dests = [dest_table[b] for b in reader.bytes_(count)]
        if _BAD_REG in self.dests:
            raise TraceCodecError("register index out of range")
        src_counts = reader.bytes_(count)
        flat = reader.bytes_(reader.u32())
        # srcs tuples repeat heavily (32 logical registers, 1-3 sources):
        # intern by raw byte pattern so repeats are one dict hit, and the
        # resulting tuples are shared (DynInst never mutates .srcs)
        regs = _REG_TABLE
        interned: dict = {}
        srcss = []
        append_srcs = srcss.append
        pos = 0
        try:
            for n in src_counts:
                end = pos + n
                key = flat[pos:end]
                srcs = interned.get(key)
                if srcs is None:
                    srcs = interned[key] = tuple(regs[b] for b in key)
                append_srcs(srcs)
                pos = end
        except IndexError:
            raise TraceCodecError("register index out of range")
        if pos != len(flat):
            raise TraceCodecError("source register column length mismatch")
        self.srcss = srcss
        self.targets = reader.array("I", reader.u32(), 4)
        hs_count = reader.u32()
        hs_raw = reader.bytes_(hs_count * 2)
        # (length, mask) pairs come from a tiny alphabet: intern them
        hs_memo: dict = {}
        hsrcs = []
        append_hs = hsrcs.append
        for i in range(hs_count):
            key = hs_raw[i * 2:i * 2 + 2]
            hints = hs_memo.get(key)
            if hints is None:
                hints = hs_memo[key] = tuple(
                    bool(key[1] >> bit & 1) for bit in range(key[0]))
            append_hs(hints)
        self.hsrcs = hsrcs
        self.hdepths = reader.array("I", reader.u32(), 4)
        self.imms = _read_tagged(reader, count)
        self.mem_addrs = _read_tagged(reader, count)
        self.store_values = _read_tagged(reader, count)
        self.results = _read_tagged(reader, count)
        sv_counts = reader.bytes_(count)
        n = reader.u32()
        if n != 0:
            raise TraceCodecError("src_values column has unexpected indices")
        total = sum(sv_counts)
        tags = reader.bytes_(total)
        i64_raw = reader.array("q", reader.u32(), 8)
        f64_raw = reader.array("d", reader.u32(), 8)
        bool_raw = reader.bytes_(reader.u32())
        n_big = reader.u32()
        big_raw = [int(reader.bytes_(reader.u32()).decode("ascii"))
                   for _ in range(n_big)]
        if len(i64_raw) == total and not (f64_raw or bool_raw or big_raw):
            flat_values: list = list(i64_raw)
        else:
            i64s, f64s = iter(i64_raw), iter(f64_raw)
            bools, bigs = iter(bool_raw), iter(big_raw)
            flat_values = [_next_tagged(tag, i64s, f64s, bools, bigs)
                           for tag in tags]
        src_valuess = []
        pos = 0
        for n_values in sv_counts:
            src_valuess.append(tuple(flat_values[pos:pos + n_values]))
            pos += n_values
        self.src_valuess = src_valuess
        if reader.pos != len(data):
            raise TraceCodecError("trailing bytes after trace payload")

    # ------------------------------------------------------- range queries
    def branch_indices(self) -> list:
        """Sorted indices of the branch instructions (cached).

        One C-level ``bytes.translate`` over the packed op column plus an
        index scan — no :class:`DynInst` is ever built.
        """
        idx = self._branch_idx
        if idx is None:
            idx = self._branch_idx = _mark_indices(
                self.op_bytes.translate(_BRANCH_MARKS))
        return idx

    def mem_indices(self) -> list:
        """Sorted indices of loads/stores carrying a memory address."""
        idx = self._mem_idx
        if idx is None:
            mem_addrs = self.mem_addrs
            idx = self._mem_idx = [
                i for i in _mark_indices(self.op_bytes.translate(_MEM_MARKS))
                if mem_addrs[i] is not None]
        return idx

    def fetch_line_starts(self, line_bytes: int) -> list:
        """Sorted indices where the i-fetch line changes (cached per size).

        Index 0 is always a start; a consumer resuming mid-stream must
        still compare its first event against its own line tracking,
        because a range can begin inside a run.
        """
        starts = self._fetch_runs.get(line_bytes)
        if starts is not None:
            return starts
        count = self.count
        np = numpy_backend()
        if np is not None:
            lines = np.frombuffer(self._pc_raw, dtype="<u4") // line_bytes
            starts = (np.flatnonzero(lines[1:] != lines[:-1]) + 1).tolist()
            if count:
                starts.insert(0, 0)
        else:
            starts = [0] if count else []
            append = starts.append
            pcs = self.pcs
            last = pcs[0] // line_bytes if count else 0
            for i in range(1, count):
                line = pcs[i] // line_bytes
                if line != last:
                    last = line
                    append(i)
        self._fetch_runs[line_bytes] = starts
        return starts

    def flag_count_before(self, flag: int, lo: int) -> int:
        """Instructions below index ``lo`` carrying ``flag`` (the position
        of index ``lo``'s entry within that flag's sparse column)."""
        marks = self._flag_mark_cache.get(flag)
        if marks is None:
            marks = self._flag_mark_cache[flag] = \
                self.flags.translate(_FLAG_MARKS[flag])
        return marks.count(_ONE, 0, lo)

    # ------------------------------------------------------ materialization
    def materialize(self) -> List[DynInst]:
        """Fresh :class:`DynInst` objects for one simulation pass."""
        return self.materialize_range(0, self.count)

    def materialize_range(self, lo: int, hi: int) -> List[DynInst]:
        """Fresh :class:`DynInst` objects for indices ``[lo, hi)`` only.

        The sampling engine materializes just its warm zones and detailed
        windows this way; skimmed regions never become objects at all.
        Sparse columns (targets, source hints, reuse depths) are entered
        at the right offset via flag prefix counts over the packed flags
        column.
        """
        lo = max(lo, 0)
        hi = min(hi, self.count)
        if lo >= hi:
            return []
        if lo == 0:
            t0 = h0 = d0 = 0
        else:
            t0 = self.flag_count_before(_F_TARGET, lo)
            h0 = self.flag_count_before(_F_HSRCS, lo)
            d0 = self.flag_count_before(_F_HDEPTH, lo)
        out: List[DynInst] = []
        append = out.append
        targets = iter(self.targets[t0:])
        hsrcs = iter(self.hsrcs[h0:])
        hdepths = iter(self.hdepths[d0:])
        make = DynInst
        for (op, flag, seq, pc, next_pc, dest, srcs, imm, mem_addr,
             store_value, result, src_values) in zip(
                self.ops[lo:hi], self.flags[lo:hi], self.seqs[lo:hi],
                self.pcs[lo:hi], self.next_pcs[lo:hi], self.dests[lo:hi],
                self.srcss[lo:hi], self.imms[lo:hi], self.mem_addrs[lo:hi],
                self.store_values[lo:hi], self.results[lo:hi],
                self.src_valuess[lo:hi]):
            dyn = make(seq, pc, op, dest, srcs, imm)
            dyn.next_pc = next_pc
            if src_values:
                dyn.src_values = src_values
            if mem_addr is not None:
                dyn.mem_addr = mem_addr
            if result is not None:
                dyn.result = result
            if store_value is not None:
                dyn.store_value = store_value
            if flag:
                if flag & _F_TAKEN:
                    dyn.taken = True
                if flag & _F_TARGET:
                    dyn.target = next(targets)
                if flag & _F_FAULTS:
                    dyn.faults = True
                if flag & _F_HDEST:
                    dyn.hint_dest_single_use = True
                if flag & _F_HSRCS:
                    dyn.hint_src_single_use = next(hsrcs)
                if flag & _F_HDEPTH:
                    dyn.hint_reuse_depth = next(hdepths)
            append(dyn)
        return out

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self.materialize())


def decode_columns(data: bytes) -> TraceColumns:
    """Parse and validate a blob into reusable columns."""
    return TraceColumns(data)


def decode(data: bytes) -> List[DynInst]:
    """Blob -> fresh DynInst list (parse + materialize in one step)."""
    return TraceColumns(data).materialize()
