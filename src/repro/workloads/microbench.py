"""Directed microbenchmarks.

Tiny assembly generators that isolate one behaviour each — the classic
way to characterise a renaming scheme's best and worst cases:

* ``chain_ladder``   — back-to-back single-use chains (the scheme's best
  case: every link is a guaranteed reuse);
* ``wide_independent`` — maximal ILP with no reuse opportunity (every
  value is multi-use or long-lived);
* ``pointer_chase``  — serialised loads (the window fills, registers idle);
* ``branch_storm``   — dense data-dependent branches;
* ``producer_consumer`` — single-use values whose consumers do *not*
  redefine the register (exercises the predicted-reuse path only);
* ``register_hog``   — many long-lived values (worst case: nothing is
  reusable, committed state dominates the file).

Each returns assembly text; ``build`` assembles and sizes the loop.
"""

from __future__ import annotations

from repro.isa import Program, assemble


def chain_ladder(iters: int = 200, links: int = 6) -> str:
    """Each iteration runs a ``links``-deep single-use chain on x1."""
    body = "\n".join("      add  x1, x1, x2" for _ in range(links))
    return f"""
    main: movi x9, {iters}
          movi x1, 1
          movi x2, 3
    loop: movi x1, 7
{body}
          subi x9, x9, 1
          bnez x9, loop
          halt
    """


def wide_independent(iters: int = 200, width: int = 6) -> str:
    """``width`` independent multi-use values per iteration."""
    lines = []
    for i in range(width):
        a = 1 + (i % 6)
        b = 1 + ((i + 1) % 6)
        dest = 10 + i
        lines.append(f"      add  x{dest}, x{a}, x{b}")
        lines.append(f"      xor  x{16 + i}, x{dest}, x{a}")
        lines.append(f"      and  x{22 + i % 6}, x{dest}, x{b}")
    body = "\n".join(lines)
    return f"""
    main: movi x9, {iters}
          movi x1, 1
          movi x2, 2
          movi x3, 3
          movi x4, 4
          movi x5, 5
          movi x6, 6
    loop:
{body}
          subi x9, x9, 1
          bnez x9, loop
          halt
    """


def pointer_chase(nodes: int = 64, hops: int = 400) -> str:
    """A linked ring in memory; each load depends on the previous."""
    # node i at arr + 8*i holds the address of node (i * 7 + 3) % nodes
    ring = [0] * nodes
    for i in range(nodes):
        ring[i] = 0x1_0000 + 8 * ((i * 7 + 3) % nodes)
    words = " ".join(str(v) for v in ring)
    return f"""
    .data
    ring: .word {words}
    .text
    main: movi x9, {hops}
          movi x1, ring
    loop: ld   x1, 0(x1)
          subi x9, x9, 1
          bnez x9, loop
          halt
    """


def branch_storm(iters: int = 300) -> str:
    """Dense data-dependent branches driven by an LCG's high bits
    (low bits of simple recurrences are too predictable)."""
    return f"""
    main: movi x9, {iters}
          movi x1, 88172645463325252
          movi x10, 6364136223846793005
    loop: mul  x1, x1, x10
          addi x1, x1, 1442695041
          shri x2, x1, 61
          andi x3, x2, 1
          beqz x3, skip1
          addi x6, x6, 1
    skip1: andi x3, x2, 2
          beqz x3, skip2
          addi x7, x7, 1
    skip2: andi x3, x2, 4
          bnez x3, skip3
          addi x8, x8, 1
    skip3: subi x9, x9, 1
          bnez x9, loop
          halt
    """


def producer_consumer(iters: int = 250) -> str:
    """Single-use values consumed by a *different* register's definition
    (the predicted-reuse path; no guaranteed chains)."""
    return f"""
    main: movi x9, {iters}
          movi x2, 5
    loop: add  x1, x2, x9    # producer
          add  x3, x1, x2    # sole consumer, different dest
          add  x4, x3, x2    # sole consumer of x3
          add  x5, x4, x2
          add  x6, x5, x2
          mov  x2, x6
          subi x9, x9, 1
          bnez x9, loop
          halt
    """


def register_hog(iters: int = 150) -> str:
    """Values stay live across the whole loop body: no reuse possible."""
    defs = "\n".join(f"      addi x{i}, x{i}, {i}" for i in range(1, 25))
    # every value is read twice (the accumulate and the xor), so no value
    # is single-use and nothing is reusable
    uses = "\n".join(
        f"      add  x25, x25, x{i}\n      xor  x27, x25, x{i}"
        for i in range(1, 25)
    )
    return f"""
    main: movi x26, {iters}
    loop:
{defs}
{uses}
          subi x26, x26, 1
          bnez x26, loop
          halt
    """


MICROBENCHES = {
    "chain_ladder": chain_ladder,
    "wide_independent": wide_independent,
    "pointer_chase": pointer_chase,
    "branch_storm": branch_storm,
    "producer_consumer": producer_consumer,
    "register_hog": register_hog,
}


def build(name: str, **kw) -> Program:
    """Assemble one microbenchmark by name."""
    return assemble(MICROBENCHES[name](**kw))
