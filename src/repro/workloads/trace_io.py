"""Dynamic-instruction trace serialization (JSON lines).

Lets workload traces be captured once and replayed (e.g. to compare
schemes on byte-identical inputs, or to ship a workload without its
generator).  Each line is one DynInst; architectural facts only — pipeline
bookkeeping is not serialized.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator

from repro.isa.dyninst import DynInst
from repro.isa.opcodes import MNEMONICS, Op
from repro.isa.registers import RegRef, reg

_FIELDS = ("seq", "pc", "imm", "taken", "target", "next_pc", "mem_addr",
           "store_value", "result", "faults")


def _encode(dyn: DynInst) -> dict:
    record: dict = {"op": dyn.op.value}
    for field in _FIELDS:
        value = getattr(dyn, field)
        # identity checks: 0 == False in Python, but a zero-valued field
        # (target=0, result=0, ...) must still be serialized
        if value is None or value is False:
            continue
        record[field] = value
    if dyn.dest is not None:
        record["dest"] = str(dyn.dest)
    if dyn.srcs:
        record["srcs"] = [str(s) for s in dyn.srcs]
    if dyn.src_values:
        record["src_values"] = list(dyn.src_values)
    # oracle liveness hints (consumed by the hinted renamer): without
    # them a round-tripped trace would silently degrade `hinted` runs
    if dyn.hint_dest_single_use:
        record["h_dest"] = True
    if any(dyn.hint_src_single_use):
        record["h_srcs"] = [1 if h else 0 for h in dyn.hint_src_single_use]
    if dyn.hint_reuse_depth:
        record["h_depth"] = dyn.hint_reuse_depth
    return record


def _decode(record: dict) -> DynInst:
    dyn = DynInst(
        seq=record.get("seq", 0),
        pc=record.get("pc", 0),
        op=MNEMONICS[record["op"]],
        dest=reg(record["dest"]) if "dest" in record else None,
        srcs=tuple(reg(s) for s in record.get("srcs", ())),
        imm=record.get("imm"),
    )
    dyn.taken = record.get("taken", False)
    dyn.target = record.get("target")
    dyn.next_pc = record.get("next_pc", dyn.pc + 1)
    dyn.mem_addr = record.get("mem_addr")
    dyn.store_value = record.get("store_value")
    dyn.result = record.get("result")
    dyn.src_values = tuple(record.get("src_values", ()))
    dyn.faults = record.get("faults", False)
    dyn.hint_dest_single_use = record.get("h_dest", False)
    if "h_srcs" in record:
        dyn.hint_src_single_use = tuple(bool(h) for h in record["h_srcs"])
    dyn.hint_reuse_depth = record.get("h_depth", 0)
    return dyn


def save_trace(insts: Iterable[DynInst], handle: IO[str]) -> int:
    """Write a trace as JSON lines; returns the instruction count."""
    count = 0
    for dyn in insts:
        handle.write(json.dumps(_encode(dyn), separators=(",", ":")))
        handle.write("\n")
        count += 1
    return count


def load_trace(handle: IO[str]) -> Iterator[DynInst]:
    """Stream a trace back as DynInst objects."""
    for line in handle:
        line = line.strip()
        if line:
            yield _decode(json.loads(line))


def save_trace_file(insts: Iterable[DynInst], path: str) -> int:
    with open(path, "w") as handle:
        return save_trace(insts, handle)


def load_trace_file(path: str) -> list[DynInst]:
    with open(path) as handle:
        return list(load_trace(handle))
