"""Statistical workload generator.

Builds a fixed pseudo-static *skeleton* — ``n_bodies`` loop bodies of
``body_size`` static instruction slots each — and then walks it, emitting
:class:`~repro.isa.dyninst.DynInst` streams.  Because the skeleton is
fixed:

* every dynamic instance of a slot has the same PC, so the branch
  predictor, BTB and the paper's PC-indexed register-type predictor see
  realistic stable streams;
* the register-dependence structure (consumer counts, single-use chains,
  redefinition patterns) is wired at build time from the benchmark
  profile, so the measured Figure 1/2/3 statistics track the profile's
  targets.

Values are verification tokens: each produced value is the producing
instruction's sequence number, and consumers record the token they must
observe — the pipeline's issue-time operand check then catches any
renaming corruption, in trace mode exactly as in functional mode.

Conditional branches inside a body are *hammocks* (taken target equals
the fall-through), so sampled directions exercise the branch predictor
without changing the executed path; each body ends in a back-edge that is
taken for the body's iteration count, and the skeleton ends with a jump
back to the first body.
"""

from __future__ import annotations

import random
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.isa.dyninst import DynInst
from repro.isa.opcodes import Op
from repro.isa.registers import RegClass, RegRef, freg, xreg
from repro.workloads.profiles import WorkloadProfile

# register conventions inside generated code (per class):
#   index 0..24   value registers managed by the builder
#   index 25      loop counter (int only)
#   index 26, 27  accumulators
#   index 28      memory base (int only)
#   index 30      immortal constant (fallback source)
_VALUE_REGS = range(1, 25)
_COUNTER = 25
_ACCUMULATORS = (26, 27)
_BASE = 28
_CONST = 30


@dataclass
class _Slot:
    """One static instruction slot of the skeleton."""

    pc: int
    op: Op
    dest: Optional[RegRef]
    srcs: tuple[RegRef, ...]
    mem: Optional[tuple] = None  # ('stream', base, stride) | ('random',)
    branch: Optional[tuple] = None  # ('hammock', p_taken) | ('backedge',) | ('wrap',)
    target: Optional[int] = None
    #: oracle hints: per-source "this is the value's only consumption"
    src_single: tuple = ()
    #: oracle hint: the produced value has exactly one planned consumer
    dest_single: bool = False
    #: oracle hint: forward chain depth of the produced value (how many
    #: same-register reuses follow), used for bank placement
    dest_depth: int = 0


@dataclass
class _Live:
    reg: RegRef
    uses_left: int
    chain: bool
    chain_len: int = 0  # reuse-chain depth of the backing register so far
    total_uses: int = 1  # planned consumer count (oracle hints)
    producer_slot: int = -1  # slot index that produced this value


class _BodyBuilder:
    """Wires one loop body's slots according to the profile."""

    def __init__(self, profile: WorkloadProfile, rng: random.Random, base_pc: int) -> None:
        self.profile = profile
        self.rng = rng
        self.base_pc = base_pc
        self.live: dict[RegRef, _Live] = {}
        self.recent: list[RegRef] = []
        self.slots: list[_Slot] = []
        #: chain edges: producer slot -> consuming (redefining) slot
        self._chain_edges: dict[int, int] = {}
        self._consumer_keys = list(profile.consumer_dist.keys())
        self._consumer_weights = list(profile.consumer_dist.values())

    # ------------------------------------------------------------- sources
    def _pick_source(self, cls: RegClass) -> tuple[RegRef, Optional[_Live], bool]:
        candidates = [rec for rec in self.live.values() if rec.reg.cls is cls]
        if not candidates:
            const = xreg(_CONST) if cls is RegClass.INT else freg(_CONST)
            return const, None, False
        rng = self.rng
        recent = [rec for rec in candidates if rec.reg in self.recent[-6:]]
        pool = recent if recent and rng.random() < self.profile.locality else candidates
        rec = rng.choice(pool)
        rec.uses_left -= 1
        single_use = rec.total_uses == 1 and rec.uses_left == 0
        chained: Optional[_Live] = None
        if rec.uses_left <= 0:
            del self.live[rec.reg]
            if rec.chain:
                chained = rec
        return rec.reg, chained, single_use

    def _free_register(self, cls: RegClass) -> RegRef:
        make = xreg if cls is RegClass.INT else freg
        for idx in _VALUE_REGS:
            reg = make(idx)
            if reg not in self.live:
                return reg
        # pool exhausted: truncate the value with the fewest remaining uses
        victim = min(
            (rec for rec in self.live.values() if rec.reg.cls is cls),
            key=lambda rec: rec.uses_left,
            default=None,
        )
        if victim is None:
            return make(_VALUE_REGS[0] if isinstance(_VALUE_REGS, list) else 1)
        del self.live[victim.reg]
        return victim.reg

    def _plan_dest(self, cls: RegClass, chained: Optional[_Live]) -> RegRef:
        rng = self.rng
        slot_index = len(self.slots)  # the slot about to be emitted
        chain_len = 0
        if chained is not None and chained.reg.cls is cls:
            dest = chained.reg  # single-use chain: redefine the same register
            chain_len = chained.chain_len + 1
            if chained.producer_slot >= 0:
                self._chain_edges[chained.producer_slot] = slot_index
        else:
            dest = self._free_register(cls)
        count = rng.choices(self._consumer_keys, self._consumer_weights)[0]
        if count >= 6:
            count = rng.randint(6, 8)
        # long reuse chains are rare in real code (paper Fig. 3: "chains of
        # more than four instructions are unusual") — damp extension
        extend_prob = self.profile.chain_frac * (0.2 if chain_len >= 3 else 1.0)
        chain = count == 1 and rng.random() < extend_prob
        self.live[dest] = _Live(dest, count, chain, chain_len, total_uses=count,
                                producer_slot=slot_index)
        self.recent.append(dest)
        if len(self.recent) > 12:
            self.recent.pop(0)
        return dest

    # ------------------------------------------------------------- slot kinds
    def _emit(self, op, dest, srcs, **kw) -> None:
        self.slots.append(
            _Slot(pc=self.base_pc + len(self.slots), op=op, dest=dest, srcs=srcs, **kw)
        )

    def _value_op(self) -> None:
        profile, rng = self.profile, self.rng
        cls = RegClass.FP if rng.random() < profile.fp_frac else RegClass.INT
        if cls is RegClass.INT:
            r = rng.random()
            if r < profile.div_frac / max(1e-9, 1 - profile.fp_frac):
                op = Op.DIV
            elif r < (profile.div_frac + profile.mul_frac) / max(1e-9, 1 - profile.fp_frac):
                op = Op.MUL
            else:
                op = rng.choice((Op.ADD, Op.SUB, Op.AND, Op.XOR, Op.OR))
        else:
            op = Op.FDIV if rng.random() < profile.fpdiv_frac else \
                rng.choice((Op.FADD, Op.FMUL, Op.FSUB))
        a, chained_a, single_a = self._pick_source(cls)
        b, chained_b, single_b = self._pick_source(cls)
        if rng.random() < 0.08:
            # three-source instruction (fmadd / csel): extra operand traffic
            op3 = Op.FMADD if cls is RegClass.FP else Op.CSEL
            c, chained_c, single_c = self._pick_source(cls)
            dest = self._plan_dest(cls, chained_a or chained_b or chained_c)
            self._emit(op3, dest, (a, b, c),
                       src_single=(single_a, single_b, single_c),
                       dest_single=self.live[dest].total_uses == 1)
            return
        dest = self._plan_dest(cls, chained_a or chained_b)
        self._emit(op, dest, (a, b), src_single=(single_a, single_b),
                   dest_single=self.live[dest].total_uses == 1)

    def _load(self) -> None:
        profile, rng = self.profile, self.rng
        cls = RegClass.FP if rng.random() < profile.fp_frac else RegClass.INT
        op = Op.FLD if cls is RegClass.FP else Op.LD
        dest = self._plan_dest(cls, None)
        mem = self._mem_pattern()
        self._emit(op, dest, (xreg(_BASE),), mem=mem,
                   dest_single=self.live[dest].total_uses == 1)

    def _store(self) -> None:
        profile, rng = self.profile, self.rng
        cls = RegClass.FP if rng.random() < profile.fp_frac else RegClass.INT
        op = Op.FST if cls is RegClass.FP else Op.ST
        if rng.random() < 0.3:
            # spill an accumulator: its loop-carried values get a second
            # consumer, so they do not form endless single-use chains
            make = xreg if cls is RegClass.INT else freg
            value: RegRef = make(_ACCUMULATORS[1])
            self._emit(op, None, (value, xreg(_BASE)), mem=self._mem_pattern())
            return
        value, _chained, single = self._pick_source(cls)
        self._emit(op, None, (value, xreg(_BASE)), mem=self._mem_pattern(),
                   src_single=(single, False))

    def _mem_pattern(self) -> tuple:
        rng = self.rng
        if rng.random() < self.profile.stream_frac:
            base = rng.randrange(0, self.profile.working_set, 64)
            stride = rng.choice((8, 8, 64))
            return ("stream", base, stride)
        return ("random",)

    def _hammock_branch(self) -> None:
        if self.rng.random() < 0.4:
            # loop-exit-style test of an accumulator: gives accumulator
            # values a second consumer, so they are not single-use chains
            src = xreg(_ACCUMULATORS[0])
        else:
            src, _chained, _single = self._pick_source(RegClass.INT)
        if self.rng.random() < self.profile.hard_branch_frac:
            p_taken = 0.5
        else:
            p_taken = self.rng.choice((0.02, 0.05, 0.95))
        self._emit(Op.BNEZ, None, (src,), branch=("hammock", p_taken))

    def _accumulator(self, idx: int) -> None:
        cls = RegClass.INT if idx % 2 == 0 else (
            RegClass.FP if self.profile.fp_frac > 0 else RegClass.INT
        )
        make = xreg if cls is RegClass.INT else freg
        acc = make(_ACCUMULATORS[idx % 2])
        other, _chained, single = self._pick_source(cls)
        op = Op.ADD if cls is RegClass.INT else Op.FADD
        # the accumulator redefines itself (guaranteed-reuse path, no
        # prediction needed, no repair risk) -> optimistic dest hint
        self._emit(op, acc, (acc, other), src_single=(False, single),
                   dest_single=True)

    # ------------------------------------------------------------- build
    def build(self, body_size: int) -> list[_Slot]:
        profile, rng = self.profile, self.rng
        n_value_slots = body_size - 2  # counter update + back-edge
        acc_positions = {
            (i + 1) * n_value_slots // (profile.accumulators * 2 + 1)
            for i in range(profile.accumulators * 2)
        }
        for position in range(n_value_slots):
            if position in acc_positions:
                self._accumulator(position)
                continue
            r = rng.random()
            if r < profile.branch_frac:
                self._hammock_branch()
            elif r < profile.branch_frac + profile.load_frac:
                self._load()
            elif r < profile.branch_frac + profile.load_frac + profile.store_frac:
                self._store()
            else:
                self._value_op()
        # loop counter decrement + back-edge
        counter = xreg(_COUNTER)
        self._emit(Op.ADDI, counter, (counter,))
        self._emit(Op.BNEZ, None, (counter,), branch=("backedge",),
                   target=self.base_pc)
        self._assign_chain_depths()
        return self.slots

    def _assign_chain_depths(self) -> None:
        """Second pass: forward chain depth per producing slot (oracle
        bank-placement hint: a register hosting a depth-d chain needs d
        shadow cells)."""
        depth = [0] * len(self.slots)
        for producer in sorted(self._chain_edges, reverse=True):
            child = self._chain_edges[producer]  # local slot indices
            depth[producer] = min(3, 1 + depth[child])
        for index, slot in enumerate(self.slots):
            slot.dest_depth = depth[index]


class SyntheticWorkload:
    """Iterable of DynInst implementing one benchmark profile.

    Deterministic for a given (profile, seed).  ``body_iters`` controls
    how many times each loop body runs before moving to the next;
    iteration cycles across bodies until ``total_insts`` are emitted.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        total_insts: int = 50_000,
        seed: int = 1,
        body_iters: int = 50,
        pool=None,
    ) -> None:
        self.profile = profile
        self.total_insts = total_insts
        self.seed = seed
        self.body_iters = body_iters
        #: optional DynInstPool shared with the consuming processor
        self.pool = pool
        # stable across processes (str hash is salted; crc32 is not)
        rng = random.Random(seed * 1_000_003 + zlib.crc32(profile.name.encode()))
        self.bodies: list[list[_Slot]] = []
        pc = 0
        for _body in range(profile.n_bodies):
            builder = _BodyBuilder(profile, rng, pc)
            slots = builder.build(profile.body_size)
            self.bodies.append(slots)
            pc += len(slots)
        self.wrap_pc = pc  # final jump back to pc 0

    def __iter__(self) -> Iterator[DynInst]:
        rng = random.Random(self.seed ^ 0x5EED)
        reg_values: dict[RegRef, object] = {}
        seq = 0
        emitted = 0
        stream_iter = 0
        pool = self.pool

        def value_of(ref: RegRef):
            zero = 0 if ref.cls is RegClass.INT else 0.0
            return reg_values.get(ref, zero)

        while emitted < self.total_insts:
            for body_index, body in enumerate(self.bodies):
                body_start = body[0].pc
                for iteration in range(self.body_iters):
                    last_iteration = iteration == self.body_iters - 1
                    for slot in body:
                        if pool is not None:
                            dyn = pool.acquire(
                                seq=seq,
                                pc=slot.pc,
                                op=slot.op,
                                dest=slot.dest,
                                srcs=slot.srcs,
                                src_values=tuple(value_of(s) for s in slot.srcs),
                                hint_src_single_use=slot.src_single,
                                hint_dest_single_use=slot.dest_single,
                            )
                        else:
                            dyn = DynInst(
                                seq=seq,
                                pc=slot.pc,
                                op=slot.op,
                                dest=slot.dest,
                                srcs=slot.srcs,
                                src_values=tuple(value_of(s) for s in slot.srcs),
                                hint_src_single_use=slot.src_single,
                                hint_dest_single_use=slot.dest_single,
                            )
                        dyn.hint_reuse_depth = slot.dest_depth
                        if slot.dest is not None:
                            dyn.result = seq + 1  # unique token
                            reg_values[slot.dest] = dyn.result
                        if slot.op is Op.ADDI:
                            dyn.imm = -1
                        if slot.mem is not None:
                            dyn.mem_addr = self._address(slot, stream_iter, rng)
                            if slot.op in (Op.ST, Op.FST):
                                dyn.store_value = dyn.src_values[0]
                        if slot.branch is not None:
                            kind = slot.branch[0]
                            if kind == "hammock":
                                dyn.taken = rng.random() < slot.branch[1]
                                dyn.target = slot.pc + 1
                                dyn.next_pc = slot.pc + 1
                            else:  # backedge
                                dyn.taken = not last_iteration
                                dyn.target = slot.target
                                dyn.next_pc = slot.target if dyn.taken else slot.pc + 1
                        else:
                            dyn.next_pc = slot.pc + 1
                        seq += 1
                        emitted += 1
                        yield dyn
                        if emitted >= self.total_insts:
                            return
                    stream_iter += 1
                # wrap jump after the last body falls through
                if body_index == len(self.bodies) - 1:
                    wrap = DynInst(
                        seq=seq, pc=self.wrap_pc, op=Op.JMP, taken=True,
                        target=0, next_pc=0,
                    )
                    seq += 1
                    emitted += 1
                    yield wrap

    def _address(self, slot: _Slot, stream_iter: int, rng: random.Random) -> int:
        if slot.mem[0] == "stream":
            _kind, base, stride = slot.mem
            return (base + stream_iter * stride) % self.profile.working_set
        return rng.randrange(0, self.profile.working_set, 8)


# ---------------------------------------------------------------- shared workloads
#: memoized workloads keyed by (profile name, insts, seed, body_iters);
#: bounded so long full-scale sweeps don't accumulate skeletons forever
_SHARED_LIMIT = 64
_shared_workloads: "OrderedDict[tuple, SyntheticWorkload]" = OrderedDict()


def shared_workload(profile: WorkloadProfile, total_insts: int, seed: int = 1,
                    body_iters: int = 50) -> SyntheticWorkload:
    """One :class:`SyntheticWorkload` per (profile, insts, seed).

    ``__iter__`` reseeds from scratch, so every iteration of the shared
    instance yields the identical dynamic stream — baseline and proposed
    runs of a sweep point provably see the same instructions, and the
    skeleton (the expensive part of construction) is built once.  Profiles
    are keyed by name: two profiles sharing a name must be the same
    benchmark (true for everything in ``BENCHMARKS``).
    """
    key = (profile.name, profile.suite, total_insts, seed, body_iters)
    workload = _shared_workloads.get(key)
    if workload is not None:
        _shared_workloads.move_to_end(key)
        return workload
    workload = SyntheticWorkload(profile, total_insts=total_insts, seed=seed,
                                 body_iters=body_iters)
    _shared_workloads[key] = workload
    if len(_shared_workloads) > _SHARED_LIMIT:
        _shared_workloads.popitem(last=False)
    return workload
