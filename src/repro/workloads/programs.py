"""Composite multi-stage programs.

Full miniature applications (not single kernels): a speech front-end in
the spirit of the authors' GMM/ASR line of work (FIR pre-emphasis feeding
GMM scoring through a called subroutine), and a JPEG-style image pipeline
(level shift, DCT via subroutine, quantisation).  These exercise
call/return prediction, deeper register lifetimes across call sites, and
mixed int/fp pressure — closer to whole-benchmark behaviour than the
single kernels in :mod:`repro.workloads.kernels`.
"""

from __future__ import annotations

import math
import random

from repro.isa import assemble
from repro.isa.program import DATA_BASE
from repro.workloads.kernels import Kernel, _fmt


def speech_pipeline(frames: int = 6, samples: int = 16, taps: int = 4,
                    components: int = 4, seed: int = 31) -> Kernel:
    """FIR pre-emphasis + GMM scoring per frame; tracks the global best.

    Layout: for each frame, filter ``samples`` inputs with ``taps``
    coefficients, then call ``score`` once per GMM component (mean/precision
    over the filtered frame) and fold the maximum into the running best.
    """
    rng = random.Random(seed)
    inputs = [round(rng.uniform(-1, 1), 3)
              for _ in range(frames * samples + taps)]
    coeffs = [round(rng.uniform(-0.5, 0.5), 3) for _ in range(taps)]
    means = [[round(rng.uniform(-1, 1), 3) for _ in range(samples)]
             for _ in range(components)]
    precs = [[round(rng.uniform(0.5, 2.0), 3) for _ in range(samples)]
             for _ in range(components)]

    source = f"""
    .data
    inp:    .word {_fmt(inputs)}
    coef:   .word {_fmt(coeffs)}
    means:  .word {_fmt([v for row in means for v in row])}
    precs:  .word {_fmt([v for row in precs for v in row])}
    frame:  .zero {samples}
    best:   .zero 1

    .text
    main:   movi x20, 0              # frame index
            fli  f15, -1e30          # global best score
    frames: # ---- FIR: frame[i] = sum_t coef[t] * inp[f*samples + i + t]
            movi x1, 0
    fir:    movi x2, {samples * 8}
            mul  x3, x20, x2
            movi x4, inp
            add  x4, x4, x3
            shli x5, x1, 3
            add  x4, x4, x5          # &inp[f*samples + i]
            movi x6, coef
            fli  f1, 0.0
            movi x7, 0
    tap:    fld  f2, 0(x4)
            fld  f3, 0(x6)
            fmul f4, f2, f3
            fadd f1, f1, f4
            addi x4, x4, 8
            addi x6, x6, 8
            addi x7, x7, 1
            slti x8, x7, {taps}
            bnez x8, tap
            movi x9, frame
            add  x9, x9, x5
            fst  f1, 0(x9)
            addi x1, x1, 1
            slti x8, x1, {samples}
            bnez x8, fir
            # ---- GMM: call score once per component
            movi x21, 0              # component index
    comps:  movi x2, {samples * 8}
            mul  x3, x21, x2
            movi x10, means
            add  x10, x10, x3        # x10 = &means[k][0]
            movi x11, precs
            add  x11, x11, x3        # x11 = &precs[k][0]
            call score               # -> f10 = component score
            fmax f15, f15, f10
            addi x21, x21, 1
            slti x8, x21, {components}
            bnez x8, comps
            addi x20, x20, 1
            slti x8, x20, {frames}
            bnez x8, frames
            movi x12, best
            fst  f15, 0(x12)
            halt

    # score(frame, means@x10, precs@x11) -> f10 = -0.5 * sum d^2 * prec
    score:  movi x12, frame
            fli  f10, 0.0
            movi x13, 0
    sdim:   fld  f5, 0(x12)
            fld  f6, 0(x10)
            fld  f7, 0(x11)
            fsub f8, f5, f6
            fmul f8, f8, f8
            fmul f8, f8, f7
            fadd f10, f10, f8
            addi x12, x12, 8
            addi x10, x10, 8
            addi x11, x11, 8
            addi x13, x13, 1
            slti x8, x13, {samples}
            bnez x8, sdim
            fli  f9, -0.5
            fmul f10, f10, f9
            ret
    """

    def expected(mem) -> dict:
        best = -1e30
        for f in range(frames):
            frame = [
                sum(coeffs[t] * inputs[f * samples + i + t]
                    for t in range(taps))
                for i in range(samples)
            ]
            for k in range(components):
                score = -0.5 * sum(
                    (frame[d] - means[k][d]) ** 2 * precs[k][d]
                    for d in range(samples)
                )
                best = max(best, score)
        return {"best": best}

    program = assemble(source)
    return Kernel("speech", source, program, expected)


def speech_best_address(frames: int, samples: int, taps: int,
                        components: int) -> int:
    words = (frames * samples + taps) + taps + 2 * components * samples + samples
    return DATA_BASE + words * 8


def image_pipeline(blocks: int = 4, n: int = 4, seed: int = 33) -> Kernel:
    """JPEG-style stage chain per block: level shift, DCT (subroutine),
    quantise, store coefficients."""
    rng = random.Random(seed)
    pixels = [[rng.randint(0, 255) for _ in range(n)] for _ in range(blocks)]
    cosine = [[round(math.cos(math.pi / n * (i + 0.5) * k), 6)
               for i in range(n)] for k in range(n)]
    quant = [round(1.0 / (1 + k), 6) for k in range(n)]

    source = f"""
    .data
    pix:  .word {_fmt([v for row in pixels for v in row])}
    cos:  .word {_fmt([v for row in cosine for v in row])}
    qt:   .word {_fmt(quant)}
    work: .zero {n}
    out:  .zero {blocks * n}

    .text
    main:   movi x20, 0               # block index
    blocks: # ---- level shift into work[]
            movi x1, 0
            movi x2, {n * 8}
            mul  x3, x20, x2
            movi x4, pix
            add  x4, x4, x3
            movi x5, work
    shift:  ld   x6, 0(x4)
            subi x6, x6, 128
            fcvt f1, x6
            fst  f1, 0(x5)
            addi x4, x4, 8
            addi x5, x5, 8
            addi x1, x1, 1
            slti x8, x1, {n}
            bnez x8, shift
            # ---- DCT + quantise each coefficient
            movi x21, 0               # coefficient k
    coeff:  call dct1                 # -> f10 = dct(work, k=x21)
            movi x7, qt
            shli x9, x21, 3
            add  x7, x7, x9
            fld  f2, 0(x7)
            fmul f10, f10, f2         # quantise
            movi x7, out
            add  x7, x7, x3
            add  x7, x7, x9
            fst  f10, 0(x7)
            addi x21, x21, 1
            slti x8, x21, {n}
            bnez x8, coeff
            addi x20, x20, 1
            slti x8, x20, {blocks}
            bnez x8, blocks
            halt

    # dct1(work, k@x21) -> f10 = sum_i work[i] * cos[k][i]
    dct1:   movi x10, work
            movi x11, cos
            movi x12, {n * 8}
            mul  x13, x21, x12
            add  x11, x11, x13
            fli  f10, 0.0
            movi x14, 0
    dsum:   fld  f3, 0(x10)
            fld  f4, 0(x11)
            fmul f5, f3, f4
            fadd f10, f10, f5
            addi x10, x10, 8
            addi x11, x11, 8
            addi x14, x14, 1
            slti x8, x14, {n}
            bnez x8, dsum
            ret
    """

    def expected(mem) -> dict:
        out = []
        for block in pixels:
            shifted = [p - 128 for p in block]
            row = []
            for k in range(n):
                value = sum(shifted[i] * cosine[k][i] for i in range(n))
                row.append(value * quant[k])
            out.append(row)
        return {"out": out}

    program = assemble(source)
    return Kernel("image", source, program, expected)


def image_out_address(blocks: int, n: int) -> int:
    words = blocks * n + n * n + n + n
    return DATA_BASE + words * 8


PROGRAMS = {
    "speech": speech_pipeline,
    "image": image_pipeline,
}
