"""Per-benchmark statistical profiles.

Each profile controls the synthetic generator so that the *measured*
properties of the dynamic stream match the benchmark's qualitative
behaviour as reported in the paper's motivation study:

* ``consumer_dist`` — distribution of consumers per produced value
  (Figure 2: most SPEC values are consumed exactly once, more so in fp);
* ``chain_frac`` — of single-use values, the fraction whose consumer
  redefines the same logical register (the split in Figure 1; it drives
  guaranteed vs predicted reuses and chain lengths in Figure 3);
* opcode mix, branch behaviour and memory locality, which determine the
  benchmark's baseline IPC and how register-file pressure manifests.

The absolute values are calibrated to the paper's aggregate claims
(SPECfp: >50% single-consumer instructions; SPECint: >30%) with
per-benchmark variation reflecting well-known behaviour (mcf is
memory-bound, libquantum streams, gcc/gobmk are branchy, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one benchmark."""

    name: str
    suite: str  # 'specint' | 'specfp' | 'mediabench' | 'cognitive'

    #: consumers-per-value distribution; keys 1..6 (6 = "six or more")
    consumer_dist: dict = field(
        default_factory=lambda: {1: 0.5, 2: 0.25, 3: 0.12, 4: 0.07, 5: 0.04, 6: 0.02}
    )
    #: of single-use values, fraction whose consumer redefines the register
    chain_frac: float = 0.5

    # opcode mix (fractions of all instructions; remainder is int ALU)
    fp_frac: float = 0.0
    load_frac: float = 0.22
    store_frac: float = 0.10
    branch_frac: float = 0.12
    mul_frac: float = 0.02
    div_frac: float = 0.004
    fpdiv_frac: float = 0.0  # of fp ops, fraction that are divides/sqrt

    # branch behaviour: fraction of static conditional branches whose
    # outcome is data-dependent (50/50), the rest are heavily biased
    hard_branch_frac: float = 0.08

    # memory behaviour
    working_set: int = 1 << 20  # bytes touched by random accesses
    stream_frac: float = 0.6  # fraction of static loads/stores that stride

    # code footprint: number of distinct loop bodies (I-cache pressure)
    n_bodies: int = 2
    body_size: int = 96  # static instructions per body

    # instruction-level parallelism: fraction of values consumed at short
    # distance (higher = tighter dependence chains, lower ILP)
    locality: float = 0.6
    #: number of loop-carried accumulator chains per register class
    accumulators: int = 1


def _p(name, suite, one, two, three, chain, **kw) -> WorkloadProfile:
    rest = max(0.0, 1.0 - one - two - three)
    dist = {
        1: one,
        2: two,
        3: three,
        4: rest * 0.5,
        5: rest * 0.3,
        6: rest * 0.2,
    }
    return WorkloadProfile(name=name, suite=suite, consumer_dist=dist,
                           chain_frac=chain, **kw)


# --------------------------------------------------------------------- SPECint
SPECINT: list[WorkloadProfile] = [
    _p("perlbench", "specint", 0.42, 0.27, 0.14, 0.42, branch_frac=0.16,
       hard_branch_frac=0.10, working_set=8 << 20, n_bodies=4, stream_frac=0.4),
    _p("bzip2", "specint", 0.46, 0.26, 0.12, 0.48, branch_frac=0.13,
       hard_branch_frac=0.14, working_set=4 << 20, stream_frac=0.5),
    _p("gcc", "specint", 0.40, 0.28, 0.15, 0.40, branch_frac=0.18,
       hard_branch_frac=0.12, working_set=16 << 20, n_bodies=5, stream_frac=0.3),
    _p("mcf", "specint", 0.44, 0.27, 0.13, 0.44, load_frac=0.30,
       branch_frac=0.14, working_set=64 << 20, stream_frac=0.1,
       hard_branch_frac=0.12),
    _p("gobmk", "specint", 0.41, 0.28, 0.14, 0.40, branch_frac=0.19,
       hard_branch_frac=0.16, working_set=2 << 20, n_bodies=4),
    _p("hmmer", "specint", 0.52, 0.25, 0.11, 0.55, branch_frac=0.08,
       hard_branch_frac=0.04, working_set=1 << 20, stream_frac=0.8, locality=0.7),
    _p("sjeng", "specint", 0.42, 0.28, 0.13, 0.42, branch_frac=0.17,
       hard_branch_frac=0.15, working_set=2 << 20),
    _p("libquantum", "specint", 0.55, 0.24, 0.10, 0.58, load_frac=0.28,
       branch_frac=0.10, hard_branch_frac=0.02, working_set=32 << 20,
       stream_frac=0.95, locality=0.75),
    _p("h264ref", "specint", 0.50, 0.26, 0.11, 0.52, branch_frac=0.10,
       hard_branch_frac=0.06, working_set=4 << 20, stream_frac=0.7,
       mul_frac=0.05),
    _p("omnetpp", "specint", 0.43, 0.27, 0.13, 0.42, load_frac=0.28,
       branch_frac=0.15, hard_branch_frac=0.11, working_set=32 << 20,
       stream_frac=0.2),
    _p("astar", "specint", 0.45, 0.27, 0.12, 0.46, branch_frac=0.15,
       hard_branch_frac=0.13, working_set=16 << 20, stream_frac=0.3),
    _p("xalancbmk", "specint", 0.42, 0.28, 0.14, 0.40, load_frac=0.29,
       branch_frac=0.16, hard_branch_frac=0.09, working_set=16 << 20,
       n_bodies=5, stream_frac=0.3),
]

# --------------------------------------------------------------------- SPECfp
SPECFP: list[WorkloadProfile] = [
    _p("bwaves", "specfp", 0.66, 0.20, 0.08, 0.62, fp_frac=0.50, load_frac=0.28,
       store_frac=0.08, branch_frac=0.04, hard_branch_frac=0.01,
       working_set=48 << 20, stream_frac=0.95, locality=0.7),
    _p("gamess", "specfp", 0.58, 0.24, 0.10, 0.58, fp_frac=0.45,
       branch_frac=0.08, hard_branch_frac=0.03, working_set=1 << 20),
    _p("milc", "specfp", 0.64, 0.21, 0.09, 0.60, fp_frac=0.52, load_frac=0.30,
       branch_frac=0.03, hard_branch_frac=0.01, working_set=32 << 20,
       stream_frac=0.9),
    _p("zeusmp", "specfp", 0.62, 0.22, 0.09, 0.60, fp_frac=0.48,
       branch_frac=0.05, hard_branch_frac=0.02, working_set=32 << 20,
       stream_frac=0.85),
    _p("gromacs", "specfp", 0.58, 0.24, 0.10, 0.56, fp_frac=0.46,
       branch_frac=0.07, hard_branch_frac=0.03, working_set=4 << 20,
       fpdiv_frac=0.04),
    _p("cactusADM", "specfp", 0.68, 0.19, 0.08, 0.64, fp_frac=0.55,
       load_frac=0.30, branch_frac=0.02, hard_branch_frac=0.01,
       working_set=32 << 20, stream_frac=0.9, locality=0.7),
    _p("leslie3d", "specfp", 0.64, 0.21, 0.09, 0.62, fp_frac=0.50,
       branch_frac=0.04, hard_branch_frac=0.01, working_set=32 << 20,
       stream_frac=0.9),
    _p("namd", "specfp", 0.58, 0.24, 0.10, 0.56, fp_frac=0.50,
       branch_frac=0.06, hard_branch_frac=0.02, working_set=2 << 20,
       fpdiv_frac=0.03),
    _p("dealII", "specfp", 0.54, 0.25, 0.12, 0.52, fp_frac=0.40,
       branch_frac=0.10, hard_branch_frac=0.05, working_set=8 << 20),
    _p("soplex", "specfp", 0.52, 0.26, 0.12, 0.50, fp_frac=0.35,
       load_frac=0.28, branch_frac=0.11, hard_branch_frac=0.06,
       working_set=16 << 20, stream_frac=0.4),
    _p("povray", "specfp", 0.52, 0.26, 0.12, 0.50, fp_frac=0.38,
       branch_frac=0.13, hard_branch_frac=0.07, working_set=1 << 20,
       fpdiv_frac=0.05),
    _p("calculix", "specfp", 0.58, 0.23, 0.10, 0.58, fp_frac=0.45,
       branch_frac=0.07, hard_branch_frac=0.03, working_set=8 << 20,
       stream_frac=0.7),
    _p("GemsFDTD", "specfp", 0.64, 0.21, 0.09, 0.62, fp_frac=0.50,
       load_frac=0.30, branch_frac=0.03, hard_branch_frac=0.01,
       working_set=32 << 20, stream_frac=0.9),
    _p("tonto", "specfp", 0.56, 0.24, 0.11, 0.56, fp_frac=0.42,
       branch_frac=0.09, hard_branch_frac=0.04, working_set=4 << 20),
    _p("lbm", "specfp", 0.70, 0.18, 0.07, 0.66, fp_frac=0.55, load_frac=0.28,
       store_frac=0.14, branch_frac=0.01, hard_branch_frac=0.01,
       working_set=64 << 20, stream_frac=0.98, locality=0.75),
    _p("wrf", "specfp", 0.60, 0.23, 0.10, 0.58, fp_frac=0.48,
       branch_frac=0.06, hard_branch_frac=0.02, working_set=16 << 20,
       stream_frac=0.8),
    _p("sphinx3", "specfp", 0.58, 0.23, 0.11, 0.56, fp_frac=0.44,
       load_frac=0.30, branch_frac=0.08, hard_branch_frac=0.04,
       working_set=8 << 20, stream_frac=0.7),
]

# ------------------------------------------------------------------ Mediabench
MEDIABENCH: list[WorkloadProfile] = [
    _p("jpeg", "mediabench", 0.56, 0.24, 0.10, 0.55, branch_frac=0.09,
       hard_branch_frac=0.04, working_set=512 << 10, stream_frac=0.85,
       mul_frac=0.06),
    _p("mpeg2", "mediabench", 0.58, 0.23, 0.10, 0.56, branch_frac=0.08,
       hard_branch_frac=0.04, working_set=1 << 20, stream_frac=0.9,
       mul_frac=0.05),
    _p("adpcm", "mediabench", 0.60, 0.22, 0.09, 0.60, branch_frac=0.12,
       hard_branch_frac=0.08, working_set=64 << 10, stream_frac=0.95,
       locality=0.8),
    _p("epic", "mediabench", 0.58, 0.23, 0.10, 0.56, fp_frac=0.30,
       branch_frac=0.07, hard_branch_frac=0.03, working_set=1 << 20,
       stream_frac=0.85),
    _p("g721", "mediabench", 0.56, 0.24, 0.11, 0.56, branch_frac=0.11,
       hard_branch_frac=0.06, working_set=64 << 10, locality=0.75),
    _p("gsm", "mediabench", 0.58, 0.23, 0.10, 0.58, branch_frac=0.09,
       hard_branch_frac=0.04, working_set=128 << 10, stream_frac=0.9,
       mul_frac=0.07),
    _p("pegwit", "mediabench", 0.52, 0.26, 0.12, 0.50, branch_frac=0.10,
       hard_branch_frac=0.05, working_set=256 << 10, mul_frac=0.08),
    _p("mesa", "mediabench", 0.56, 0.24, 0.10, 0.54, fp_frac=0.35,
       branch_frac=0.08, hard_branch_frac=0.04, working_set=2 << 20,
       stream_frac=0.8),
]

# ------------------------------------------------------------------- cognitive
COGNITIVE: list[WorkloadProfile] = [
    _p("gmm", "cognitive", 0.66, 0.20, 0.08, 0.62, fp_frac=0.55,
       load_frac=0.30, store_frac=0.04, branch_frac=0.04,
       hard_branch_frac=0.01, working_set=16 << 20, stream_frac=0.95,
       locality=0.7),
    _p("dnn", "cognitive", 0.68, 0.19, 0.08, 0.64, fp_frac=0.55,
       load_frac=0.32, store_frac=0.04, branch_frac=0.03,
       hard_branch_frac=0.01, working_set=32 << 20, stream_frac=0.98,
       locality=0.7),
]

#: All benchmarks by name.
BENCHMARKS: dict[str, WorkloadProfile] = {
    p.name: p for p in SPECINT + SPECFP + MEDIABENCH + COGNITIVE
}


def suite(name: str) -> list[WorkloadProfile]:
    """Profiles of one suite: 'specint', 'specfp', 'mediabench', 'cognitive'."""
    profiles = [p for p in BENCHMARKS.values() if p.suite == name]
    if not profiles:
        raise ValueError(f"unknown suite {name!r}")
    return profiles
