"""Real kernels written in the toy ISA.

These are the functional-execution counterparts of the paper's Mediabench
and cognitive-computing workloads: GMM acoustic scoring and a DNN layer
(the paper's two cognitive kernels), plus DCT / FIR / ADPCM in the spirit
of Mediabench, and generic linear algebra.  Each builder returns an
assembly string whose ``.data`` section embeds deterministic pseudo-random
inputs, together with a pure-Python reference function so tests and
examples can check end-to-end results.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

from repro.isa import Program, assemble
from repro.isa.program import DATA_BASE


@dataclass
class Kernel:
    """An assembled kernel plus its reference computation."""

    name: str
    source: str
    program: Program
    #: maps a SparseMemory-like object to the kernel's numeric result(s)
    expected: Callable


def _fmt(values) -> str:
    return " ".join(repr(round(float(v), 6)) if isinstance(v, float) else str(v)
                    for v in values)


# --------------------------------------------------------------------- GMM
def gmm_kernel(n_components: int = 4, dim: int = 8, seed: int = 7) -> Kernel:
    """GMM acoustic scoring: squared-distance log-likelihood per component.

    score[k] = -0.5 * sum_d (x[d] - mean[k][d])^2 * prec[k][d]
    The kernel writes each component score and the best (max) score.
    """
    rng = random.Random(seed)
    x = [round(rng.uniform(-1, 1), 3) for _ in range(dim)]
    means = [[round(rng.uniform(-1, 1), 3) for _ in range(dim)]
             for _ in range(n_components)]
    precs = [[round(rng.uniform(0.5, 2.0), 3) for _ in range(dim)]
             for _ in range(n_components)]

    flat_means = [v for row in means for v in row]
    flat_precs = [v for row in precs for v in row]
    source = f"""
    .data
    x:      .word {_fmt(x)}
    means:  .word {_fmt(flat_means)}
    precs:  .word {_fmt(flat_precs)}
    scores: .zero {n_components}
    best:   .zero 1

    .text
    main:   movi x1, 0              # component index
            movi x9, {n_components}
            fli  f9, -1e30          # best score
    comp:   movi x2, 0              # dim index
            fli  f1, 0.0            # accumulator
            # row pointers: means + k*dim*8, precs + k*dim*8
            movi x3, {dim * 8}
            mul  x4, x1, x3
            movi x5, means
            add  x5, x5, x4
            movi x6, precs
            add  x6, x6, x4
            movi x7, x
    dim:    fld  f2, 0(x7)          # x[d]
            fld  f3, 0(x5)          # mean
            fld  f4, 0(x6)          # prec
            fsub f5, f2, f3
            fmul f5, f5, f5
            fmul f5, f5, f4
            fadd f1, f1, f5
            addi x7, x7, 8
            addi x5, x5, 8
            addi x6, x6, 8
            addi x2, x2, 1
            slti x8, x2, {dim}
            bnez x8, dim
            fli  f6, -0.5
            fmul f1, f1, f6         # score = -0.5 * acc
            movi x5, scores
            shli x4, x1, 3
            add  x5, x5, x4
            fst  f1, 0(x5)
            fmax f9, f9, f1
            addi x1, x1, 1
            slt  x8, x1, x9
            bnez x8, comp
            movi x5, best
            fst  f9, 0(x5)
            halt
    """

    def expected(mem) -> dict:
        scores = [
            -0.5 * sum((x[d] - means[k][d]) ** 2 * precs[k][d] for d in range(dim))
            for k in range(n_components)
        ]
        return {"scores": scores, "best": max(scores)}

    program = assemble(source)
    return Kernel("gmm", source, program, expected)


def gmm_addresses(n_components: int, dim: int) -> dict:
    """Data-section addresses of the GMM kernel's outputs."""
    scores = DATA_BASE + (dim + 2 * n_components * dim) * 8
    return {"scores": scores, "best": scores + n_components * 8}


# --------------------------------------------------------------------- DNN
def dnn_kernel(in_dim: int = 12, out_dim: int = 8, seed: int = 11) -> Kernel:
    """One fully-connected DNN layer with ReLU: y = relu(W x + b)."""
    rng = random.Random(seed)
    x = [round(rng.uniform(-1, 1), 3) for _ in range(in_dim)]
    w = [[round(rng.uniform(-1, 1), 3) for _ in range(in_dim)]
         for _ in range(out_dim)]
    b = [round(rng.uniform(-0.5, 0.5), 3) for _ in range(out_dim)]

    source = f"""
    .data
    x:   .word {_fmt(x)}
    w:   .word {_fmt([v for row in w for v in row])}
    b:   .word {_fmt(b)}
    y:   .zero {out_dim}

    .text
    main:   movi x1, 0              # output neuron j
    neuron: movi x2, 0              # input i
            movi x3, {in_dim * 8}
            mul  x4, x1, x3
            movi x5, w
            add  x5, x5, x4         # row pointer
            movi x6, x
            fli  f1, 0.0
    macloop: fld f2, 0(x6)
            fld  f3, 0(x5)
            fmul f4, f2, f3
            fadd f1, f1, f4
            addi x5, x5, 8
            addi x6, x6, 8
            addi x2, x2, 1
            slti x8, x2, {in_dim}
            bnez x8, macloop
            movi x7, b
            shli x4, x1, 3
            add  x7, x7, x4
            fld  f5, 0(x7)
            fadd f1, f1, f5         # + bias
            fli  f6, 0.0
            fmax f1, f1, f6         # ReLU
            movi x7, y
            add  x7, x7, x4
            fst  f1, 0(x7)
            addi x1, x1, 1
            slti x8, x1, {out_dim}
            bnez x8, neuron
            halt
    """

    def expected(mem) -> dict:
        y = [max(0.0, sum(w[j][i] * x[i] for i in range(in_dim)) + b[j])
             for j in range(out_dim)]
        return {"y": y}

    program = assemble(source)
    return Kernel("dnn", source, program, expected)


def dnn_addresses(in_dim: int, out_dim: int) -> dict:
    return {"y": DATA_BASE + (in_dim + out_dim * in_dim + out_dim) * 8}


# --------------------------------------------------------------------- DCT
def dct_kernel(n: int = 8, seed: int = 3) -> Kernel:
    """Naive n-point DCT-II with a precomputed cosine table (jpeg-style)."""
    rng = random.Random(seed)
    x = [round(rng.uniform(-128, 127), 2) for _ in range(n)]
    cos = [[round(math.cos(math.pi / n * (i + 0.5) * k), 6) for i in range(n)]
           for k in range(n)]

    source = f"""
    .data
    x:   .word {_fmt(x)}
    cos: .word {_fmt([v for row in cos for v in row])}
    out: .zero {n}

    .text
    main:   movi x1, 0
    kloop:  movi x2, 0
            movi x3, {n * 8}
            mul  x4, x1, x3
            movi x5, cos
            add  x5, x5, x4
            movi x6, x
            fli  f1, 0.0
    iloop:  fld  f2, 0(x6)
            fld  f3, 0(x5)
            fmul f4, f2, f3
            fadd f1, f1, f4
            addi x5, x5, 8
            addi x6, x6, 8
            addi x2, x2, 1
            slti x8, x2, {n}
            bnez x8, iloop
            movi x7, out
            shli x4, x1, 3
            add  x7, x7, x4
            fst  f1, 0(x7)
            addi x1, x1, 1
            slti x8, x1, {n}
            bnez x8, kloop
            halt
    """

    def expected(mem) -> dict:
        out = [sum(x[i] * cos[k][i] for i in range(n)) for k in range(n)]
        return {"out": out}

    return Kernel("dct", source, assemble(source), expected)


# --------------------------------------------------------------------- FIR
def fir_kernel(n: int = 64, taps: int = 8, seed: int = 5) -> Kernel:
    """FIR filter: y[i] = sum_t h[t] * x[i+t]."""
    rng = random.Random(seed)
    x = [round(rng.uniform(-1, 1), 3) for _ in range(n + taps)]
    h = [round(rng.uniform(-0.5, 0.5), 3) for _ in range(taps)]

    source = f"""
    .data
    x:   .word {_fmt(x)}
    h:   .word {_fmt(h)}
    y:   .zero {n}

    .text
    main:   movi x1, 0              # sample index
    sample: movi x2, 0              # tap index
            movi x5, x
            shli x4, x1, 3
            add  x5, x5, x4
            movi x6, h
            fli  f1, 0.0
    tap:    fld  f2, 0(x5)
            fld  f3, 0(x6)
            fmul f4, f2, f3
            fadd f1, f1, f4
            addi x5, x5, 8
            addi x6, x6, 8
            addi x2, x2, 1
            slti x8, x2, {taps}
            bnez x8, tap
            movi x7, y
            add  x7, x7, x4
            fst  f1, 0(x7)
            addi x1, x1, 1
            slti x8, x1, {n}
            bnez x8, sample
            halt
    """

    def expected(mem) -> dict:
        y = [sum(h[t] * x[i + t] for t in range(taps)) for i in range(n)]
        return {"y": y}

    return Kernel("fir", source, assemble(source), expected)


# --------------------------------------------------------------------- ADPCM
def adpcm_kernel(n: int = 128, seed: int = 9) -> Kernel:
    """ADPCM-style integer encoder: branchy step-size adaptation.

    A simplified IMA-ADPCM: per sample, compute delta to the predictor,
    emit a 2-bit code, adapt predictor and step size.  Exercises the
    integer side: dependent chains, data-dependent branches, loads/stores.
    """
    rng = random.Random(seed)
    samples = [rng.randint(-2000, 2000) for _ in range(n)]

    source = f"""
    .data
    in:   .word {_fmt(samples)}
    code: .zero {n}
    pred_out: .zero 1

    .text
    main:   movi x1, 0             # index
            movi x2, 0             # predictor
            movi x3, 16            # step
            movi x10, in
            movi x11, code
    sample: ld   x4, 0(x10)
            sub  x5, x4, x2        # delta
            movi x6, 0             # code bits
            bge  x5, x0, pos
            movi x6, 2             # sign bit
            sub  x5, x0, x5        # abs(delta)
    pos:    blt  x5, x3, small
            ori  x6, x6, 1         # magnitude bit
            add  x2, x2, x3        # predictor += step (sign applied below)
            shli x3, x3, 1         # step *= 2
            jmp  clamp
    small:  shri x3, x3, 1         # step /= 2
    clamp:  movi x7, 4
            bge  x3, x7, himax
            movi x3, 4             # min step
    himax:  movi x7, 4096
            blt  x3, x7, stored
            movi x3, 4096          # max step
    stored: st   x6, 0(x11)
            addi x10, x10, 8
            addi x11, x11, 8
            addi x1, x1, 1
            slti x8, x1, {n}
            bnez x8, sample
            movi x9, pred_out
            st   x2, 0(x9)
            halt
    """

    def expected(mem) -> dict:
        pred, step = 0, 16
        codes = []
        for s in samples:
            delta = s - pred
            code = 0
            if delta < 0:
                code = 2
                delta = -delta
            if delta >= step:
                code |= 1
                pred += step
                step <<= 1
            else:
                step >>= 1
            if step < 4:
                step = 4
            if step > 4096:
                step = 4096
            codes.append(code)
        return {"codes": codes, "pred": pred}

    return Kernel("adpcm", source, assemble(source), expected)


# --------------------------------------------------------------------- matmul
def matmul_kernel(n: int = 6, seed: int = 13) -> Kernel:
    """Dense n x n floating-point matrix multiply C = A * B."""
    rng = random.Random(seed)
    a = [[round(rng.uniform(-1, 1), 3) for _ in range(n)] for _ in range(n)]
    b = [[round(rng.uniform(-1, 1), 3) for _ in range(n)] for _ in range(n)]

    source = f"""
    .data
    a: .word {_fmt([v for row in a for v in row])}
    b: .word {_fmt([v for row in b for v in row])}
    c: .zero {n * n}

    .text
    main:   movi x1, 0              # i
    iloop:  movi x2, 0              # j
    jloop:  movi x3, 0              # k
            fli  f1, 0.0
            movi x9, {n * 8}
            mul  x5, x1, x9
            movi x6, a
            add  x5, x5, x6         # &a[i][0]
            movi x6, b
            shli x7, x2, 3
            add  x6, x6, x7         # &b[0][j]
    kloop:  fld  f2, 0(x5)
            fld  f3, 0(x6)
            fmul f4, f2, f3
            fadd f1, f1, f4
            addi x5, x5, 8
            add  x6, x6, x9
            addi x3, x3, 1
            slti x8, x3, {n}
            bnez x8, kloop
            mul  x5, x1, x9
            shli x7, x2, 3
            add  x5, x5, x7
            movi x6, c
            add  x5, x5, x6
            fst  f1, 0(x5)
            addi x2, x2, 1
            slti x8, x2, {n}
            bnez x8, jloop
            addi x1, x1, 1
            slti x8, x1, {n}
            bnez x8, iloop
            halt
    """

    def expected(mem) -> dict:
        c = [[sum(a[i][k] * b[k][j] for k in range(n)) for j in range(n)]
             for i in range(n)]
        return {"c": c}

    return Kernel("matmul", source, assemble(source), expected)


#: All kernel builders with their default sizes.
KERNELS: dict[str, Callable[[], Kernel]] = {
    "gmm": gmm_kernel,
    "dnn": dnn_kernel,
    "dct": dct_kernel,
    "fir": fir_kernel,
    "adpcm": adpcm_kernel,
    "matmul": matmul_kernel,
}
