"""Additional kernels: the rest of the Mediabench-flavoured set.

Motion-estimation SAD (mpeg2), a Haar wavelet step (epic), a CRC-style
bit-mangling checksum (pegwit), histogram (image processing) and an
insertion sort (control-heavy integer code).  Same contract as
:mod:`repro.workloads.kernels`: deterministic embedded data plus a pure
Python reference.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.isa import assemble
from repro.isa.program import DATA_BASE
from repro.workloads.kernels import Kernel, _fmt


# ------------------------------------------------------------------- SAD
def sad_kernel(block: int = 8, candidates: int = 4, seed: int = 21) -> Kernel:
    """Motion estimation: sum of absolute differences over candidate blocks,
    tracking the best (minimum) SAD — the mpeg2 encoder's hot loop."""
    rng = random.Random(seed)
    reference = [rng.randint(0, 255) for _ in range(block)]
    search = [[rng.randint(0, 255) for _ in range(block)]
              for _ in range(candidates)]

    source = f"""
    .data
    ref:    .word {_fmt(reference)}
    search: .word {_fmt([v for row in search for v in row])}
    best:   .zero 1
    bestix: .zero 1

    .text
    main:   movi x1, 0              # candidate index
            movi x9, 0x7fffffff     # best SAD
            movi x10, -1            # best index
    cand:   movi x2, 0              # element index
            movi x3, {block * 8}
            mul  x4, x1, x3
            movi x5, search
            add  x5, x5, x4
            movi x6, ref
            movi x7, 0              # SAD accumulator
    elem:   ld   x11, 0(x6)
            ld   x12, 0(x5)
            sub  x13, x11, x12
            bge  x13, x0, noneg
            sub  x13, x0, x13       # abs
    noneg:  add  x7, x7, x13
            addi x6, x6, 8
            addi x5, x5, 8
            addi x2, x2, 1
            slti x8, x2, {block}
            bnez x8, elem
            bge  x7, x9, worse
            mov  x9, x7             # new best
            mov  x10, x1
    worse:  addi x1, x1, 1
            slti x8, x1, {candidates}
            bnez x8, cand
            movi x5, best
            st   x9, 0(x5)
            movi x5, bestix
            st   x10, 0(x5)
            halt
    """

    def expected(mem) -> dict:
        sads = [sum(abs(reference[i] - row[i]) for i in range(block))
                for row in search]
        best = min(sads)
        return {"sads": sads, "best": best, "bestix": sads.index(best)}

    return Kernel("sad", source, assemble(source), expected)


# ------------------------------------------------------------------- wavelet
def haar_kernel(n: int = 16, seed: int = 23) -> Kernel:
    """One Haar wavelet analysis step (epic-style subband decomposition):
    out[i] = (x[2i] + x[2i+1]) / 2, out[n/2 + i] = (x[2i] - x[2i+1]) / 2."""
    rng = random.Random(seed)
    x = [round(rng.uniform(-64, 64), 2) for _ in range(n)]

    source = f"""
    .data
    x:   .word {_fmt(x)}
    out: .zero {n}

    .text
    main:   movi x1, 0              # pair index
            movi x5, x
            movi x6, out
            movi x7, out
            addi x7, x7, {(n // 2) * 8}
            fli  f9, 0.5
    pair:   fld  f1, 0(x5)
            fld  f2, 8(x5)
            fadd f3, f1, f2
            fmul f3, f3, f9         # average
            fsub f4, f1, f2
            fmul f4, f4, f9         # detail
            fst  f3, 0(x6)
            fst  f4, 0(x7)
            addi x5, x5, 16
            addi x6, x6, 8
            addi x7, x7, 8
            addi x1, x1, 1
            slti x8, x1, {n // 2}
            bnez x8, pair
            halt
    """

    def expected(mem) -> dict:
        approx = [(x[2 * i] + x[2 * i + 1]) / 2 for i in range(n // 2)]
        detail = [(x[2 * i] - x[2 * i + 1]) / 2 for i in range(n // 2)]
        return {"approx": approx, "detail": detail}

    return Kernel("haar", source, assemble(source), expected)


# ------------------------------------------------------------------- checksum
def checksum_kernel(n: int = 64, seed: int = 25) -> Kernel:
    """CRC-flavoured rolling checksum (pegwit-style bit mangling):
    acc = ((acc << 1) ^ word) & mask, folded with a rotating xor."""
    rng = random.Random(seed)
    words = [rng.randint(0, 2**31 - 1) for _ in range(n)]
    mask = (1 << 32) - 1

    source = f"""
    .data
    in:  .word {_fmt(words)}
    out: .zero 1

    .text
    main:   movi x1, 0
            movi x2, 0x12345678     # acc
            movi x3, {mask}
            movi x10, in
    word:   ld   x4, 0(x10)
            shli x2, x2, 1
            xor  x2, x2, x4
            and  x2, x2, x3
            shri x5, x2, 13
            xor  x2, x2, x5
            addi x10, x10, 8
            addi x1, x1, 1
            slti x8, x1, {n}
            bnez x8, word
            movi x9, out
            st   x2, 0(x9)
            halt
    """

    def expected(mem) -> dict:
        acc = 0x12345678
        for word in words:
            acc = ((acc << 1) ^ word) & mask
            acc ^= acc >> 13
        return {"checksum": acc}

    return Kernel("checksum", source, assemble(source), expected)


# ------------------------------------------------------------------- histogram
def histogram_kernel(n: int = 96, buckets: int = 8, seed: int = 27) -> Kernel:
    """Bucket histogram of byte-like values (image-processing staple):
    data-dependent store addresses exercise the LSQ."""
    rng = random.Random(seed)
    values = [rng.randint(0, buckets * 32 - 1) for _ in range(n)]

    source = f"""
    .data
    in:   .word {_fmt(values)}
    hist: .zero {buckets}

    .text
    main:   movi x1, 0
            movi x10, in
            movi x11, hist
    value:  ld   x4, 0(x10)
            shri x5, x4, 5          # bucket = value / 32
            shli x5, x5, 3          # byte offset
            add  x6, x11, x5
            ld   x7, 0(x6)
            addi x7, x7, 1
            st   x7, 0(x6)
            addi x10, x10, 8
            addi x1, x1, 1
            slti x8, x1, {n}
            bnez x8, value
            halt
    """

    def expected(mem) -> dict:
        hist = [0] * buckets
        for value in values:
            hist[value >> 5] += 1
        return {"hist": hist}

    return Kernel("histogram", source, assemble(source), expected)


# ------------------------------------------------------------------- sort
def sort_kernel(n: int = 24, seed: int = 29) -> Kernel:
    """In-place insertion sort: branchy, pointer-chasing integer code."""
    rng = random.Random(seed)
    values = [rng.randint(-500, 500) for _ in range(n)]

    source = f"""
    .data
    arr: .word {_fmt(values)}

    .text
    main:   movi x1, 1              # i
    outer:  movi x2, arr
            shli x3, x1, 3
            add  x2, x2, x3
            ld   x4, 0(x2)          # key
            mov  x5, x1             # j
    inner:  beqz x5, place
            movi x6, arr
            subi x7, x5, 1
            shli x8, x7, 3
            add  x6, x6, x8
            ld   x9, 0(x6)          # arr[j-1]
            blt  x9, x4, place      # arr[j-1] < key: stop
            addi x10, x6, 8
            st   x9, 0(x10)         # shift right
            mov  x5, x7
            jmp  inner
    place:  movi x6, arr
            shli x8, x5, 3
            add  x6, x6, x8
            st   x4, 0(x6)
            addi x1, x1, 1
            slti x8, x1, {n}
            bnez x8, outer
            halt
    """

    def expected(mem) -> dict:
        return {"sorted": sorted(values)}

    return Kernel("sort", source, assemble(source), expected)


#: second-wave kernels
EXTRA_KERNELS: dict[str, Callable[[], Kernel]] = {
    "sad": sad_kernel,
    "haar": haar_kernel,
    "checksum": checksum_kernel,
    "histogram": histogram_kernel,
    "sort": sort_kernel,
}
