"""Lookahead hint annotation for functional instruction streams.

The compiler-hint comparator (:mod:`repro.core.hinted`) needs per-operand
single-use marks.  Synthetic traces embed them at build time; for *real*
programs this module computes them the way a compiler would — from the
code itself — by buffering a lookahead window over the dynamic stream and
checking, for each produced value, whether exactly one consumer appears
before the register is redefined.

A value whose redefinition does not occur inside the window is treated as
multi-use (conservative: no speculation), mirroring a compiler's
conservatism around unknown control flow.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Optional

from repro.isa.dyninst import DynInst
from repro.isa.registers import RegRef


class _Window:
    """Lookahead buffer with positional value-lifetime queries."""

    def __init__(self, stream: Iterable[DynInst], size: int) -> None:
        self._iter = iter(stream)
        self._size = size
        self.buffer: deque[DynInst] = deque()
        self._exhausted = False
        self.fill()

    def fill(self) -> None:
        while not self._exhausted and len(self.buffer) <= self._size:
            nxt = next(self._iter, None)
            if nxt is None:
                self._exhausted = True
                return
            self.buffer.append(nxt)

    def pop(self) -> Optional[DynInst]:
        if not self.buffer:
            return None
        dyn = self.buffer.popleft()
        self.fill()
        return dyn

    def value_fate(self, ref: RegRef, start: int) -> Optional[tuple[int, int]]:
        """Fate of the value in ``ref`` produced just before buffer index
        ``start``: scans forward for consumers until the redefinition.

        Returns (consumer count, index of the sole consumer or -1), or
        None when the redefinition lies beyond the window (unknown fate).
        """
        count = 0
        sole = -1
        for index in range(start, len(self.buffer)):
            later = self.buffer[index]
            # single-use is per consuming *instruction*: an instruction
            # reading the value twice (mul r1 <- r1, r1) is one consumer
            if any(src == ref for src in later.srcs):
                count += 1
                sole = index if count == 1 else -1
            if later.dest == ref:
                return count, sole
        return None


def annotate_hints(stream: Iterable[DynInst], window: int = 64) -> Iterator[DynInst]:
    """Yield the stream with ``hint_src_single_use`` / ``hint_dest_single_use``
    / ``hint_reuse_depth`` filled from a ``window``-instruction lookahead."""
    win = _Window(stream, window)
    while True:
        dyn = win.pop()
        if dyn is None:
            return

        if dyn.srcs:
            marks = []
            for src in dyn.srcs:
                if dyn.dest == src:
                    # dyn itself redefines the register: the consumed value's
                    # lifetime closes here, no later consumer can exist
                    marks.append(True)
                else:
                    # dyn already consumed the value; it is the *last* use iff
                    # no further consumer appears before the redefinition
                    fate = win.value_fate(src, 0)
                    marks.append(fate is not None and fate[0] == 0)
            dyn.hint_src_single_use = tuple(marks)

        if dyn.dest is not None:
            fate = win.value_fate(dyn.dest, 0)
            single = fate is not None and fate[0] == 1
            dyn.hint_dest_single_use = single
            depth = 0
            position = 0
            ref = dyn.dest
            while single and depth < 3:
                _count, consumer_index = fate  # type: ignore[misc]
                consumer = win.buffer[consumer_index]
                if consumer.dest != ref:
                    break  # the sole consumer does not extend the chain
                depth += 1
                position = consumer_index + 1
                fate = win.value_fate(ref, position)
                single = fate is not None and fate[0] == 1
            dyn.hint_reuse_depth = depth
        yield dyn
