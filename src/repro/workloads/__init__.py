"""Workload substrate.

Two kinds of workloads drive the simulator:

* **statistical traces** (:mod:`repro.workloads.generator`): synthetic
  dynamic instruction streams with a fixed pseudo-static skeleton, whose
  register-dependence structure (consumer counts, single-use chains,
  redefinition patterns), opcode mix, branch behaviour and memory
  locality are controlled per benchmark by
  :mod:`repro.workloads.profiles`.  These stand in for the paper's SPEC
  CPU2006 / Mediabench / cognitive runs (see DESIGN.md for why the
  substitution preserves the studied behaviour);
* **real kernels** (:mod:`repro.workloads.kernels`): GMM scoring, DNN
  layers, DCT, FIR and friends written in the toy ISA and executed
  functionally end-to-end.
"""

from repro.workloads.profiles import (
    WorkloadProfile,
    BENCHMARKS,
    SPECINT,
    SPECFP,
    MEDIABENCH,
    COGNITIVE,
    suite,
)
from repro.workloads.generator import SyntheticWorkload, shared_workload
from repro.workloads.kernels import KERNELS, Kernel
from repro.workloads.kernels_extra import EXTRA_KERNELS
from repro.workloads.lookahead import annotate_hints
from repro.workloads.microbench import MICROBENCHES
from repro.workloads.programs import PROGRAMS
from repro.workloads.trace_io import (
    load_trace,
    load_trace_file,
    save_trace,
    save_trace_file,
)

#: every real kernel, both waves
ALL_KERNELS: dict = {**KERNELS, **EXTRA_KERNELS}

__all__ = [
    "Kernel",
    "KERNELS",
    "EXTRA_KERNELS",
    "ALL_KERNELS",
    "MICROBENCHES",
    "PROGRAMS",
    "annotate_hints",
    "save_trace",
    "load_trace",
    "save_trace_file",
    "load_trace_file",
    "WorkloadProfile",
    "BENCHMARKS",
    "SPECINT",
    "SPECFP",
    "MEDIABENCH",
    "COGNITIVE",
    "suite",
    "SyntheticWorkload",
    "shared_workload",
]
