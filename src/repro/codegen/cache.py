"""On-disk + in-process cache of compiled cycle kernels.

Layout mirrors :mod:`repro.harness.cache` (content-addressed, sharded by
key prefix, atomic writes, corrupt entries read as misses and unlinked):

    <root>/<key[:2]>/kernel-<key>.py

Each cached module is framed by a header line and a footer sentinel that
both carry the fingerprint::

    # repro-kernel <key>
    ...generated module...
    # repro-kernel-end <key>

A file missing either frame (truncated write, disk corruption, a stale
file from a different fingerprint) or failing to ``compile()``/``exec``
is a miss: it is unlinked and the kernel regenerated from source.
Compiled entry points are memoised per process in ``_KERNEL_MEMO`` so a
sweep touching many points with the same fingerprint compiles once.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Optional

from repro.codegen.fingerprint import kernel_fingerprint
from repro.codegen.generator import generate_kernel_source

HEADER_PREFIX = "# repro-kernel "
FOOTER_PREFIX = "# repro-kernel-end "

#: fingerprint -> compiled ``run_kernel`` entry point (per process)
_KERNEL_MEMO: dict[str, Callable] = {}


def kernels_enabled() -> bool:
    """Kill switch: ``REPRO_NO_KERNEL=1`` disables generated kernels."""
    return os.environ.get("REPRO_NO_KERNEL", "") in ("", "0")


def default_kernel_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_DIR")
    if env:
        return Path(env)
    from repro.harness.cache import default_cache_dir

    return default_cache_dir() / "kernels"


class KernelCache:
    """Fingerprint-keyed store of generated kernel modules."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_kernel_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"kernel-{key}.py"

    @staticmethod
    def frame(key: str, body: str) -> str:
        return (HEADER_PREFIX + key + "\n"
                + body.rstrip("\n") + "\n"
                + FOOTER_PREFIX + key + "\n")

    def load_source(self, key: str) -> Optional[str]:
        """Framed module text for ``key``, or None (corrupt files unlink)."""
        from repro.harness.cache import _unlink_quietly

        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        stripped = text.rstrip("\n")
        if (not text.startswith(HEADER_PREFIX + key + "\n")
                or not stripped.endswith("\n" + FOOTER_PREFIX + key)):
            _unlink_quietly(path)
            self.misses += 1
            return None
        self.hits += 1
        return text

    def store_source(self, key: str, body: str) -> str:
        """Write the framed module for ``key``; returns the framed text.

        Write failures (read-only cache dir) are swallowed — the caller
        still compiles from the in-memory text.
        """
        from repro.harness.cache import atomic_write_text

        text = self.frame(key, body)
        try:
            atomic_write_text(self.path_for(key), text)
        except OSError:
            pass
        return text

    def invalidate(self, key: str) -> None:
        from repro.harness.cache import _unlink_quietly

        _unlink_quietly(self.path_for(key))


def _compile_kernel(text: str, key: str) -> Callable:
    namespace: dict = {"__name__": "repro_kernel_" + key}
    code = compile(text, "<repro-kernel " + key + ">", "exec")
    exec(code, namespace)
    fn = namespace.get("run_kernel")
    if not callable(fn):
        raise RuntimeError("generated kernel defines no run_kernel()")
    return fn


def load_kernel(config, cache: Optional[KernelCache] = None) -> Callable:
    """The compiled ``run_kernel(proc, max_insts)`` for ``config``.

    Compiles at most once per fingerprint per process; a corrupt cached
    module is unlinked and regenerated.  Raises
    :class:`repro.codegen.generator.KernelUnavailable` for schemes the
    generator does not support.
    """
    key = kernel_fingerprint(config)
    fn = _KERNEL_MEMO.get(key)
    if fn is not None:
        return fn
    if cache is None:
        cache = KernelCache()
    text = cache.load_source(key)
    if text is not None:
        try:
            fn = _compile_kernel(text, key)
        except Exception:
            cache.invalidate(key)
            text = None
    if text is None:
        body = generate_kernel_source(config)
        text = cache.store_source(key, body)
        fn = _compile_kernel(text, key)
    _KERNEL_MEMO[key] = fn
    return fn


def kernel_for(config, renamer) -> Optional[Callable]:
    """Kernel entry point for a live processor, or None to use the event loop.

    ``renamer`` is the live renamer instance (or, for capability probes,
    its class).  Returns None when kernels are disabled, when the renamer
    is not the exact class the scheme's kernel was generated against
    (``codegen_id`` must be declared in the class's own ``__dict__`` —
    subclasses such as test oracles fall back to the event loop, whose
    virtual dispatch honours their overrides), when the *instance* shadows
    a class method in its ``__dict__`` (monkeypatched hooks like
    ``renamer.write = spy`` would be bypassed by the kernel's inlined
    fast paths), or when generation/compilation fails for any reason.
    """
    if not kernels_enabled():
        return None
    renamer_cls = renamer if isinstance(renamer, type) else type(renamer)
    if renamer_cls.__dict__.get("codegen_id") != config.scheme:
        return None
    if not isinstance(renamer, type):
        for name in vars(renamer):
            if callable(getattr(renamer_cls, name, None)):
                return None
    try:
        return load_kernel(config)
    except Exception:
        return None
