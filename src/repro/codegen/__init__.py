"""Code-generated per-config cycle kernels.

See :mod:`repro.codegen.generator` for what gets specialized and
:mod:`repro.codegen.cache` for the fingerprint-keyed on-disk cache.
"""

from repro.codegen.cache import (
    KernelCache,
    default_kernel_dir,
    kernel_for,
    kernels_enabled,
    load_kernel,
)
from repro.codegen.fingerprint import kernel_fingerprint
from repro.codegen.generator import (
    GENERATOR_VERSION,
    KernelUnavailable,
    generate_kernel_source,
)

__all__ = [
    "GENERATOR_VERSION",
    "KernelCache",
    "KernelUnavailable",
    "default_kernel_dir",
    "generate_kernel_source",
    "kernel_fingerprint",
    "kernel_for",
    "kernels_enabled",
    "load_kernel",
]
