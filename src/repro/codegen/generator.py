"""Per-(scheme, MachineConfig) cycle-kernel source generator.

:func:`generate_kernel_source` emits one flattened Python module per
configuration: a single ``run_kernel(proc, max_insts)`` function that
replays :meth:`repro.pipeline.processor.Processor._run_event` with

* machine constants (widths, structure sizes, cycle budgets, the PRT
  version-counter saturation point) inlined as literals,
* the functional-unit dispatch table resolved into a per-kind unrolled
  ``if/elif`` chain with literal counts and latencies,
* the renamer hot path — ``can_rename``, ``rename``, free-list pop, PRT
  update, commit-time release bookkeeping — fused directly into the
  rename/dispatch, writeback and commit stages for the concrete scheme,
* config-dead code (interrupt delivery, register-file port limits,
  operand verification, wrong-path squash) dropped entirely when the
  config disables it,
* the quiet-cycle skip logic specialized to the config's structure sizes.

The generated kernel must be *bit-identical* to ``_run_event`` — same
SimStats, same commit stream, same exception behaviour.  Three invariants
make that safe:

* **hoisted-local freshness**: locals bound to containers that recovery
  rebinds (the scoreboard dict, rename-map entry lists, the
  conventional/early free deques, the sharing refcount lists) are
  re-hoisted after every call that can trigger a flush — exception and
  interrupt handlers, ``on_cycle`` hooks, the slow-path ``_commit``.
  Containers only ever mutated in place (ROB deque, completion heap,
  LSQ deques, PRT entry lists, retirement maps, register-file value
  dicts) are hoisted once.
* **mirror flushing**: the hottest counters (``stats.committed``, the
  four occupancy accumulators, ``proc._last_progress``) live in plain
  locals; they are flushed back to the processor before anything
  external can observe them (``on_cycle`` hooks, the slow-path
  ``_commit`` with its oracle/on_commit hooks, watchdog aborts) and
  unconditionally in a ``finally`` block, so even a propagating
  simulation error leaves the processor's stats exactly as the event
  loop would have.  After any delegated call that may mutate them they
  are re-read.
* **slow-path delegation**: anything cold or stateful-in-a-subtle-way
  (repair µop injection on stale sources, sharing ``_release`` predictor
  training, wrong-path squash, flush/replay) calls the original bound
  method, so there is exactly one implementation of the tricky parts.

Renamer subclasses that override hot-path methods (e.g. ad-hoc oracle
renamers in tests) are rejected at dispatch time by the exact-class
``codegen_id`` check in :func:`repro.codegen.kernel_for` — the generated
code inlines *this* scheme's methods, so only the class that declares the
matching ``codegen_id`` in its own ``__dict__`` may run it.
"""

from __future__ import annotations

#: schemes the generator knows how to flatten
KNOWN_SCHEMES = ("conventional", "early", "sharing", "hinted")

#: FU dispatch chain order, hottest kinds first (measured on hmmer)
_FU_ORDER = ("alu", "mem", "fpu", "branch", "mul", "div", "fpdiv")

#: bump when the generated code's shape or its contract with the
#: simulator internals changes, so stale cached kernels read as misses
GENERATOR_VERSION = 3


class KernelUnavailable(RuntimeError):
    """No kernel can be generated for this configuration."""


def _reindent(block: str, pad: str) -> str:
    """Re-indent a template block (written at column 0) by ``pad``."""
    lines = []
    for line in block.strip("\n").splitlines():
        lines.append(pad + line if line.strip() else "")
    return "\n".join(lines)


def _shift(text: str, pad: str = "    ") -> str:
    """Shift already-indented emitted text deeper by ``pad``."""
    return "\n".join(pad + line if line.strip() else ""
                     for line in text.splitlines())


#: mirror flush: plain stores — the locals own the authoritative values
_FLUSH = """
stats.committed = n_committed
stats.rob_occupancy_sum = occ_rob
stats.iq_occupancy_sum = occ_iq
stats.free_regs_sum = occ_free
stats.occupancy_samples = occ_samples
proc._last_progress = last_progress
"""


def _fu_chain(config, pad: str) -> str:
    """Unrolled per-kind FU reservation; each miss ``continue``s to the
    next ready instruction (mirrors FUPool.try_issue returning None)."""
    kinds = [k for k in _FU_ORDER if k in config.fu_config]
    kinds += [k for k in config.fu_config if k not in kinds]
    parts = []
    for pos, kind in enumerate(kinds):
        count, latency, pipelined = config.fu_config[kind]
        kw = "if" if pos == 0 else "elif"
        if pipelined:
            parts.append(
                f'{kw} fu == "{kind}":\n'
                f'    _n = fus_used.get("{kind}", 0)\n'
                f'    if _n >= {count}:\n'
                f'        continue\n'
                f'    fus_used["{kind}"] = _n + 1\n'
                f'    latency = {latency}'
            )
        else:
            parts.append(
                f'{kw} fu == "{kind}":\n'
                f'    _n = fus_used.get("{kind}", 0)\n'
                f'    if _n >= {count}:\n'
                f'        continue\n'
                f'    _slots = fus_slots_{kind}\n'
                f'    for _si in range({count}):\n'
                f'        if _slots[_si] <= cycle:\n'
                f'            _slots[_si] = cycle + {latency}\n'
                f'            break\n'
                f'    else:\n'
                f'        continue\n'
                f'    fus_used["{kind}"] = _n + 1\n'
                f'    latency = {latency}'
            )
    # unknown kind: defer to the pool so the failure mode (KeyError)
    # matches the event loop exactly
    parts.append(
        'else:\n'
        '    latency = fus.try_issue(fu, cycle)\n'
        '    if latency is None:\n'
        '        continue'
    )
    return _reindent("\n".join(parts), pad)


def _refresh_block(scheme: str, pad: str) -> str:
    """Re-hoist every local that a flush/recovery can rebind."""
    lines = ["scoreboard = proc.scoreboard"]
    if scheme in ("conventional", "early"):
        lines += [
            "int_free = _dom_int.free",
            "fp_free = _dom_fp.free",
            "int_map = _dom_int.map.entries",
            "fp_map = _dom_fp.map.entries",
        ]
    else:  # sharing / hinted
        lines += [
            "int_map = _dom_int.map.entries",
            "fp_map = _dom_fp.map.entries",
            "int_refcount = _dom_int.refcount",
            "fp_refcount = _dom_fp.refcount",
        ]
    return _reindent("\n".join(lines), pad)


# --------------------------------------------------------------------- scheme hoists
def _scheme_hoists(scheme: str, pad: str) -> str:
    common = (
        "_dom_int = renamer._domains_by_value[0]\n"
        "_dom_fp = renamer._domains_by_value[1]\n"
        "int_map = _dom_int.map.entries\n"
        "fp_map = _dom_fp.map.entries\n"
        "int_retire = _dom_int.retire_map.entries\n"
        "fp_retire = _dom_fp.retire_map.entries\n"
        "int_rfv = _dom_int.rf._values\n"
        "fp_rfv = _dom_fp.rf._values\n"
        "int_caps = _dom_int.rf._capacity\n"
        "fp_caps = _dom_fp.rf._capacity\n"
    )
    if scheme in ("conventional", "early"):
        block = common + (
            "int_free = _dom_int.free\n"
            "fp_free = _dom_fp.free\n"
        )
        if scheme == "early":
            block += (
                "int_states = _dom_int.state\n"
                "fp_states = _dom_fp.state\n"
            )
    else:  # sharing / hinted
        block = common + (
            "int_flist = _dom_int.free\n"
            "fp_flist = _dom_fp.free\n"
            "int_prt = _dom_int.prt.entries\n"
            "fp_prt = _dom_fp.prt.entries\n"
            "int_shadow = _dom_int.shadow_of\n"
            "fp_shadow = _dom_fp.shadow_of\n"
            "int_refcount = _dom_int.refcount\n"
            "fp_refcount = _dom_fp.refcount\n"
            "int_last_bank = _dom_int.config.num_banks - 1\n"
            "fp_last_bank = _dom_fp.config.num_banks - 1\n"
            "tp_table = renamer.predictor.table\n"
            "tp_mask = renamer.predictor.mask\n"
            "tp_max = renamer.predictor.max_value\n"
            "tp_stats = renamer.predictor.stats\n"
            "su_table = renamer.single_use.table\n"
            "su_mask = renamer.single_use.mask\n"
            "su_stats = renamer.single_use.stats\n"
            "renamer_release = renamer._release\n"
            "renamer_rename = renamer.rename\n"
            "renamer_can_rename = renamer.can_rename\n"
            "renamer_uops_needed = renamer.uops_needed\n"
        )
    return _reindent(block, pad)


# --------------------------------------------------------------------- commit bodies
def _commit_renamer_block(scheme: str, pad: str) -> str:
    """Inline of ``renamer.commit(head)`` for the fast commit path."""
    if scheme == "conventional":
        block = """
dest = head.dest
dt = head.dest_tag
if dest is not None and dt is not None:
    if dt[0] == 0:
        _retire = int_retire; _free_sel = int_free; _rfv = int_rfv
    else:
        _retire = fp_retire; _free_sel = fp_free; _rfv = fp_rfv
    _idx = dest[1]
    _old = _retire[_idx]
    if _old is None:
        raise AssertionError("logical register " + str(_idx) + " unmapped")
    _retire[_idx] = (dt[1], dt[2])
    if _old[0] != dt[1]:
        _rfv.pop(_old[0], None)
        _free_sel.append(_old[0])
        ren_stats.releases += 1
"""
    elif scheme == "early":
        block = """
dest = head.dest
dt = head.dest_tag
if dest is not None and dt is not None:
    if dt[0] == 0:
        _retire = int_retire; _free_sel = int_free; _states = int_states
    else:
        _retire = fp_retire; _free_sel = fp_free; _states = fp_states
    _retire[dest[1]] = (dt[1], dt[2])
    _old_phys, _old_gen = head.prev_map
    _st = _states[_old_phys]
    if (_old_phys != dt[1] and not _st.released
            and _st.generation == _old_gen):
        _st.released = True
        _free_sel.append(_old_phys)
        renamer.commit_releases += 1
        ren_stats.releases += 1
"""
    else:  # sharing / hinted
        # the release path is fully inlined (consumers-log training, bank
        # predictor on_release, register-file drop, free-list push, PRT
        # reset); it must mirror SharingRenamer._release exactly
        block = """
dt = head.dest_tag
if head.dest is not None and dt is not None:
    if dt[0] == 0:
        _retire = int_retire; _refcount = int_refcount
        _prt_sel = int_prt; _shadow_sel = int_shadow
        _rfv_sel = int_rfv; _flist_sel = int_flist
    else:
        _retire = fp_retire; _refcount = fp_refcount
        _prt_sel = fp_prt; _shadow_sel = fp_shadow
        _rfv_sel = fp_rfv; _flist_sel = fp_flist
    _idx = head.dest[1]
    _old = _retire[_idx]
    _np = dt[1]
    if _old[0] != _np or _old[1] != dt[2]:
        _retire[_idx] = (_np, dt[2])
        _refcount[_np] += 1
        _op = _old[0]
        _refcount[_op] -= 1
        if _refcount[_op] == 0:
            _pe = _prt_sel[_op]
            _missed = 0
            _clog = _pe.consumers_log
            if _clog:
                _muv = _pe.multi_use_versions
                for _cpc, _cver, _ckind in _clog:
                    if _cver not in _muv:
                        _si = (_cpc ^ (_cpc >> 9)) & su_mask
                        _sv = su_table[_si] + 1
                        su_table[_si] = _sv if _sv < 3 else 3
                        if _ckind != "reused":
                            su_stats.missed += 1
                            if _ckind == "denied_pred":
                                _missed += 1
                        else:
                            su_stats.confirmed_good += 1
            _ai = _pe.alloc_index
            if _ai >= 0:
                tp_stats.releases += 1
                _pb = _shadow_sel[_op]
                _ar = _pe.version
                _xu = _pe.extra_use
                if _ar == _pb and not _xu and _missed == 0:
                    tp_stats.exact_hits += 1
                if _xu:
                    tp_stats.reuse_incorrect += 1
                    tp_table[_ai] = 0
                elif _pb > 0:
                    if _ar > 0:
                        tp_stats.reuse_correct += 1
                    else:
                        tp_stats.reuse_unused += 1
                    if _ar < _pb:
                        _tv = tp_table[_ai] - 1
                        tp_table[_ai] = _tv if _tv > 0 else 0
                elif _missed > 0:
                    tp_stats.no_reuse_incorrect += 1
                else:
                    tp_stats.no_reuse_correct += 1
            _rfv_sel.pop(_op, None)
            if _flist_sel._is_free[_op]:
                raise AssertionError("double free of p" + str(_op))
            _flist_sel._free[_flist_sel._bank_of[_op]].append(_op)
            _flist_sel._is_free[_op] = True
            _flist_sel._count += 1
            _pe.read_bit = False
            _pe.version = 0
            _pe.alloc_index = -1
            _pe.predicted_single_use = False
            _pe.extra_use = False
            _pe.lost_reuse = 0
            _pe.consumers_log = []
            _pe.multi_use_versions = set()
            ren_stats.releases += 1
"""
    return _reindent(block, pad)


# --------------------------------------------------------------------- writeback write
def _writeback_write_block(scheme: str, pad: str) -> str:
    """Inline of ``renamer.write(dest_tag, result)``."""
    if scheme == "early":
        block = """
if dt[0] == 0:
    _rfv = int_rfv; _caps = int_caps; _states = int_states
    _free_sel = int_free
else:
    _rfv = fp_rfv; _caps = fp_caps; _states = fp_states
    _free_sel = fp_free
_ph = dt[1]
_ver = dt[2]
if _ph >= 0 and _ver >= _caps[_ph]:
    raise AssertionError(
        "write of version " + str(_ver) + " exceeds capacity "
        + str(_caps[_ph]) + " of p" + str(_ph))
_vers = _rfv.get(_ph)
if _vers is None:
    _rfv[_ph] = {_ver: _result}
else:
    _vers[_ver] = _result
_st = _states[_ph]
_st.produced = True
if _st.unmapped and _st.pending_reads == 0 and not _st.released:
    _st.released = True
    _free_sel.append(_ph)
    renamer.early_releases += 1
    ren_stats.releases += 1
"""
    else:
        block = """
if dt[0] == 0:
    _rfv = int_rfv; _caps = int_caps
else:
    _rfv = fp_rfv; _caps = fp_caps
_ph = dt[1]
_ver = dt[2]
if _ph >= 0 and _ver >= _caps[_ph]:
    raise AssertionError(
        "write of version " + str(_ver) + " exceeds capacity "
        + str(_caps[_ph]) + " of p" + str(_ph))
_vers = _rfv.get(_ph)
if _vers is None:
    _rfv[_ph] = {_ver: _result}
else:
    _vers[_ver] = _result
"""
    return _reindent(block, pad)


# --------------------------------------------------------------------- rename bodies
def _sharing_single_use_pred(scheme: str, pad: str) -> str:
    if scheme == "hinted":
        block = """
_hints = dyn.hint_src_single_use
_pred = bool(_hints[_i]) if _i < len(_hints) else False
"""
    else:
        block = """
su_stats.predictions += 1
_pred = su_table[(_pc ^ (_pc >> 9)) & su_mask] >= 2
if _pred:
    su_stats.predicted_yes += 1
"""
    return _reindent(block, pad)


def _sharing_bank_pred(scheme: str, pad: str) -> str:
    if scheme == "hinted":
        block = """
_pi = (_pc ^ (_pc >> 9)) & tp_mask
if dyn.hint_dest_single_use:
    _pb = dyn.hint_reuse_depth
    if _pb < 1:
        _pb = 1
    elif _pb > 3:
        _pb = 3
else:
    _pb = 0
"""
    else:
        block = """
_pi = (_pc ^ (_pc >> 9)) & tp_mask
tp_stats.predictions += 1
_pb = tp_table[_pi]
"""
    return _reindent(block, pad)


def _rename_body(config, pad: str) -> str:
    """The fused rename/dispatch stage for the configured scheme.

    Emitted inside ``while dispatched < RW:`` at indent ``pad``.
    """
    scheme = config.scheme
    ROB = config.rob_size
    IQS = config.iq_size
    LQ = config.lq_size
    SQ = config.sq_size
    MAXV = (1 << config.counter_bits) - 1

    head = f"""
if not fetch_queue:
    break
dyn = fetch_queue[0]
_srcs = dyn.srcs
if {ROB} - len(rob_entries) >= 7 and {IQS} - iq._size >= 7:
    pass
else:
"""
    if scheme in ("conventional", "early"):
        head += """
    if len(rob_entries) >= {ROB}:
        stats.rename_stall_rob += 1
        rename_stall = 1
        break
    if iq._size >= {IQS}:
        stats.rename_stall_iq += 1
        rename_stall = 2
        break
""".format(ROB=ROB, IQS=IQS)
    else:
        # uops_needed() is only non-zero when a source is stale (repair
        # µops); scan for staleness inline and price the group with the
        # bound method only in that rare case
        head += f"""
    _slots = 1
    for _s in _srcs:
        if _s[0] is _RC_INT:
            _t = int_map[_s[1]]
            if _t[1] < int_prt[_t[0]].version:
                _slots = renamer_uops_needed(dyn, is_ready) + 1
                break
        else:
            _t = fp_map[_s[1]]
            if _t[1] < fp_prt[_t[0]].version:
                _slots = renamer_uops_needed(dyn, is_ready) + 1
                break
    if {ROB} - len(rob_entries) < _slots:
        stats.rename_stall_rob += 1
        rename_stall = 1
        break
    if {IQS} - iq._size < _slots:
        stats.rename_stall_iq += 1
        rename_stall = 2
        break
"""
    head += f"""
info = dyn._info
if info is None:
    info = OPCODES[dyn.op]
    dyn._info = info
_is_load = info.is_load
_is_store = info.is_store
if _is_load:
    if lsq._loads >= {LQ}:
        stats.rename_stall_lsq += 1
        rename_stall = 3
        break
elif _is_store:
    if lsq._stores >= {SQ}:
        stats.rename_stall_lsq += 1
        rename_stall = 3
        break
dest = dyn.dest
"""

    if scheme in ("conventional", "early"):
        can_rename = """
if dest is not None:
    if not (int_free if dest[0] is _RC_INT else fp_free):
        stats.rename_stall_regs += 1
        rename_stall = 4
        break
fetch_queue.popleft()
ren_stats.insts += 1
"""
    else:
        can_rename = """
_wc = len(_srcs) + 1
if int_flist._count >= _wc and fp_flist._count >= _wc:
    pass
elif not renamer_can_rename(dyn):
    stats.rename_stall_regs += 1
    rename_stall = 4
    break
fetch_queue.popleft()
"""

    if scheme == "conventional":
        rename_core = """
src_tags = []
for _s in _srcs:
    if _s[0] is _RC_INT:
        _t = int_map[_s[1]]
        if _t is None:
            raise AssertionError(
                "logical register " + str(_s[1]) + " unmapped")
        src_tags.append((0, _t[0], _t[1]))
    else:
        _t = fp_map[_s[1]]
        if _t is None:
            raise AssertionError(
                "logical register " + str(_s[1]) + " unmapped")
        src_tags.append((1, _t[0], _t[1]))
dyn.src_tags = src_tags
if dest is not None:
    ren_stats.dest_insts += 1
    if dest[0] is _RC_INT:
        _cv = 0; _map = int_map; _free_sel = int_free
    else:
        _cv = 1; _map = fp_map; _free_sel = fp_free
    if not _free_sel:
        raise AssertionError("rename called without a free register")
    _ph = _free_sel.popleft()
    _prev = _map[dest[1]]
    if _prev is None:
        raise AssertionError(
            "logical register " + str(dest[1]) + " unmapped")
    dyn.prev_map = _prev
    dyn.allocated_new = True
    dyn.alloc_bank = 0
    _map[dest[1]] = (_ph, 0)
    dyn.dest_tag = (_cv, _ph, 0)
    ren_stats.allocations += 1
    ren_stats.allocations_per_bank[0] += 1
"""
    elif scheme == "early":
        rename_core = """
src_tags = []
for _s in _srcs:
    if _s[0] is _RC_INT:
        _cv = 0; _map = int_map; _states = int_states
    else:
        _cv = 1; _map = fp_map; _states = fp_states
    _t = _map[_s[1]]
    if _t is None:
        raise AssertionError(
            "logical register " + str(_s[1]) + " unmapped")
    _ph = _t[0]
    _states[_ph].pending_reads += 1
    src_tags.append((_cv, _ph, 0))
dyn.src_tags = src_tags
if dest is not None:
    ren_stats.dest_insts += 1
    if dest[0] is _RC_INT:
        _cv = 0; _map = int_map; _states = int_states
        _free_sel = int_free
    else:
        _cv = 1; _map = fp_map; _states = fp_states
        _free_sel = fp_free
    if not _free_sel:
        raise AssertionError("rename called without a free register")
    _ph = _free_sel.popleft()
    _st = _states[_ph]
    _st.pending_reads = 0
    _st.produced = False
    _st.unmapped = False
    _st.released = False
    _st.generation += 1
    _prev = _map[dest[1]]
    if _prev is None:
        raise AssertionError(
            "logical register " + str(dest[1]) + " unmapped")
    _pp = _prev[0]
    _pst = _states[_pp]
    dyn.prev_map = (_pp, _pst.generation)
    dyn.allocated_new = True
    _map[dest[1]] = (_ph, 0)
    dyn.dest_tag = (_cv, _ph, 0)
    ren_stats.allocations += 1
    ren_stats.allocations_per_bank[0] += 1
    _pst.unmapped = True
    if _pst.produced and _pst.pending_reads == 0 and not _pst.released:
        _pst.released = True
        _free_sel.append(_pp)
        renamer.early_releases += 1
        ren_stats.releases += 1
"""
    else:  # sharing / hinted
        # a stale source needs repair µops (predictor training + extra
        # allocations): delegate the whole instruction to the bound
        # rename() *before* any inline mutation, so nothing double-applies
        rename_core = """
_stale = False
for _s in _srcs:
    if _s[0] is _RC_INT:
        _t = int_map[_s[1]]
        if _t[1] < int_prt[_t[0]].version:
            _stale = True
            break
    else:
        _t = fp_map[_s[1]]
        if _t[1] < fp_prt[_t[0]].version:
            _stale = True
            break
if _stale:
    group = renamer_rename(dyn, is_ready)
    for renamed in group:
        renamed.rename_cycle = cycle
        if renamed.dest_tag is not None:
            scoreboard[renamed.dest_tag] = False
        rob_push(renamed)
        iq_insert(renamed, is_ready)
        if renamed.info.is_mem:
            lsq_insert(renamed)
    dispatched += len(group)
    last_progress = cycle
    continue
ren_stats.insts += 1
src_tags = []
first_use = {}
for _s in _srcs:
    if _s[0] is _RC_INT:
        _cv = 0; _map = int_map; _prt = int_prt
    else:
        _cv = 1; _map = fp_map; _prt = fp_prt
    _t = _map[_s[1]]
    _ph = _t[0]
    _ver = _t[1]
    _e = _prt[_ph]
    _key = (_cv, _ph, _ver)
    if _key not in first_use:
        _rb = _e.read_bit
        first_use[_key] = not _rb
        if _rb and _e.version == _ver:
            _e.multi_use_versions.add(_ver)
            if _e.predicted_single_use:
                ren_stats.multi_use_detected += 1
                _ai = _e.alloc_index
                if _ai >= 0:
                    tp_table[_ai] = 0
    _e.read_bit = True
    src_tags.append(_key)
dyn.src_tags = src_tags
if dest is not None:
    ren_stats.dest_insts += 1
    if dest[0] is _RC_INT:
        _cv = 0; _map = int_map; _prt = int_prt; _flist = int_flist
        _shadow = int_shadow; _rfv = int_rfv; _last_bank = int_last_bank
    else:
        _cv = 1; _map = fp_map; _prt = fp_prt; _flist = fp_flist
        _shadow = fp_shadow; _rfv = fp_rfv; _last_bank = fp_last_bank
    _didx = dest[1]
    dyn.prev_map = _map[_didx]
    _n = len(_srcs)
    order = [_i for _i in range(_n) if _srcs[_i] == dest]
    order += [_i for _i in range(_n) if _srcs[_i] != dest]
    _pc = dyn.pc
    _reused = False
    for _i in order:
        _s = _srcs[_i]
        if _s[0] is not dest[0]:
            continue
        _tag = src_tags[_i]
        _ph = _tag[1]
        _ver = _tag[2]
        _e = _prt[_ph]
        if _e.version != _ver:
            continue
        if not first_use[(_cv, _ph, _ver)]:
            if _s == dest:
                ren_stats.lost_reuse_not_first_use += 1
            continue
        if _s != dest:
$SINGLE_USE_PRED
            if not _pred and _flist._count > 0:
                _e.lost_reuse += 1
                _log = _e.consumers_log
                if len(_log) < 16:
                    _log.append((_pc, _ver, "denied_pred"))
                ren_stats.lost_reuse_not_predicted += 1
                continue
        if _ver >= $MAXV:
            ren_stats.lost_reuse_saturated += 1
            continue
        if _ver >= _shadow[_ph]:
            _e.lost_reuse += 1
            _log = _e.consumers_log
            if len(_log) < 16:
                _log.append((_pc, _ver, "denied_cap"))
            _ai = _e.alloc_index
            if _ai >= 0:
                _tv = tp_table[_ai] + 1
                tp_table[_ai] = _tv if _tv < tp_max else tp_max
            ren_stats.lost_reuse_no_shadow += 1
            continue
        _nv = _ver + 1
        _e.version = _nv
        _e.read_bit = False
        _map[_didx] = (_ph, _nv)
        dyn.dest_tag = (_cv, _ph, _nv)
        dyn.reused_src = _i
        ren_stats.reuses += 1
        if _s == dest:
            ren_stats.reuses_guaranteed += 1
        else:
            ren_stats.reuses_predicted += 1
            _log = _e.consumers_log
            if len(_log) < 16:
                _log.append((_pc, _ver, "reused"))
        _reused = True
        break
    if not _reused:
$BANK_PRED
        _bank = _pb if _pb < _last_bank else _last_bank
        _dq = _flist._free[_bank]
        if _dq:
            _flist._count -= 1
            _ph = _dq.popleft()
            _flist._is_free[_ph] = False
            _ab = _bank
        else:
            _alloc = _flist.allocate(_bank)
            if _alloc is None:
                raise AssertionError(
                    "rename called without a free register")
            _ph, _ab = _alloc
        if _ab != _bank:
            ren_stats.fallback_allocations += 1
        _rfv.pop(_ph, None)
        _e = _prt[_ph]
        _e.read_bit = False
        _e.version = 0
        _e.alloc_index = _pi
        _e.predicted_single_use = _pb > 0
        _e.extra_use = False
        _e.lost_reuse = 0
        _e.consumers_log = []
        _e.multi_use_versions = set()
        _map[_didx] = (_ph, 0)
        dyn.dest_tag = (_cv, _ph, 0)
        dyn.allocated_new = True
        dyn.alloc_bank = _ab
        ren_stats.allocations += 1
        ren_stats.allocations_per_bank[_ab] += 1
"""
        rename_core = rename_core.replace(
            "$SINGLE_USE_PRED",
            _sharing_single_use_pred(scheme, " " * 12))
        rename_core = rename_core.replace(
            "$BANK_PRED", _sharing_bank_pred(scheme, " " * 8))
        rename_core = rename_core.replace("$MAXV", str(MAXV))

    dispatch_tail = f"""
dyn.rename_cycle = cycle
dt = dyn.dest_tag
if dt is not None:
    scoreboard[dt] = False
if len(rob_entries) >= {ROB}:
    raise AssertionError("ROB overflow")
rob_entries.append(dyn)
if iq._size >= {IQS}:
    raise AssertionError("issue queue overflow")
waiting = None
for _tag in dyn.src_tags:
    if not scoreboard.get(_tag, False):
        if waiting is None:
            waiting = {{_tag}}
        else:
            waiting.add(_tag)
_entry = _IQEntry(dyn, waiting, next(iq_ticket))
iq_by_dyn[id(dyn)] = _entry
iq._size += 1
if waiting:
    for _tag in waiting:
        _wl = iq_by_tag.get(_tag)
        if _wl is None:
            iq_by_tag[_tag] = [_entry]
        else:
            _wl.append(_entry)
else:
    iq._ready.append(_entry)
    iq._ready_view = None
if _is_load or _is_store:
    _me = _MemEntry(dyn, _is_store,
                    0 if _is_store else lsq._unissued_stores)
    lsq_entries.append(_me)
    lsq_by_id[id(dyn)] = _me
    dyn.lsq_entry = _me
    if _is_store:
        lsq._stores += 1
        lsq._unissued_stores += 1
    else:
        lsq._loads += 1
dispatched += 1
last_progress = cycle
"""
    return _reindent(head + can_rename + rename_core + dispatch_tail, pad)


# --------------------------------------------------------------------- generator
def generate_kernel_source(config) -> str:
    """Emit the flattened kernel module body for ``config``.

    The returned text defines ``run_kernel(proc, max_insts=None)``; the
    cache layer adds the fingerprint header/footer before writing it to
    disk.  Raises :class:`KernelUnavailable` for schemes the generator
    does not know.
    """
    scheme = config.scheme
    if scheme not in KNOWN_SCHEMES:
        raise KernelUnavailable(f"no kernel generator for scheme {scheme!r}")

    RW = config.rename_width
    IW = config.issue_width
    CW = config.commit_width
    MAXC = config.max_cycles
    II = config.interrupt_interval
    RP = config.rf_read_ports
    WP = config.rf_write_ports
    PS = config.rf_port_scheme
    VV = config.verify_values
    MWP = config.model_wrong_path
    track_reads = scheme == "early"

    unpipelined = [k for k, (_c, _l, piped) in config.fu_config.items()
                   if not piped]

    L: list[str] = []
    L.append(f'"""Generated cycle kernel (scheme={scheme!r}).')
    L.append("")
    L.append("Machine-generated by repro.codegen.generator — do not edit;")
    L.append("regenerated whenever the MachineConfig or the simulator source")
    L.append('fingerprint changes.  Must stay bit-identical to _run_event."""')
    L.append("import heapq")
    L.append("")
    L.append("from repro.isa.opcodes import OPCODES, Op")
    L.append("from repro.isa.registers import RegClass")
    L.append("from repro.pipeline.issue_queue import _Entry as _IQEntry, _ticket_of")
    L.append("from repro.pipeline.lsq import _MemEntry")
    L.append("")
    L.append("_heappush = heapq.heappush")
    L.append("_heappop = heapq.heappop")
    L.append("_OP_HALT = Op.HALT")
    L.append("_RC_INT = RegClass.INT")
    L.append("")
    L.append("")
    L.append("def run_kernel(proc, max_insts=None):")
    L.append("    config = proc.config")
    guard = (f'config.scheme != "{scheme}" or config.rename_width != {RW} '
             f'or config.issue_width != {IW} or config.commit_width != {CW} '
             f'or config.rob_size != {config.rob_size} '
             f'or config.iq_size != {config.iq_size} '
             f'or config.max_cycles != {MAXC}')
    L.append(f"    if {guard}:")
    L.append('        raise RuntimeError(')
    L.append('            "generated kernel does not match this MachineConfig")')

    L.append(_reindent("""
stats = proc.stats
renamer = proc.renamer
ren_stats = renamer.stats
fetch = proc.fetch
fetch_queue = fetch.queue
fetch_tick = fetch.tick
fetch_next_active = fetch.next_active_cycle
fetch_account_idle = fetch.account_idle
fetch_branch_resolved = fetch.branch_resolved
rob_entries = proc.rob._entries
rob_push = proc.rob.push
iq = proc.iq
iq_by_dyn = iq._by_dyn
iq_by_tag = iq._by_tag
iq_ticket = iq._ticket
iq_ready_entries = iq.ready_entries
iq_insert = iq.insert
lsq = proc.lsq
lsq_entries = lsq._entries
lsq_by_id = lsq._by_id
lsq_retire = lsq.retire
lsq_mark_issued = lsq.mark_issued
lsq_forwarding = lsq.forwarding_store
lsq_insert = lsq.insert
fus = proc.fus
fus_used = fus._used
completion = proc.completion
ticket = proc._ticket
data_access = proc.hierarchy.data_access
on_cycle = proc.on_cycle
interval = proc.on_cycle_interval
slow_commit = (proc.oracle is not None or proc.on_commit is not None
               or proc.trace is not None)
proc_commit = proc._commit
recycle = proc._recycle
is_ready = proc.is_ready
scoreboard = proc.scoreboard
n_committed = stats.committed
occ_rob = stats.rob_occupancy_sum
occ_iq = stats.iq_occupancy_sum
occ_free = stats.free_regs_sum
occ_samples = stats.occupancy_samples
last_progress = proc._last_progress
""", "    "))
    if VV:
        L.append("    proc_verify = proc._verify_operands")
    if PS != "none":
        # read-port-reduction scheme active: the whole issue stage is
        # delegated to the bound method (one implementation of the port
        # plan/commit protocol, shared with the event and naive loops)
        L.append("    proc_issue = proc._issue")
    if PS == "bypass_filter":
        L.append("    ports_note_write = proc.read_ports.note_writeback")
    for kind in unpipelined:
        L.append(f'    fus_slots_{kind} = fus._busy_until["{kind}"]')
    L.append(_scheme_hoists(scheme, "    "))
    L.append("    cycle = proc.cycle")
    if II:
        L.append(f"    next_interrupt = {II}")

    # ---- main loop (assembled separately, then wrapped in try/finally:
    # the mirror flush must run even when a simulation error propagates)
    B: list[str] = []
    B.append(_reindent("""
while True:
    if proc._halted:
        break
    if max_insts is not None and n_committed >= max_insts:
        break
    if (not rob_entries and not fetch_queue and fetch._eof
            and fetch._pending is None and not fetch.replay):
        break
    cycle += 1
    proc.cycle = cycle
""", "    "))

    if II:
        B.append(_reindent(f"""
if cycle >= next_interrupt:
{_reindent(_FLUSH, "    ")}
    try:
        _penalty = proc._handle_interrupt()
    finally:
{_refresh_block(scheme, "        ")}
        last_progress = proc._last_progress
    next_interrupt = cycle + {II} + _penalty
""", "        "))

    # ---- commit --------------------------------------------------------
    B.append(_reindent(f"""
if rob_entries and rob_entries[0].completed:
    if slow_commit:
{_reindent(_FLUSH, "        ")}
        try:
            proc_commit()
        finally:
{_refresh_block(scheme, "            ")}
            n_committed = stats.committed
            last_progress = proc._last_progress
    else:
        _committed = 0
        while _committed < {CW}:
            if not rob_entries:
                break
            head = rob_entries[0]
            if not head.completed:
                break
            if head.exception_raised:
{_reindent(_FLUSH, "                ")}
                try:
                    proc._handle_exception(head)
                finally:
{_refresh_block(scheme, "                    ")}
                    last_progress = proc._last_progress
                break
            if head.wrong_path:
                raise AssertionError(
                    "wrong-path instruction reached commit: the "
                    "mispredicted branch must have resolved (and "
                    "squashed it) first")
            rob_entries.popleft()
            head.commit_cycle = cycle
            info = head._info
            if info is None:
                info = OPCODES[head.op]
                head._info = info
            if info.is_store:
                data_access(head.pc, head.mem_addr, True, cycle)
                lsq_retire(head)
                stats.stores += 1
            elif info.is_load:
                lsq_retire(head)
                stats.loads += 1
{_commit_renamer_block(scheme, "            ")}
            if head.micro_op:
                stats.committed_uops += 1
            else:
                n_committed += 1
            if head.op is _OP_HALT:
                proc._halted = True
                break
            if recycle is not None:
                recycle.release(head)
            _committed += 1
            last_progress = cycle
""", "        "))

    # ---- writeback -----------------------------------------------------
    wb: list[str] = []
    wb.append("if completion and completion[0][0] <= cycle:")
    if WP is not None:
        wb.append("    _wu0 = 0")
        wb.append("    _wu1 = 0")
    wb.append("    while completion and completion[0][0] <= cycle:")
    wb.append("        _item = _heappop(completion)")
    wb.append("        dyn = _item[2]")
    wb.append("        if dyn.squashed:")
    wb.append("            continue")
    wb.append("        dt = dyn.dest_tag")
    if WP is not None:
        wb.append("        if dt is not None:")
        wb.append(f"            if (_wu0 if dt[0] == 0 else _wu1) >= {WP}:")
        wb.append("                _heappush(completion,")
        wb.append("                          (cycle + 1, next(ticket), dyn))")
        wb.append("                break")
        wb.append("            if dt[0] == 0:")
        wb.append("                _wu0 += 1")
        wb.append("            else:")
        wb.append("                _wu1 += 1")
    wb.append("        dyn.completed = True")
    wb.append("        dyn.complete_cycle = cycle")
    wb.append("        if dt is not None:")
    wb.append("            _result = dyn.result")
    wb.append("            if _result is not None:")
    wb.append(_writeback_write_block(scheme, "                "))
    wb.append("            scoreboard[dt] = True")
    if PS == "bypass_filter":
        wb.append("            ports_note_write(dt, cycle)")
    wb.append("            _wl = iq_by_tag.pop(dt, None)")
    wb.append("            if _wl:")
    wb.append("                _ready = iq._ready")
    wb.append("                for _entry in _wl:")
    wb.append("                    if _entry.removed:")
    wb.append("                        continue")
    wb.append("                    _w = _entry.waiting")
    wb.append("                    _w.discard(dt)")
    wb.append("                    if not _w:")
    wb.append("                        _entry.in_ready = True")
    wb.append("                        if (_ready and")
    wb.append("                                _ready[-1].ticket > _entry.ticket):")
    wb.append("                            iq._ready_dirty = True")
    wb.append("                        _ready.append(_entry)")
    wb.append("                        iq._ready_view = None")
    wb.append("        info = dyn._info")
    wb.append("        if info is None:")
    wb.append("            info = OPCODES[dyn.op]")
    wb.append("            dyn._info = info")
    wb.append("        if info.is_branch:")
    if MWP:
        wb.append("            _extra = 0")
        wb.append("            if dyn.mispredicted and not dyn.wrong_path:")
        wb.append("                _extra = proc._squash_wrong_path(dyn)")
        wb.append("            fetch_branch_resolved(dyn, cycle, _extra)")
    else:
        wb.append("            fetch_branch_resolved(dyn, cycle, 0)")
    wb.append("        last_progress = cycle")
    B.append(_reindent("\n".join(wb), "        "))

    # ---- issue (ready_entries() inlined at the gate) --------------------
    # With a read-port-reduction scheme active the whole stage is
    # delegated to the bound Processor._issue (emitted below) so the port
    # plan/commit protocol has exactly one implementation; the inline
    # fast path built here is only emitted for rf_port_scheme == "none".
    iss: list[str] = []
    iss.append("_rl = iq._ready")
    iss.append("if _rl:")
    iss.append("    if iq._ready_stale:")
    iss.append("        _rl = [_e for _e in _rl if not _e.removed]")
    iss.append("        iq._ready = _rl")
    iss.append("        iq._ready_stale = False")
    iss.append("        iq._ready_view = None")
    iss.append("    if iq._ready_dirty:")
    iss.append("        _rl.sort(key=_ticket_of)")
    iss.append("        iq._ready_dirty = False")
    iss.append("        iq._ready_view = None")
    iss.append("    ready = iq._ready_view")
    iss.append("    if ready is None:")
    iss.append("        ready = [_e.dyn for _e in _rl]")
    iss.append("        iq._ready_view = ready")
    iss.append("    if ready:")
    iss.append("        issued = 0")
    if RP is not None:
        iss.append("        _ru0 = 0")
        iss.append("        _ru1 = 0")
    iss.append("        for dyn in ready:")
    iss.append(f"            if issued >= {IW}:")
    iss.append("                break")
    iss.append("            info = dyn._info")
    iss.append("            if info is None:")
    iss.append("                info = OPCODES[dyn.op]")
    iss.append("                dyn._info = info")
    iss.append("            _is_load = info.is_load")
    iss.append("            if _is_load and not dyn.faults:")
    iss.append("                _le = dyn.lsq_entry")
    iss.append("                if _le is None:")
    iss.append('                    raise AssertionError("instruction not in LSQ")')
    iss.append("                if _le.blockers != 0:")
    iss.append("                    continue")
    if RP is not None:
        iss.append("            _n0 = 0")
        iss.append("            _n1 = 0")
        iss.append("            for _tag in dyn.src_tags:")
        iss.append("                if _tag[0] == 0:")
        iss.append("                    _n0 += 1")
        iss.append("                else:")
        iss.append("                    _n1 += 1")
        iss.append(f"            if _ru0 + _n0 > {RP} or _ru1 + _n1 > {RP}:")
        iss.append("                continue")
    iss.append("            fu = info.fu")
    iss.append("            if fus._cycle != cycle:")
    iss.append("                fus._cycle = cycle")
    iss.append("                fus_used.clear()")
    iss.append(_fu_chain(config, "            "))
    if RP is not None:
        iss.append("            _ru0 += _n0")
        iss.append("            _ru1 += _n1")
    iss.append("            if dyn.faults:")
    iss.append("                total = latency")
    iss.append("                dyn.exception_raised = True")
    iss.append("            elif _is_load:")
    iss.append("                _fwd = lsq_forwarding(dyn)")
    iss.append("                if _fwd is not None:")
    iss.append("                    total = latency + 1")
    iss.append("                    stats.store_forwards += 1")
    iss.append("                else:")
    iss.append("                    total = latency + data_access(")
    iss.append("                        dyn.pc, dyn.mem_addr, False, cycle)")
    iss.append("                _le = dyn.lsq_entry")
    iss.append("                if _le is None:")
    iss.append('                    raise AssertionError("instruction not in LSQ")')
    iss.append("                if not _le.issued:")
    iss.append("                    _le.issued = True")
    iss.append("            elif info.is_store:")
    iss.append("                total = latency")
    iss.append("                lsq_mark_issued(dyn)")
    iss.append("            else:")
    iss.append("                total = latency")
    if VV:
        iss.append("            proc_verify(dyn)")
    if track_reads:
        iss.append("            for _tag in dyn.src_tags:")
        iss.append("                if _tag[0] == 0:")
        iss.append("                    _states = int_states")
        iss.append("                    _free_sel = int_free")
        iss.append("                else:")
        iss.append("                    _states = fp_states")
        iss.append("                    _free_sel = fp_free")
        iss.append("                _st = _states[_tag[1]]")
        iss.append("                _st.pending_reads -= 1")
        iss.append("                assert _st.pending_reads >= 0, "
                   '"pending-read underflow"')
        iss.append("                if (_st.unmapped and _st.produced")
        iss.append("                        and _st.pending_reads == 0")
        iss.append("                        and not _st.released):")
        iss.append("                    _st.released = True")
        iss.append("                    _free_sel.append(_tag[1])")
        iss.append("                    renamer.early_releases += 1")
        iss.append("                    ren_stats.releases += 1")
    iss.append("            _entry = iq_by_dyn.pop(id(dyn), None)")
    iss.append("            if _entry is None:")
    iss.append('                raise AssertionError("instruction not in issue queue")')
    iss.append("            _entry.removed = True")
    iss.append("            iq._size -= 1")
    iss.append("            if _entry.in_ready:")
    iss.append("                iq._ready_stale = True")
    iss.append("                iq._ready_view = None")
    iss.append("            dyn.issue_cycle = cycle")
    iss.append("            _heappush(completion,")
    iss.append("                      (cycle + total, next(ticket), dyn))")
    iss.append("            stats.issued += 1")
    iss.append("            issued += 1")
    iss.append("            last_progress = cycle")
    if PS == "none":
        B.append(_reindent("\n".join(iss), "        "))
    else:
        # the mirror is flushed first because _issue writes
        # proc._last_progress: when nothing issues, the finally must read
        # back the value just flushed, not a stale one
        B.append(_reindent(f"""
if iq._ready:
{_reindent(_FLUSH, "    ")}
    try:
        proc_issue()
    finally:
        last_progress = proc._last_progress
""", "        "))

    # ---- rename/dispatch ----------------------------------------------
    ren: list[str] = []
    ren.append("rename_stall = 0")
    ren.append("if fetch_queue:")
    ren.append("    dispatched = 0")
    ren.append(f"    while dispatched < {RW}:")
    ren.append(_rename_body(config, "        "))
    B.append(_reindent("\n".join(ren), "        "))

    # ---- fetch + accounting + hooks + watchdogs ------------------------
    free_expr = ("int_flist._count" if scheme in ("sharing", "hinted")
                 else "len(int_free)")
    B.append(_reindent(f"""
fetch_tick(cycle)
occ_rob += len(rob_entries)
occ_iq += iq._size
occ_free += {free_expr}
occ_samples += 1
if on_cycle is not None and cycle % interval == 0:
{_reindent(_FLUSH, "    ")}
    try:
        on_cycle(proc)
    finally:
{_refresh_block(scheme, "        ")}
        n_committed = stats.committed
        occ_rob = stats.rob_occupancy_sum
        occ_iq = stats.iq_occupancy_sum
        occ_free = stats.free_regs_sum
        occ_samples = stats.occupancy_samples
        last_progress = proc._last_progress
if cycle > {MAXC}:
{_reindent(_FLUSH, "    ")}
    proc._watchdog_abort(
        "cycle budget ({MAXC}) exceeded")
if cycle - last_progress > 200_000:
{_reindent(_FLUSH, "    ")}
    proc._watchdog_abort(
        "pipeline deadlock: no progress for "
        + str(cycle - last_progress) + " cycles")
""", "        "))

    # ---- cycle-skip: quiet cycles and busy-stall windows ---------------
    QS = config.fetch_queue
    skip: list[str] = []
    skip.append("if proc._halted:")
    skip.append("    continue")
    skip.append("if rob_entries and rob_entries[0].completed:")
    skip.append("    continue")
    skip.append("if max_insts is not None and n_committed >= max_insts:")
    skip.append("    continue")
    skip.append("if fetch_queue:")
    skip.append("    # busy-stall window: rename is structurally stalled, this")
    skip.append("    # cycle made zero progress (nothing committed, wrote back,")
    skip.append("    # issued or renamed — ready entries, if any, are pinned by")
    skip.append("    # load blockers or an unpipelined unit), the ROB head is")
    skip.append("    # incomplete and fetch is quiescent (tick is a pure no-op on")
    skip.append("    # a full queue with no redirect/I-cache stall pending, or")
    skip.append("    # while blocked on an unresolved branch).  Every cycle until")
    skip.append("    # the next completion or unpipelined-unit release replays")
    skip.append("    # identically: same stall counter bump, no state change.")
    skip.append("    # Bulk-apply those cycles.  Hooked runs take the")
    skip.append("    # cycle-by-cycle path (hooks may mutate anything).")
    skip.append("    if on_cycle is not None or rename_stall == 0:")
    skip.append("        continue")
    skip.append("    if last_progress == cycle:")
    skip.append("        continue")
    if PS != "none":
        # a ready entry denied a port grant charges rf_port_stalls every
        # cycle it retries; bulk-skipping such a window would miss those
        # increments, so under a port scheme only entry-free windows skip
        skip.append("    if iq._ready and iq_ready_entries():")
        skip.append("        continue")
    skip.append("    if not (fetch._waiting_branch_seq is not None")
    skip.append(f"            or (len(fetch_queue) >= {QS}")
    skip.append("                and fetch._resume_at is None")
    skip.append("                and cycle >= fetch._stall_until)):")
    skip.append("        continue")
    skip.append("    target = completion[0][0] if completion else None")
    for kind in unpipelined:
        skip.append(f"    for _v in fus_slots_{kind}:")
        skip.append("        if _v > cycle and (target is None or _v < target):")
        skip.append("            target = _v")
    skip.append("    limit = last_progress + 200_001")
    skip.append("    if target is None or target > limit:")
    skip.append("        target = limit")
    if II:
        skip.append("    if next_interrupt < target:")
        skip.append("        target = next_interrupt")
    skip.append(f"    if target > {MAXC + 1}:")
    skip.append(f"        target = {MAXC + 1}")
    skip.append("    skipped = target - cycle - 1")
    skip.append("    if skipped <= 0:")
    skip.append("        continue")
    skip.append("    if rename_stall == 1:")
    skip.append("        stats.rename_stall_rob += skipped")
    skip.append("    elif rename_stall == 2:")
    skip.append("        stats.rename_stall_iq += skipped")
    skip.append("    elif rename_stall == 3:")
    skip.append("        stats.rename_stall_lsq += skipped")
    skip.append("    else:")
    skip.append("        stats.rename_stall_regs += skipped")
    skip.append("    occ_rob += skipped * len(rob_entries)")
    skip.append("    occ_iq += skipped * iq._size")
    skip.append(f"    occ_free += skipped * {free_expr}")
    skip.append("    occ_samples += skipped")
    skip.append("    proc.cycles_skipped += skipped")
    skip.append("    cycle = target - 1")
    skip.append("    proc.cycle = cycle")
    skip.append("    continue")
    skip.append("if iq._ready and iq_ready_entries():")
    skip.append("    continue")
    skip.append("if (not rob_entries and fetch._eof")
    skip.append("        and fetch._pending is None and not fetch.replay):")
    skip.append("    continue")
    skip.append("target = completion[0][0] if completion else None")
    skip.append("wake = fetch_next_active(cycle)")
    skip.append("if wake is not None and (target is None or wake < target):")
    skip.append("    target = wake")
    skip.append("limit = last_progress + 200_001")
    skip.append("if target is None or target > limit:")
    skip.append("    target = limit")
    if II:
        skip.append("if next_interrupt < target:")
        skip.append("    target = next_interrupt")
    skip.append(f"if target > {MAXC + 1}:")
    skip.append(f"    target = {MAXC + 1}")
    skip.append("skipped = target - cycle - 1")
    skip.append("if skipped <= 0:")
    skip.append("    continue")
    skip.append("occ_rob += skipped * len(rob_entries)")
    skip.append("occ_iq += skipped * iq._size")
    skip.append(f"occ_free += skipped * {free_expr}")
    skip.append("occ_samples += skipped")
    skip.append("fetch_account_idle(cycle + 1, target - 1)")
    skip.append("proc.cycles_skipped += skipped")
    skip.append("if on_cycle is not None:")
    skip.append("    first = cycle + interval - (cycle % interval)")
    skip.append("    for boundary in range(first, target, interval):")
    skip.append("        proc.cycle = boundary")
    skip.append(_reindent(_FLUSH, "        "))
    skip.append("        try:")
    skip.append("            on_cycle(proc)")
    skip.append("        finally:")
    skip.append(_refresh_block(scheme, "            "))
    skip.append("            n_committed = stats.committed")
    skip.append("            occ_rob = stats.rob_occupancy_sum")
    skip.append("            occ_iq = stats.iq_occupancy_sum")
    skip.append("            occ_free = stats.free_regs_sum")
    skip.append("            occ_samples = stats.occupancy_samples")
    skip.append("            last_progress = proc._last_progress")
    skip.append("cycle = target - 1")
    skip.append("proc.cycle = cycle")
    B.append(_reindent("\n".join(skip), "        "))

    L.append("    try:")
    L.append(_shift("\n".join(B)))
    L.append("    finally:")
    L.append(_reindent(_FLUSH, "        "))
    L.append("")

    return "\n".join(L) + "\n"
