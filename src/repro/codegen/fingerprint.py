"""Content-addressed fingerprints for generated kernels.

A kernel is valid only for the exact ``(scheme, MachineConfig)`` pair it
was generated from *and* the exact simulator source it inlines, so the
cache key folds together:

* a generator ABI version (bumped when the generated-code shape changes),
* the scheme and the full machine configuration
  (:meth:`MachineConfig.kernel_payload`),
* the repo-wide source fingerprint from :func:`harness.cache.code_fingerprint`
  — editing any ``repro`` module invalidates every cached kernel, which is
  deliberately conservative: the generator copies stage semantics from
  several modules and tracking a precise dependency set is not worth the
  risk of a stale kernel silently diverging.
"""

from __future__ import annotations

import hashlib
import json

from repro.codegen.generator import GENERATOR_VERSION


def kernel_fingerprint(config) -> str:
    """Stable hex key identifying the kernel for ``config``."""
    from repro.harness.cache import code_fingerprint

    payload = {
        "abi": GENERATOR_VERSION,
        "scheme": config.scheme,
        "config": config.kernel_payload(),
        "code": code_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]
