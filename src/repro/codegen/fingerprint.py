"""Content-addressed fingerprints for generated kernels.

A kernel is valid only for the exact ``(scheme, MachineConfig)`` pair it
was generated from *and* the exact simulator source it inlines, so the
cache key folds together:

* a generator ABI version (bumped when the generated-code shape changes),
* the scheme and the full machine configuration
  (:meth:`MachineConfig.kernel_payload`),
* the repo-wide source fingerprint from :func:`harness.cache.code_fingerprint`
  — editing any ``repro`` module invalidates every cached kernel, which is
  deliberately conservative: the generator copies stage semantics from
  several modules and tracking a precise dependency set is not worth the
  risk of a stale kernel silently diverging.
"""

from __future__ import annotations

import hashlib
import json

from repro.codegen.generator import GENERATOR_VERSION


def kernel_fingerprint(config) -> str:
    """Stable hex key identifying the kernel for ``config``.

    Memoised on the config instance (configs are treated as immutable —
    edits go through ``dataclasses.replace``, which builds a new
    instance): the sampling engine constructs one short-lived window
    processor per measured window, and recomputing ``asdict`` + JSON +
    SHA-256 per ``run()`` call was a measurable slice of sampled wall
    time.  Same pattern as :meth:`MachineConfig.opcode_table`.
    """
    cached = getattr(config, "_kernel_fp", None)
    if cached is not None:
        return cached
    from repro.harness.cache import code_fingerprint

    payload = {
        "abi": GENERATOR_VERSION,
        "scheme": config.scheme,
        "config": config.kernel_payload(),
        "code": code_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    key = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]
    object.__setattr__(config, "_kernel_fp", key)
    return key
