"""Fault injectors: targeted state corruption for a running processor.

Each injector is armed with a fully pre-drawn :class:`InjectionSpec` and
attached to the pipeline's ``on_cycle`` hook (``on_cycle_interval=1``,
naive cycle loop — the event-driven kernel's quiet-cycle skip assumes no
outside agent mutates state between events, which is exactly what an
injector does).  An injector fires **once**, at the first cycle at or
after ``trigger_cycle`` where an eligible target exists; what it corrupted
is recorded in ``details`` for the campaign report.

The PRF flip injectors pick their victim from
:meth:`~repro.core.renamer.BaseRenamer.fault_targets`, which classifies
storage cells into *live* / *shadow* / *free* — the three classes carry
different expected outcomes (see docs/RESILIENCE.md).  Values are poked
straight into the domain's :class:`~repro.core.register_file.BankedRegisterFile`
rather than through ``renamer.write``: the early-release scheme's ``write``
has release side effects (pending-read bookkeeping) a particle strike must
not trigger.
"""

from __future__ import annotations

import struct
from dataclasses import asdict, dataclass
from typing import Optional

#: Every injection kind the campaign can draw.
KINDS = (
    "flip_live",
    "flip_shadow",
    "flip_free",
    "prt_version",
    "prt_read_bit",
    "squash_storm",
    "interrupt_flood",
)

#: PRF-flip kind -> fault_targets() class.
_TARGET_CLASS = {
    "flip_live": "live",
    "flip_shadow": "shadow",
    "flip_free": "free",
}

_MASK64 = (1 << 64) - 1

#: garbage planted into free registers that hold no stored cell (the
#: pattern is arbitrary; the flip bit is XORed in so distinct specs plant
#: distinct values)
_GARBAGE = 0x5EED_FA11_DEAD_BEEF


def flip_int(value: int, bit: int) -> int:
    """Flip one bit of a 64-bit two's-complement storage image."""
    image = (value & _MASK64) ^ (1 << (bit % 64))
    return image - (1 << 64) if image >= (1 << 63) else image


def flip_float(value: float, bit: int) -> float:
    """Flip one bit of the IEEE-754 double encoding (may yield inf/NaN —
    real upsets do too)."""
    bits = struct.unpack("<Q", struct.pack("<d", value))[0]
    return struct.unpack("<d", struct.pack("<Q", bits ^ (1 << (bit % 64))))[0]


def flip_value(value, bit: int):
    """Single-bit upset of a stored register value (dispatch on type)."""
    if isinstance(value, float):
        return flip_float(value, bit)
    return flip_int(value, bit)


@dataclass
class InjectionSpec:
    """One fully pre-drawn injection (JSON-able, for reproducers).

    Every random decision is made by the campaign *before* the run starts,
    so replaying a spec on the same program is exactly deterministic.
    """

    kind: str
    scheme: str
    program_seed: int
    program_size: int
    trigger_cycle: int
    #: index into the eligible target list (taken modulo its length)
    target_index: int = 0
    #: bit to flip (storage flips: mod 64; PRT version: mod counter bits)
    bit: int = 0
    #: squash storm shape
    flush_count: int = 1
    flush_gap: int = 40
    #: interrupt flood period (``interrupt_flood`` only; becomes the run's
    #: ``MachineConfig.interrupt_interval``)
    interrupt_interval: Optional[int] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: dict) -> "InjectionSpec":
        return cls(**raw)


class Injector:
    """Base class: a one-shot on_cycle hook plus an injection record."""

    #: False for injectors realised through configuration (interrupt
    #: flood) rather than an on_cycle hook
    needs_hook = True

    def __init__(self, spec: InjectionSpec) -> None:
        self.spec = spec
        self.fired = 0
        self.details: dict = {}

    @property
    def injected(self) -> bool:
        return self.fired > 0

    def on_cycle(self, processor) -> None:
        raise NotImplementedError


class BitFlipInjector(Injector):
    """Transient single-bit upset of one PRF storage cell.

    ``flip_live`` / ``flip_shadow`` corrupt an existing cell in place;
    ``flip_free`` either corrupts a stale cell left on a free register or
    plants garbage into an unwritten one (version 0 always fits) —
    allocation/writeback must overwrite it before any consumer reads.
    """

    def on_cycle(self, processor) -> None:
        spec = self.spec
        if self.fired or processor.cycle < spec.trigger_cycle:
            return
        targets = processor.renamer.fault_targets()[_TARGET_CLASS[spec.kind]]
        if not targets:
            return  # stay armed: retry next cycle until a target exists
        cls_value, phys, version = targets[spec.target_index % len(targets)]
        domain = processor.renamer._domains_by_value[cls_value]
        if domain.rf.has(phys, version):
            old = domain.rf.read(phys, version)
            new = flip_value(old, spec.bit)
            domain.rf.corrupt(phys, version, new)
            planted = False
        else:  # free register with no stored cell: plant garbage
            old = None
            new = flip_int(_GARBAGE, spec.bit)
            domain.rf.write(phys, version, new)
            planted = True
        self.fired += 1
        self.details = {
            "cycle": processor.cycle,
            "tag": [cls_value, phys, version],
            "old": repr(old),
            "new": repr(new),
            "planted": planted,
        }


class PRTCorruptInjector(Injector):
    """Corrupt one PRT entry: version counter or Read bit (sharing only).

    The version counter flips one of its ``counter_bits`` bits (staying in
    range, as a real counter upset would); the Read bit is inverted.
    """

    def on_cycle(self, processor) -> None:
        spec = self.spec
        if self.fired or processor.cycle < spec.trigger_cycle:
            return
        renamer = processor.renamer
        entries = [
            (cls.value, phys)
            for cls, domain in renamer.domains.items()
            for phys in range(domain.config.total_regs)
        ]
        cls_value, phys = entries[spec.target_index % len(entries)]
        domain = renamer._domains_by_value[cls_value]
        entry = domain.prt[phys]
        if spec.kind == "prt_version":
            new_version = entry.version ^ (1 << (spec.bit % renamer.counter_bits))
            old = domain.prt.corrupt(phys, version=new_version)
        else:  # prt_read_bit
            old = domain.prt.corrupt(phys, read_bit=not entry.read_bit)
        self.fired += 1
        self.details = {
            "cycle": processor.cycle,
            "entry": [cls_value, phys],
            "old": list(old),
            "new": [entry.version, entry.read_bit],
        }


class SquashStormInjector(Injector):
    """Force ``flush_count`` full pipeline flush+recover sequences,
    ``flush_gap`` cycles apart, starting at the trigger cycle.

    Exercises the precise-state recovery path (retirement-map copy, free
    list rebuild, shadow-cell recover commands) at arbitrary — rather than
    exception-chosen — machine states.  Excluded for early release, which
    has no precise state to recover.
    """

    def on_cycle(self, processor) -> None:
        spec = self.spec
        if self.fired >= spec.flush_count:
            return
        due = spec.trigger_cycle + self.fired * spec.flush_gap
        if processor.cycle < due:
            return
        penalty = processor.inject_flush()
        self.fired += 1
        self.details.setdefault("flushes", []).append(
            {"cycle": processor.cycle, "penalty": penalty})


class InterruptFloodInjector(Injector):
    """Periodic interrupts at commit boundaries, far denser than any real
    timer.  Realised through ``MachineConfig.interrupt_interval`` (the
    pipeline's own interrupt machinery), not an on_cycle hook; the
    campaign reads ``stats.interrupts`` after the run to confirm the flood
    actually fired.
    """

    needs_hook = False

    def on_cycle(self, processor) -> None:  # pragma: no cover - never hooked
        pass

    def record_stats(self, stats) -> None:
        self.fired = stats.interrupts
        self.details = {"interrupts": stats.interrupts,
                        "interval": self.spec.interrupt_interval}


_INJECTORS = {
    "flip_live": BitFlipInjector,
    "flip_shadow": BitFlipInjector,
    "flip_free": BitFlipInjector,
    "prt_version": PRTCorruptInjector,
    "prt_read_bit": PRTCorruptInjector,
    "squash_storm": SquashStormInjector,
    "interrupt_flood": InterruptFloodInjector,
}


def make_injector(spec: InjectionSpec) -> Injector:
    try:
        return _INJECTORS[spec.kind](spec)
    except KeyError:
        raise ValueError(f"unknown injection kind {spec.kind!r}") from None
