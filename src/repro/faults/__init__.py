"""Architectural fault-injection campaign engine.

Injects targeted adversity into a running :class:`~repro.pipeline.processor.Processor`
— transient PRF bit flips (live cells, shadow cells, free registers), PRT
version-counter and Read-bit corruption, forced squash storms, interrupt
floods — and classifies every injection against the commit-time
differential oracle and a clean reference run.  See docs/RESILIENCE.md for
the fault model and the outcome taxonomy.
"""

from repro.faults.campaign import (
    EXPECTED_OUTCOMES,
    CampaignConfig,
    InjectionRecord,
    kinds_for,
    run_campaign,
    run_injection,
)
from repro.faults.injectors import (
    KINDS,
    InjectionSpec,
    flip_value,
    make_injector,
)
from repro.faults.report import CampaignReport

__all__ = [
    "KINDS",
    "EXPECTED_OUTCOMES",
    "CampaignConfig",
    "CampaignReport",
    "InjectionRecord",
    "InjectionSpec",
    "flip_value",
    "kinds_for",
    "make_injector",
    "run_campaign",
    "run_injection",
]
