"""Seeded fault-injection campaign engine.

One campaign = N injections.  Every injection is one pipeline run of a
seeded random program (the fuzzer's generator, forced to the exception-free
``plain`` variant so the injected adversity is the *only* adversity) with
exactly one fault injected, then classified against the run's own checkers
and a cached clean reference run of the same (program, scheme):

========== ==============================================================
masked      run completed; committed stream, commit count and final state
            identical to the clean run — the fault was overwritten or
            never read
detected    a checker raised: the commit-time oracle, issue-time operand
            verification, the cross-structure invariant checker, the
            cycle-loop watchdog, or an internal assertion
recovered   run completed clean and the renamer performed >= 1 precise-
            state recovery (the expected outcome for squash storms and
            interrupt floods)
silent      run completed with **no** checker firing, but the committed
            stream or count differs from the clean reference — true
            silent data corruption; never expected, always a bug
error       the run crashed with a non-checker exception; never expected
skipped     the injector never found an eligible target (e.g. no shadow
            cell materialised in a short program); always acceptable
========== ==============================================================

Every random decision is pre-drawn into an :class:`InjectionSpec` from a
per-index child rng, so any single injection can be replayed — and its
program ddmin-shrunk — from (campaign seed, index) alone.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faults.injectors import (
    InjectionSpec,
    Injector,
    InterruptFloodInjector,
    make_injector,
)

#: Outcomes each kind is allowed to produce (``skipped`` is implicitly
#: acceptable everywhere).  Anything else is *unexpected* and fails the
#: campaign: a ``silent``/``error`` anywhere, a live-cell flip that
#: recovers, a squash storm that is detected, ...
EXPECTED_OUTCOMES = {
    "flip_live": frozenset({"masked", "detected"}),
    "flip_shadow": frozenset({"masked", "detected"}),
    "flip_free": frozenset({"masked"}),
    "prt_version": frozenset({"masked", "detected", "recovered"}),
    "prt_read_bit": frozenset({"masked", "detected", "recovered"}),
    "squash_storm": frozenset({"recovered"}),
    "interrupt_flood": frozenset({"recovered"}),
}

#: Schemes whose renamer has PRT/shadow-cell structures.
_SHARING_SCHEMES = ("sharing", "hinted")


def kinds_for(scheme: str) -> tuple[str, ...]:
    """Injection kinds applicable to a scheme.

    Early release has no precise state (``recover()`` raises), so forced
    flushes and interrupts are excluded there; PRT and shadow-cell
    corruption only exist under the paper's sharing scheme.
    """
    kinds = ["flip_live", "flip_free"]
    if scheme in _SHARING_SCHEMES:
        kinds += ["flip_shadow", "prt_version", "prt_read_bit"]
    if scheme != "early":
        kinds += ["squash_storm", "interrupt_flood"]
    return tuple(kinds)


@dataclass
class CampaignConfig:
    """Shape of one campaign."""

    injections: int = 200
    seed: int = 0
    schemes: tuple = ("conventional", "sharing", "early")
    program_sizes: tuple = (20, 40)
    #: ddmin-shrink the program of every unexpected injection
    shrink: bool = True


@dataclass
class CleanRun:
    """Reference facts from the fault-free run of (program, scheme)."""

    cycles: int
    committed: int
    signature: tuple


@dataclass
class InjectionRecord:
    """One classified injection."""

    index: int
    spec: InjectionSpec
    outcome: str
    expected: bool
    detector: Optional[str] = None
    error: str = ""
    cycles: Optional[int] = None
    committed: Optional[int] = None
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "spec": self.spec.to_dict(),
            "outcome": self.outcome,
            "expected": self.expected,
            "detector": self.detector,
            "error": self.error,
            "cycles": self.cycles,
            "committed": self.committed,
            "details": self.details,
        }


def _classify_exception(exc: BaseException) -> tuple[str, str]:
    """Map an exception from a faulted run to (outcome, detector).

    Order matters: the three checker types subclass ``AssertionError``,
    which is itself the generic in-simulator detection channel.  Anything
    else is an unexpected crash.
    """
    from repro.pipeline.debug import InvariantViolation
    from repro.pipeline.processor import PipelineHang, VerificationError
    from repro.verify.oracle import DivergenceError

    if isinstance(exc, DivergenceError):
        return "detected", "oracle"
    if isinstance(exc, VerificationError):
        return "detected", "operand_verify"
    if isinstance(exc, InvariantViolation):
        return "detected", "invariant"
    if isinstance(exc, PipelineHang):
        return "detected", "watchdog"
    if isinstance(exc, AssertionError):
        return "detected", "assert"
    return "error", type(exc).__name__


def campaign_machine_config(spec: InjectionSpec):
    """Pipeline config for one injection run (= the fuzzer's plain config,
    plus the flood's interrupt timer)."""
    from repro.verify.fuzz import fuzz_config

    config = fuzz_config(spec.scheme, "plain")
    if spec.kind == "interrupt_flood":
        config = dataclasses.replace(
            config, interrupt_interval=spec.interrupt_interval)
    return config


def _lockstep(config, program, injector: Optional[Injector], on_commit):
    """One campaign run: naive cycle loop (injection mutates state between
    cycles, which the event kernel's quiet-skip must not race), the
    injector polled every cycle, invariants checked every 8th."""
    from repro.pipeline.debug import check_invariants
    from repro.verify.oracle import lockstep_run

    if injector is not None and injector.needs_hook:
        def hook(processor, _inject=injector.on_cycle):
            _inject(processor)
            if processor.cycle % 8 == 0:
                check_invariants(processor)
    else:
        def hook(processor):
            if processor.cycle % 8 == 0:
                check_invariants(processor)

    return lockstep_run(config, program, on_cycle=hook, on_cycle_interval=1,
                        on_commit=on_commit, naive_loop=True)


def clean_reference(scheme: str, program_seed: int, program_size: int,
                    cache: Optional[dict] = None) -> CleanRun:
    """Fault-free reference run (memoised on ``cache`` when given)."""
    from repro.verify.fuzz import fuzz_config, generate
    from repro.verify.oracle import CommitRecorder

    key = (scheme, program_seed, program_size)
    if cache is not None and key in cache:
        return cache[key]
    program = generate(program_seed, size=program_size,
                       variant="plain").build()
    recorder = CommitRecorder()
    stats = _lockstep(fuzz_config(scheme, "plain"), program, None, recorder)
    clean = CleanRun(cycles=stats.cycles, committed=stats.committed,
                     signature=recorder.signature())
    if cache is not None:
        cache[key] = clean
    return clean


def run_injection(spec: InjectionSpec, clean: Optional[CleanRun] = None,
                  index: int = 0,
                  clean_cache: Optional[dict] = None) -> InjectionRecord:
    """Run and classify one injection (see module docstring taxonomy)."""
    from repro.verify.fuzz import generate
    from repro.verify.oracle import CommitRecorder

    if clean is None:
        clean = clean_reference(spec.scheme, spec.program_seed,
                                spec.program_size, clean_cache)
    program = generate(spec.program_seed, size=spec.program_size,
                       variant="plain").build()
    injector = make_injector(spec)
    recorder = CommitRecorder()
    record = InjectionRecord(index=index, spec=spec, outcome="error",
                             expected=False)
    try:
        stats = _lockstep(campaign_machine_config(spec), program,
                          injector, recorder)
    except Exception as exc:  # noqa: BLE001 - classification boundary
        record.outcome, record.detector = _classify_exception(exc)
        record.error = f"{type(exc).__name__}: {exc}"[:800]
    else:
        if isinstance(injector, InterruptFloodInjector):
            injector.record_stats(stats)
        record.cycles = stats.cycles
        record.committed = stats.committed
        if not injector.injected:
            record.outcome = "skipped"
        elif (recorder.signature() != clean.signature
                or stats.committed != clean.committed):
            record.outcome = "silent"
        elif stats.renamer_stats.recoveries > 0:
            record.outcome = "recovered"
        else:
            record.outcome = "masked"
    record.details = injector.details
    record.expected = (record.outcome == "skipped"
                       or record.outcome in EXPECTED_OUTCOMES[spec.kind])
    return record


def draw_spec(campaign_seed: int, index: int, schemes: tuple,
              program_sizes: tuple,
              clean_cache: Optional[dict] = None) -> InjectionSpec:
    """Pre-draw injection #``index`` of a campaign.

    The child rng is seeded from (campaign seed, index) alone, so specs
    are independent of execution order and stable under re-runs; trigger
    cycles land in the first half of the clean run so the injector always
    gets its chance to fire.
    """
    child = random.Random(f"faults:{campaign_seed}:{index}")
    scheme = child.choice(list(schemes))
    kind = child.choice(list(kinds_for(scheme)))
    program_seed = child.randrange(1_000_000)
    program_size = child.choice(list(program_sizes))
    clean = clean_reference(scheme, program_seed, program_size, clean_cache)
    trigger = child.randrange(2, max(3, clean.cycles // 2))
    return InjectionSpec(
        kind=kind,
        scheme=scheme,
        program_seed=program_seed,
        program_size=program_size,
        trigger_cycle=trigger,
        target_index=child.randrange(1 << 16),
        bit=child.randrange(64),
        flush_count=child.randint(1, 3),
        flush_gap=child.randint(10, 80),
        interrupt_interval=max(50, min(child.randrange(100, 400),
                                       clean.cycles // 2)),
    )


def shrink_reproducer(record: InjectionRecord) -> Optional[dict]:
    """ddmin-shrink the program of an unexpected injection.

    Reuses the fuzzer's shrinker with the predicate "replaying this exact
    spec on the candidate program still produces the same unexpected
    outcome".  Returns a JSON-able reproducer, or None if the outcome
    refuses to reproduce even on the unshrunk program (flaky — the record
    itself is still reported).
    """
    from repro.verify.fuzz import generate, shrink

    spec = record.spec
    fp = generate(spec.program_seed, size=spec.program_size, variant="plain")

    def same_failure(candidate) -> bool:
        trial_spec = dataclasses.replace(spec)
        trial = _replay_on(trial_spec, candidate)
        return trial.outcome == record.outcome

    if not same_failure(fp):
        return None
    minimal = shrink(fp, same_failure, max_attempts=300)
    return {
        "spec": spec.to_dict(),
        "outcome": record.outcome,
        "program": {"seed": minimal.seed, "variant": minimal.variant,
                    "items": minimal.items},
    }


def _replay_on(spec: InjectionSpec, fp) -> InjectionRecord:
    """Replay ``spec`` against an explicit (possibly shrunk) program."""
    from repro.verify.fuzz import fuzz_config
    from repro.verify.oracle import CommitRecorder

    program = fp.build()
    recorder = CommitRecorder()
    try:
        stats = _lockstep(fuzz_config(spec.scheme, "plain"), program,
                          None, recorder)
    except Exception:  # noqa: BLE001 - clean run of a shrunk candidate broke
        return InjectionRecord(index=-1, spec=spec, outcome="error",
                               expected=False)
    clean = CleanRun(cycles=stats.cycles, committed=stats.committed,
                     signature=recorder.signature())

    injector = make_injector(spec)
    recorder = CommitRecorder()
    record = InjectionRecord(index=-1, spec=spec, outcome="error",
                             expected=False)
    try:
        stats = _lockstep(campaign_machine_config(spec), program,
                          injector, recorder)
    except Exception as exc:  # noqa: BLE001 - classification boundary
        record.outcome, record.detector = _classify_exception(exc)
        record.error = f"{type(exc).__name__}: {exc}"[:800]
    else:
        if isinstance(injector, InterruptFloodInjector):
            injector.record_stats(stats)
        if not injector.injected:
            record.outcome = "skipped"
        elif (recorder.signature() != clean.signature
                or stats.committed != clean.committed):
            record.outcome = "silent"
        elif stats.renamer_stats.recoveries > 0:
            record.outcome = "recovered"
        else:
            record.outcome = "masked"
    record.expected = (record.outcome == "skipped"
                       or record.outcome in EXPECTED_OUTCOMES[spec.kind])
    return record


def run_campaign(
    config: Optional[CampaignConfig] = None,
    progress: Optional[Callable[[InjectionRecord], None]] = None,
    **overrides,
):
    """Run a full seeded campaign; returns a :class:`~repro.faults.report.CampaignReport`.

    ``overrides`` are :class:`CampaignConfig` fields (``injections=...``,
    ``seed=...``, ...).  ``progress`` is called with every classified
    :class:`InjectionRecord` as it lands.
    """
    from repro.faults.report import CampaignReport

    if config is None:
        config = CampaignConfig(**overrides)
    elif overrides:
        config = dataclasses.replace(config, **overrides)

    clean_cache: dict = {}
    records: list[InjectionRecord] = []
    for index in range(config.injections):
        spec = draw_spec(config.seed, index, config.schemes,
                         config.program_sizes, clean_cache)
        record = run_injection(spec, index=index, clean_cache=clean_cache)
        records.append(record)
        if progress is not None:
            progress(record)

    report = CampaignReport.from_records(config, records)
    if config.shrink:
        for record in records:
            if not record.expected:
                reproducer = shrink_reproducer(record)
                if reproducer is not None:
                    report.reproducers.append(reproducer)
    return report
