"""Campaign reporting: outcome counts, unexpected injections, reproducers."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.injectors import KINDS


@dataclass
class CampaignReport:
    """Aggregated result of one fault-injection campaign.

    Shared between the microarchitectural campaign (:mod:`repro.faults`)
    and the fleet chaos campaign (:mod:`repro.fleet.chaos`): both
    classify every injection into the same
    masked/detected/recovered/silent/error/skipped taxonomy, and both
    gate on the same invariant — zero unexpected outcomes, ``silent``
    never acceptable.  ``title`` distinguishes them in human output;
    fault kinds outside :data:`repro.faults.injectors.KINDS` (the chaos
    kinds) render after the built-in ones.
    """

    seed: int
    injections: int
    schemes: tuple
    #: {kind: {outcome: count}}
    counts: dict = field(default_factory=dict)
    #: records whose outcome was not in the kind's expected set
    unexpected: list = field(default_factory=list)
    #: ddmin-shrunk reproducers for the unexpected records
    reproducers: list = field(default_factory=list)
    title: str = "fault campaign"

    @classmethod
    def from_records(cls, config, records) -> "CampaignReport":
        report = cls(seed=config.seed, injections=config.injections,
                     schemes=tuple(config.schemes))
        for record in records:
            by_outcome = report.counts.setdefault(record.spec.kind, {})
            by_outcome[record.outcome] = by_outcome.get(record.outcome, 0) + 1
            if not record.expected:
                report.unexpected.append(record.to_dict())
        return report

    # ------------------------------------------------------------------ queries
    @property
    def clean(self) -> bool:
        """True when every injection landed in its expected outcome set."""
        return not self.unexpected

    def total(self, outcome: str) -> int:
        return sum(by.get(outcome, 0) for by in self.counts.values())

    @property
    def classified(self) -> int:
        """Total injections that received a classification (all of them —
        the campaign has no fourth state; this exists so callers can
        assert ``classified == injections``)."""
        return sum(sum(by.values()) for by in self.counts.values())

    # ------------------------------------------------------------------ output
    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "seed": self.seed,
            "injections": self.injections,
            "schemes": list(self.schemes),
            "counts": self.counts,
            "unexpected": self.unexpected,
            "reproducers": self.reproducers,
            "clean": self.clean,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def save(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    def summary_lines(self) -> list[str]:
        lines = [
            f"{self.title}: seed {self.seed}, {self.injections} injections "
            f"across {', '.join(self.schemes)}",
            f"  {'kind':<20} " + " ".join(
                f"{o:>10}" for o in
                ("masked", "detected", "recovered", "silent", "error",
                 "skipped")),
        ]
        extra = sorted(kind for kind in self.counts if kind not in KINDS)
        for kind in (*KINDS, *extra):
            by = self.counts.get(kind)
            if not by:
                continue
            lines.append(
                f"  {kind:<20} " + " ".join(
                    f"{by.get(o, 0):>10}" for o in
                    ("masked", "detected", "recovered", "silent", "error",
                     "skipped")))
        if self.clean:
            lines.append("  all injections classified within expected "
                         "outcomes (no silent corruption)")
        else:
            lines.append(f"  UNEXPECTED outcomes: {len(self.unexpected)} "
                         f"({len(self.reproducers)} shrunk reproducers)")
        return lines
