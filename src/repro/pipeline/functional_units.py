"""Functional unit pool: per-kind issue bandwidth and occupancy."""

from __future__ import annotations

from typing import Optional


class FUPool:
    """Tracks per-cycle issue slots and unpipelined-unit occupancy.

    ``fu_config`` maps kind -> (count, latency, pipelined).  Pipelined
    units accept one new operation per unit per cycle; unpipelined units
    (dividers) are busy for their full latency.
    """

    def __init__(self, fu_config: dict[str, tuple[int, int, bool]]) -> None:
        self.config = dict(fu_config)
        self._cycle = -1
        self._used: dict[str, int] = {}
        self._busy_until: dict[str, list[int]] = {
            kind: [0] * count
            for kind, (count, _lat, pipelined) in self.config.items()
            if not pipelined
        }
        #: kind -> (count, latency, unpipelined slots or None), one lookup
        #: per try_issue instead of two
        self._kinds: dict[str, tuple[int, int, Optional[list[int]]]] = {
            kind: (count, latency, self._busy_until.get(kind))
            for kind, (count, latency, _pipelined) in self.config.items()
        }

    def try_issue(self, kind: str, cycle: int) -> Optional[int]:
        """Reserve a unit of ``kind``; returns its latency or None if busy."""
        used = self._used
        if cycle != self._cycle:
            self._cycle = cycle
            used.clear()
        count, latency, slots = self._kinds[kind]
        in_use = used.get(kind, 0)
        if in_use >= count:
            return None
        if slots is not None:
            for index, busy_until in enumerate(slots):
                if busy_until <= cycle:
                    slots[index] = cycle + latency
                    break
            else:
                return None
        used[kind] = in_use + 1
        return latency

    def flush(self) -> None:
        for slots in self._busy_until.values():
            for index in range(len(slots)):
                slots[index] = 0
