"""Functional unit pool: per-kind issue bandwidth and occupancy."""

from __future__ import annotations

from typing import Optional


class FUPool:
    """Tracks per-cycle issue slots and unpipelined-unit occupancy.

    ``fu_config`` maps kind -> (count, latency, pipelined).  Pipelined
    units accept one new operation per unit per cycle; unpipelined units
    (dividers) are busy for their full latency.
    """

    def __init__(self, fu_config: dict[str, tuple[int, int, bool]]) -> None:
        self.config = dict(fu_config)
        self._cycle = -1
        self._used: dict[str, int] = {}
        self._busy_until: dict[str, list[int]] = {
            kind: [0] * count
            for kind, (count, _lat, pipelined) in self.config.items()
            if not pipelined
        }

    def _roll(self, cycle: int) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._used = {}

    def try_issue(self, kind: str, cycle: int) -> Optional[int]:
        """Reserve a unit of ``kind``; returns its latency or None if busy."""
        self._roll(cycle)
        count, latency, pipelined = self.config[kind]
        if self._used.get(kind, 0) >= count:
            return None
        if not pipelined:
            slots = self._busy_until[kind]
            for index, busy_until in enumerate(slots):
                if busy_until <= cycle:
                    slots[index] = cycle + latency
                    break
            else:
                return None
        self._used[kind] = self._used.get(kind, 0) + 1
        return latency

    def flush(self) -> None:
        for slots in self._busy_until.values():
            for index in range(len(slots)):
                slots[index] = 0
