"""Load/store queue with conservative disambiguation and forwarding.

Loads may issue only when every older store has computed its address
(i.e. has issued); a load whose word address matches the youngest older
store forwards the data instead of accessing the cache.  Stores write the
data cache at commit (through a write buffer, off the critical path).

Implementation note: each load entry tracks a *blocker count* — the
number of older unissued stores — maintained incrementally (decremented
when an older store issues), so the per-cycle readiness check is O(1)
instead of a queue scan.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.isa.dyninst import DynInst


class _MemEntry:
    __slots__ = ("dyn", "issued", "is_store", "blockers")

    def __init__(self, dyn: DynInst, is_store: bool, blockers: int) -> None:
        self.dyn = dyn
        self.issued = False
        self.is_store = is_store
        self.blockers = blockers  # older unissued stores (loads only)


class LoadStoreQueue:
    """Split load/store queues, tracked together in program order."""

    def __init__(self, lq_size: int, sq_size: int) -> None:
        self.lq_size = lq_size
        self.sq_size = sq_size
        self._entries: deque[_MemEntry] = deque()  # program order
        self._by_id: dict[int, _MemEntry] = {}
        self._loads = 0
        self._stores = 0
        self._unissued_stores = 0

    # ------------------------------------------------------------------ capacity
    def can_insert(self, dyn: DynInst) -> bool:
        if dyn.info.is_load:
            return self._loads < self.lq_size
        if dyn.info.is_store:
            return self._stores < self.sq_size
        return True

    def insert(self, dyn: DynInst) -> None:
        if not self.can_insert(dyn):
            raise AssertionError("LSQ overflow")
        is_store = dyn.info.is_store
        entry = _MemEntry(dyn, is_store, 0 if is_store else self._unissued_stores)
        self._entries.append(entry)
        self._by_id[id(dyn)] = entry
        dyn.lsq_entry = entry  # direct back-reference for the issue hot path
        if is_store:
            self._stores += 1
            self._unissued_stores += 1
        else:
            self._loads += 1

    # ------------------------------------------------------------------ issue
    def _entry(self, dyn: DynInst) -> _MemEntry:
        try:
            return self._by_id[id(dyn)]
        except KeyError:
            raise AssertionError("instruction not in LSQ") from None

    def load_can_issue(self, dyn: DynInst) -> bool:
        """All older stores must have issued (addresses known)."""
        entry = dyn.lsq_entry
        if entry is None:
            raise AssertionError("instruction not in LSQ")
        return entry.blockers == 0

    def forwarding_store(self, dyn: DynInst) -> Optional[DynInst]:
        """Youngest older store to the same word, if any (already issued)."""
        word = dyn.mem_addr >> 3
        best: Optional[DynInst] = None
        for entry in self._entries:
            if entry.dyn is dyn:
                break
            if entry.is_store and entry.dyn.mem_addr >> 3 == word:
                best = entry.dyn
        return best

    def mark_issued(self, dyn: DynInst) -> None:
        entry = dyn.lsq_entry
        if entry is None:
            raise AssertionError("instruction not in LSQ")
        if entry.issued:
            return
        entry.issued = True
        if entry.is_store:
            self._unissued_stores -= 1
            self._unblock_after(entry)

    def _unblock_after(self, store_entry: _MemEntry) -> None:
        seen = False
        for entry in self._entries:
            if entry is store_entry:
                seen = True
                continue
            if seen and not entry.is_store:
                entry.blockers -= 1

    # ------------------------------------------------------------------ retire
    def _remove(self, dyn: DynInst) -> None:
        entry = self._by_id.pop(id(dyn))
        dyn.lsq_entry = None
        self._entries.remove(entry)
        if entry.is_store:
            self._stores -= 1
            if not entry.issued:
                self._unissued_stores -= 1
                self._unblock_after_removed(entry)
        else:
            self._loads -= 1

    def _unblock_after_removed(self, store_entry: _MemEntry) -> None:
        # removing an unissued store invalidates younger loads' counts;
        # recompute exactly (rare: only on squash of an unissued store)
        self._recount_blockers()

    def _recount_blockers(self) -> None:
        unissued = 0
        for entry in self._entries:
            if entry.is_store:
                if not entry.issued:
                    unissued += 1
            else:
                entry.blockers = unissued

    def retire(self, dyn: DynInst) -> None:
        if id(dyn) not in self._by_id:
            raise AssertionError("instruction not in LSQ")
        self._remove(dyn)

    def discard(self, dyn: DynInst) -> bool:
        """Remove ``dyn`` if present (squash); returns whether it was."""
        if id(dyn) not in self._by_id:
            return False
        self._remove(dyn)
        return True

    def flush(self) -> None:
        for entry in self._entries:
            entry.dyn.lsq_entry = None
        self._entries.clear()
        self._by_id.clear()
        self._loads = 0
        self._stores = 0
        self._unissued_stores = 0

    def __len__(self) -> int:
        return len(self._entries)
