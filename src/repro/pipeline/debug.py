"""Cross-structure invariant checking.

``check_invariants(processor)`` asserts the consistency conditions that
hold between the renamer, the free lists, the scoreboard and the queues at
any cycle boundary.  Tests call it directly; long simulations can attach
it via the ``on_cycle`` hook to catch state corruption the moment it
happens rather than thousands of cycles later.
"""

from __future__ import annotations

from repro.core.conventional import ConventionalRenamer
from repro.core.early_release import EarlyReleaseRenamer
from repro.core.sharing import SharingRenamer
from repro.isa.registers import RegClass


class InvariantViolation(AssertionError):
    """A cross-structure consistency condition failed."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvariantViolation(message)


def check_sharing_renamer(renamer: SharingRenamer) -> None:
    """Invariants internal to the sharing renamer."""
    for cls, domain in renamer.domains.items():
        free = set()
        for bank in range(domain.config.num_banks):
            for phys in domain.config.bank_range(bank):
                if domain.free.contains(phys):
                    free.add(phys)

        # 1. every rename-map target is live (not on a free list) and its
        #    version does not exceed the PRT's current version
        for logical, tag in enumerate(domain.map.entries):
            _require(tag is not None, f"{cls}: unmapped logical {logical}")
            phys, version = tag
            _require(phys not in free,
                     f"{cls}: rename map x{logical} -> freed p{phys}")
            _require(version <= domain.prt[phys].version,
                     f"{cls}: map version {version} above PRT "
                     f"{domain.prt[phys].version} for p{phys}")

        # 2. retirement-map targets are live and refcounts match
        refcount = [0] * domain.config.total_regs
        for logical, tag in enumerate(domain.retire_map.entries):
            _require(tag is not None, f"{cls}: unretired logical {logical}")
            _require(tag[0] not in free,
                     f"{cls}: retirement map -> freed p{tag[0]}")
            refcount[tag[0]] += 1
        for phys, expected in enumerate(refcount):
            _require(domain.refcount[phys] == expected,
                     f"{cls}: refcount[{phys}]={domain.refcount[phys]} "
                     f"expected {expected}")

        # 3. PRT versions stay within counter and bank-capacity bounds
        for phys in range(domain.config.total_regs):
            entry = domain.prt[phys]
            _require(0 <= entry.version <= domain.prt.max_version,
                     f"{cls}: PRT version out of range for p{phys}")
            if phys not in free:
                capacity = domain.config.shadow_cells_of(phys)
                _require(entry.version <= capacity,
                         f"{cls}: p{phys} version {entry.version} exceeds "
                         f"shadow capacity {capacity}")


def check_conventional_renamer(renamer: ConventionalRenamer) -> None:
    for cls, domain in renamer.domains.items():
        free = set(domain.free)
        _require(len(free) == len(domain.free),
                 f"{cls}: duplicate entries in free list")
        for logical, tag in enumerate(domain.map.entries):
            _require(tag is not None and tag[0] not in free,
                     f"{cls}: rename map x{logical} -> freed register")
        for logical, tag in enumerate(domain.retire_map.entries):
            _require(tag is not None and tag[0] not in free,
                     f"{cls}: retirement map x{logical} -> freed register")


def check_early_renamer(renamer: EarlyReleaseRenamer) -> None:
    """Invariants internal to the early-release renamer.

    Note the *retirement* map is deliberately unchecked against the free
    list: releasing registers the committed state still references is the
    scheme's defining (and precision-breaking) behaviour.
    """
    for cls, domain in renamer.domains.items():
        free = set(domain.free)
        _require(len(free) == len(domain.free),
                 f"{cls}: duplicate entries in free list")
        for logical, tag in enumerate(domain.map.entries):
            _require(tag is not None, f"{cls}: unmapped logical {logical}")
            _require(tag[0] not in free,
                     f"{cls}: rename map x{logical} -> freed p{tag[0]}")
        for phys, state in enumerate(domain.state):
            if state.released:
                _require(phys in free,
                         f"{cls}: p{phys} marked released but not free")
            elif phys in free:
                # only never-yet-allocated spares may sit on the free list
                # without the released flag
                _require(state.generation == 0 and not state.produced,
                         f"{cls}: allocated p{phys} free without release")
            _require(state.pending_reads >= 0,
                     f"{cls}: negative pending reads on p{phys}")
            _require(not (state.released and state.pending_reads > 0),
                     f"{cls}: p{phys} released with "
                     f"{state.pending_reads} reads pending")


def check_invariants(processor) -> None:
    """Full cross-structure check; raises InvariantViolation on failure."""
    renamer = processor.renamer
    if isinstance(renamer, SharingRenamer):
        check_sharing_renamer(renamer)
    elif isinstance(renamer, ConventionalRenamer):
        check_conventional_renamer(renamer)
    elif isinstance(renamer, EarlyReleaseRenamer):
        check_early_renamer(renamer)

    # queue occupancy within bounds
    _require(0 <= len(processor.rob) <= processor.config.rob_size,
             "ROB occupancy out of bounds")
    _require(0 <= len(processor.iq) <= processor.config.iq_size,
             "IQ occupancy out of bounds")

    # every in-flight (non-squashed) instruction's source tags that are
    # marked ready must be readable from the register file
    for dyn in processor.rob:
        if dyn.squashed:
            continue
        for tag in dyn.src_tags:
            if processor.scoreboard.get(tag, False) and tag[1] >= 0:
                try:
                    renamer.read(tag)
                except AssertionError as exc:  # pragma: no cover - message path
                    raise InvariantViolation(
                        f"ready tag {tag} unreadable for {dyn}: {exc}"
                    ) from exc
