"""The out-of-order processor model.

One :class:`Processor` couples the front end (fetch + branch prediction +
L1-I), a renaming scheme (conventional or sharing), the issue queue with
version-tagged wakeup, the load/store queue, functional units, the memory
hierarchy and in-order commit with precise exceptions.

Stage evaluation order within a cycle is commit → writeback → issue →
rename/dispatch → fetch, so results propagate with realistic one-cycle
visibility and a value written back in cycle N can feed a dependent issue
in the same cycle (full bypass network).

Verification: when ``config.verify_values`` is set, every issued
instruction's renamed source operands are read from the physical register
file and compared against the functionally recorded values — any renaming
bug (wrong version woken, premature overwrite, bad recovery) trips an
assertion instead of silently skewing results.
"""

from __future__ import annotations

import heapq
import os
from itertools import count
from typing import Iterable, Optional, Union

from repro.core.read_ports import make_port_scheme
from repro.core.renamer import BaseRenamer, Tag
from repro.core.sharing import SharingRenamer
from repro.frontend.branch_predictor import BranchUnit
from repro.frontend.fetch import FetchUnit, InstSource, IterSource
from repro.isa.dyninst import DynInst
from repro.isa.executor import FaultModel, FunctionalExecutor
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import FP_REGS, INT_REGS, RegClass, RegRef
from repro.pipeline.config import MachineConfig
from repro.pipeline.functional_units import FUPool
from repro.pipeline.issue_queue import IssueQueue
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.stats import SimStats


class VerificationError(AssertionError):
    """A renaming/dataflow verification check failed."""


class PipelineHang(RuntimeError):
    """The cycle-loop watchdog aborted the run (deadlock or cycle budget).

    The message carries a :meth:`Processor.diagnostic_snapshot` — ROB-head
    state, issue-queue occupancy, rename free-list counts — so a hang is
    debuggable from the exception alone (e.g. out of a sweep worker's
    captured traceback)."""


def _values_equal(a, b) -> bool:
    if a == b:
        return True
    return a != a and b != b  # NaN == NaN for verification purposes


class Processor:
    """Cycle-level OoO core."""

    def __init__(
        self,
        config: MachineConfig,
        source: InstSource,
        fault_model: Optional[FaultModel] = None,
        on_cycle=None,
        on_cycle_interval: int = 128,
        on_commit=None,
        on_halt=None,
        oracle=False,
        keep_trace: bool = False,
        naive_loop: Optional[bool] = None,
        kernel: Optional[bool] = None,
        recycle=None,
        branch_unit: Optional[BranchUnit] = None,
        hierarchy=None,
    ) -> None:
        self.config = config
        self.fault_model = fault_model
        self.on_cycle = on_cycle
        self.on_cycle_interval = on_cycle_interval
        #: per-commit hook: called as on_commit(processor, dyn) for every
        #: committed ROB head (including micro-ops and HALT)
        self.on_commit = on_commit
        #: end-of-run hook: called as on_halt(processor) after _finalize()
        self.on_halt = on_halt
        if oracle is True:
            # convenience: stream-mode differential oracle (checks commit
            # order and PRF values against the functionally recorded stream)
            from repro.verify.oracle import OracleChecker

            oracle = OracleChecker()
        #: commit-time differential oracle (repro.verify.oracle), or None
        self.oracle = oracle or None
        #: committed instructions in commit order (when keep_trace is set)
        self.trace: Optional[list[DynInst]] = [] if keep_trace else None
        # externally provided hierarchy / branch unit let the sampling
        # engine keep warmed caches and predictors alive across windows
        self.hierarchy = hierarchy if hierarchy is not None \
            else config.make_hierarchy()
        self.branch_unit = branch_unit if branch_unit is not None else BranchUnit(
            kind=config.branch_predictor,
            table_size=config.predictor_table,
            btb_entries=config.btb_entries,
            ras_depth=config.ras_depth,
        )
        wrong_path = None
        if config.model_wrong_path:
            if config.scheme == "early":
                raise ValueError(
                    "early-release renaming cannot walk back wrong-path "
                    "renames; disable model_wrong_path")
            from repro.frontend.wrong_path import WrongPathGenerator

            wrong_path = WrongPathGenerator()
        self.fetch = FetchUnit(
            source,
            self.branch_unit,
            icache=self.hierarchy,
            fetch_width=config.fetch_width,
            queue_size=config.fetch_queue,
            mispredict_penalty=config.mispredict_penalty,
            line_bytes=config.hierarchy.line_bytes,
            wrong_path=wrong_path,
        )
        self.renamer: BaseRenamer = config.make_renamer()
        self._track_reads = self.renamer.tracks_operand_reads
        self.rob = ReorderBuffer(config.rob_size)
        self.iq = IssueQueue(config.iq_size)
        self.lsq = LoadStoreQueue(config.lq_size, config.sq_size)
        self.fus = FUPool(config.fu_config)
        #: read-port-reduction scheme (repro.core.read_ports), or None
        self.read_ports = make_port_scheme(config)
        self.scoreboard: dict[Tag, bool] = {}
        self.completion: list[tuple[int, int, DynInst]] = []
        self._ticket = count()
        self.stats = SimStats()
        self.cycle = 0
        self._halted = False
        self._last_progress = 0
        #: quiet cycles elided by the event-driven loop (observability only;
        #: deliberately kept out of SimStats so both loops produce
        #: bit-identical statistics)
        self.cycles_skipped = 0
        if naive_loop is None:
            naive_loop = os.environ.get("REPRO_NAIVE_LOOP", "") not in ("", "0")
        self._naive_loop = naive_loop
        if kernel is None:
            kernel = os.environ.get("REPRO_NO_KERNEL", "") in ("", "0")
        self._use_kernel = bool(kernel)
        #: which cycle loop run() actually used: "naive" | "generated" | "event"
        self.loop_used: Optional[str] = None
        # committed instructions may be returned to a DynInstPool, but only
        # when nothing downstream can still hold a reference to them
        self._recycle = recycle if (
            recycle is not None and self.oracle is None
            and on_commit is None and not keep_trace
        ) else None

        for tag, value in self.renamer.initial_tags():
            self.scoreboard[tag] = True
            self.renamer.write(tag, value)

    # ------------------------------------------------------------------ helpers
    def is_ready(self, tag: Tag) -> bool:
        return self.scoreboard.get(tag, False)

    def architectural_state(self) -> tuple[list, list]:
        """Committed register state, read through the retirement map.

        Returns (int_regs, fp_regs); used by tests to compare against the
        in-order reference executor.
        """
        int_regs = [
            self.renamer.read(self.renamer.committed_tag(RegRef(RegClass.INT, i)))
            for i in range(INT_REGS)
        ]
        fp_regs = [
            self.renamer.read(self.renamer.committed_tag(RegRef(RegClass.FP, i)))
            for i in range(FP_REGS)
        ]
        return int_regs, fp_regs

    @property
    def _shadow_recovery(self) -> bool:
        return isinstance(self.renamer, SharingRenamer)

    def diagnostic_snapshot(self) -> str:
        """One-line-per-structure pipeline state dump for watchdog aborts."""
        head = self.rob.head()
        if head is None:
            head_line = "rob head: <empty>"
        else:
            head_line = (f"rob head: {head} completed={head.completed} "
                         f"exception={head.exception_raised} "
                         f"issue_cycle={head.issue_cycle}")
        completion_next = self.completion[0][0] if self.completion else None
        return "\n".join([
            f"cycle={self.cycle} committed={self.stats.committed} "
            f"last_progress={self._last_progress} halted={self._halted}",
            head_line,
            f"rob: {len(self.rob)}/{self.config.rob_size} occupied",
            f"iq: {len(self.iq)}/{self.config.iq_size} occupied, "
            f"{len(self.iq.ready_entries())} ready",
            f"fetch: queue={len(self.fetch.queue)} eof={self.fetch.eof}",
            f"free regs: int={self.renamer.free_registers(RegClass.INT)} "
            f"fp={self.renamer.free_registers(RegClass.FP)}",
            f"completion heap: {len(self.completion)} pending, "
            f"next due cycle {completion_next}",
        ])

    def _watchdog_abort(self, reason: str) -> None:
        raise PipelineHang(f"{reason}\n{self.diagnostic_snapshot()}")

    def inject_flush(self, penalty: Optional[int] = None) -> int:
        """Fault injection: force a precise flush + recovery right now.

        Equivalent to an exception arriving at the commit boundary:
        everything in flight is squashed, rename state recovers from the
        retirement map, and the squashed instructions re-fetch in order.
        Used by the squash-storm injector (:mod:`repro.faults.injectors`);
        only call between cycles (from an ``on_cycle`` hook under the
        naive loop).  Returns the penalty charged.
        """
        if penalty is None:
            penalty = self.config.exception_flush_penalty
        return self._flush_and_replay(penalty)

    # ------------------------------------------------------------------ main loop
    def run(self, max_insts: Optional[int] = None) -> SimStats:
        if self._naive_loop:
            self.loop_used = "naive"
            self._run_naive(max_insts)
        elif self._use_kernel:
            self._run_generated(max_insts)
        else:
            self.loop_used = "event"
            self._run_event(max_insts)
        self._finalize()
        # final unconditional invariant check: the interval hook only fires
        # every on_cycle_interval cycles, so corruption in the trailing
        # (interval - 1) cycles would otherwise escape unchecked
        if self.on_cycle is not None and self.cycle % self.on_cycle_interval != 0:
            self.on_cycle(self)
        if self.oracle is not None:
            complete = self._halted or (self.fetch.eof and len(self.rob) == 0)
            self.oracle.on_halt(self, complete=complete)
        if self.on_halt is not None:
            self.on_halt(self)
        return self.stats

    def _run_naive(self, max_insts: Optional[int]) -> None:
        """The reference cycle loop: every stage, every cycle.

        Kept verbatim as the differential baseline for the event-driven
        kernel (select with ``REPRO_NAIVE_LOOP=1`` or ``naive_loop=True``);
        both loops must produce bit-identical :class:`SimStats`.
        """
        interrupt_interval = self.config.interrupt_interval
        next_interrupt = interrupt_interval if interrupt_interval else None
        while not self._done(max_insts):
            self.cycle += 1
            if next_interrupt is not None and self.cycle >= next_interrupt:
                penalty = self._handle_interrupt()
                # the next interrupt is scheduled after the handler returns,
                # so forward progress is guaranteed
                next_interrupt = self.cycle + interrupt_interval + penalty
            self._commit()
            self._writeback()
            self._issue()
            self._rename()
            self.fetch.tick(self.cycle)
            stats = self.stats
            stats.rob_occupancy_sum += len(self.rob)
            stats.iq_occupancy_sum += len(self.iq)
            stats.free_regs_sum += self.renamer.free_registers(RegClass.INT)
            stats.occupancy_samples += 1
            if self.on_cycle is not None and self.cycle % self.on_cycle_interval == 0:
                self.on_cycle(self)
            if self.cycle > self.config.max_cycles:
                self._watchdog_abort(
                    f"cycle budget ({self.config.max_cycles}) exceeded")
            if self.cycle - self._last_progress > 200_000:
                self._watchdog_abort(
                    f"pipeline deadlock: no progress for "
                    f"{self.cycle - self._last_progress} cycles")

    def _run_generated(self, max_insts: Optional[int]) -> None:
        """Run the code-generated kernel for this (scheme, config) pair.

        Fallback ladder: generated -> event -> naive.  Kernel *resolution*
        failures (unknown scheme, subclassed renamer, generation or compile
        errors) silently fall back to the event loop — same semantics,
        just slower.  Exceptions raised while a kernel is *running*
        propagate: simulated state may be mid-cycle, so retrying on a
        different loop would be wrong.
        """
        kernel = self._load_kernel()
        if kernel is None:
            self.loop_used = "event"
            self._run_event(max_insts)
            return
        self.loop_used = "generated"
        # the kernel allocates heavily but creates no reference cycles on
        # its hot paths; pausing the cyclic collector is worth a few
        # percent and cannot change simulated behavior
        import gc
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            kernel(self, max_insts)
        finally:
            if was_enabled:
                gc.enable()

    def _load_kernel(self):
        try:
            from repro.codegen import kernel_for
        except Exception:
            return None
        return kernel_for(self.config, self.renamer)

    def _run_event(self, max_insts: Optional[int]) -> None:
        """Event-driven cycle loop: skip runs of provably-quiet cycles.

        Active cycles evaluate the same stages in the same order as
        :meth:`_run_naive` (with the per-stage O(1) early-outs inlined);
        when no stage can possibly make progress the loop jumps
        ``self.cycle`` straight to the next event — the earliest
        completion-heap entry, the fetch unit's wake-up cycle
        (redirect/I-cache stall expiry), the next interrupt, the cycle
        budget, or the deadlock watchdog bound — bulk-accounting the
        occupancy statistics and I-cache stall counters the skipped
        cycles would have accumulated.  See docs/ARCHITECTURE.md
        ("Cycle-loop internals") for the quiet-cycle conditions.
        """
        config = self.config
        interrupt_interval = config.interrupt_interval
        next_interrupt = interrupt_interval if interrupt_interval else None
        max_cycles = config.max_cycles
        stats = self.stats
        fetch = self.fetch
        fetch_queue = fetch.queue  # stable: FetchUnit mutates it in place
        fetch_tick = fetch.tick
        iq = self.iq
        rob_entries = self.rob._entries  # stable: ReorderBuffer clears in place
        completion = self.completion
        free_registers = self.renamer.free_registers
        int_cls = RegClass.INT
        on_cycle = self.on_cycle
        interval = self.on_cycle_interval
        commit = self._commit
        writeback = self._writeback
        issue = self._issue
        rename = self._rename
        while not self._done(max_insts):
            cycle = self.cycle + 1
            self.cycle = cycle
            if next_interrupt is not None and cycle >= next_interrupt:
                penalty = self._handle_interrupt()
                next_interrupt = cycle + interrupt_interval + penalty
            if rob_entries and rob_entries[0].completed:
                commit()
            if completion and completion[0][0] <= cycle:
                writeback()
            if iq._ready:
                issue()
            if fetch_queue:
                rename()
            fetch_tick(cycle)
            stats.rob_occupancy_sum += len(rob_entries)
            stats.iq_occupancy_sum += iq._size
            stats.free_regs_sum += free_registers(int_cls)
            stats.occupancy_samples += 1
            if on_cycle is not None and cycle % interval == 0:
                on_cycle(self)
            if cycle > max_cycles:
                self.cycle = cycle
                self._watchdog_abort(
                    f"cycle budget ({max_cycles}) exceeded")
            if cycle - self._last_progress > 200_000:
                self.cycle = cycle
                self._watchdog_abort(
                    f"pipeline deadlock: no progress for "
                    f"{cycle - self._last_progress} cycles")

            # ---- quiet-cycle skip ----------------------------------------
            # A cycle is quiet when every stage is provably idle: nothing
            # renameable (fetch queue empty), nothing issueable (ready list
            # empty), nothing completing (no due completion-heap entry),
            # nothing committable (ROB head incomplete) and fetch is
            # stalled or exhausted.  State is then constant until the next
            # event, so intermediate cycles only need bulk accounting.
            if fetch_queue or self._halted:
                continue
            if rob_entries and rob_entries[0].completed:
                continue
            if iq._ready and iq.ready_entries():
                continue
            if self._done(max_insts):
                continue  # let the loop condition exit at the true cycle
            target = completion[0][0] if completion else None
            wake = fetch.next_active_cycle(cycle)
            if wake is not None and (target is None or wake < target):
                target = wake
            limit = self._last_progress + 200_001
            if target is None or target > limit:
                target = limit  # run into the deadlock watchdog
            if next_interrupt is not None and next_interrupt < target:
                target = next_interrupt
            if target > max_cycles + 1:
                target = max_cycles + 1
            skipped = target - cycle - 1
            if skipped <= 0:
                continue
            stats.rob_occupancy_sum += skipped * len(rob_entries)
            stats.iq_occupancy_sum += skipped * iq._size
            stats.free_regs_sum += skipped * free_registers(int_cls)
            stats.occupancy_samples += skipped
            fetch.account_idle(cycle + 1, target - 1)
            self.cycles_skipped += skipped
            if on_cycle is not None:
                # fire the hook at every interval boundary inside the skip,
                # with self.cycle set as the naive loop would have it
                first = cycle + interval - (cycle % interval)
                for boundary in range(first, target, interval):
                    self.cycle = boundary
                    on_cycle(self)
            self.cycle = target - 1

    def _done(self, max_insts: Optional[int]) -> bool:
        if self._halted:
            return True
        if max_insts is not None and self.stats.committed >= max_insts:
            return True
        return self.fetch.eof and len(self.rob) == 0

    def _finalize(self) -> None:
        stats = self.stats
        stats.cycles = self.cycle
        stats.renamer_stats = self.renamer.stats
        stats.branch_stats = self.branch_unit.stats
        if isinstance(self.renamer, SharingRenamer):
            stats.predictor_stats = self.renamer.predictor.stats
        stats.cache_stats = {
            "l1d": self.hierarchy.l1d.stats,
            "l1i": self.hierarchy.l1i.stats,
            "l2": self.hierarchy.l2.stats,
            "tlb": self.hierarchy.tlb.stats,
            "dram": self.hierarchy.dram.stats,
        }

    # ------------------------------------------------------------------ commit
    def _commit(self) -> None:
        committed = 0
        while committed < self.config.commit_width:
            head = self.rob.head()
            if head is None or not head.completed:
                return
            if head.exception_raised:
                self._handle_exception(head)
                return
            if head.wrong_path:
                raise AssertionError(
                    "wrong-path instruction reached commit: the mispredicted "
                    "branch must have resolved (and squashed it) first")
            self.rob.pop_head()
            head.commit_cycle = self.cycle
            if head.info.is_store:
                self.hierarchy.data_access(head.pc, head.mem_addr, True, self.cycle)
                self.lsq.retire(head)
                self.stats.stores += 1
            elif head.info.is_load:
                self.lsq.retire(head)
                self.stats.loads += 1
            self.renamer.commit(head)
            if self.trace is not None:
                self.trace.append(head)
            if head.micro_op:
                self.stats.committed_uops += 1
            else:
                self.stats.committed += 1
            if self.oracle is not None:
                self.oracle.on_commit(self, head)
            if self.on_commit is not None:
                self.on_commit(self, head)
            if head.op is Op.HALT:
                self._halted = True
                return
            if self._recycle is not None:
                self._recycle.release(head)
            committed += 1
            self._last_progress = self.cycle

    # ------------------------------------------------------------------ exceptions
    def _flush_and_replay(self, base_penalty: int) -> int:
        """Precise flush at the commit boundary: squash everything in
        flight, recover rename state, re-fetch in order.  Returns the
        total penalty charged."""
        replay = [d for d in self.rob.drain()
                  if not d.micro_op and not d.wrong_path]
        replay.extend(d for d in self.fetch.queue
                      if not d.micro_op and not d.wrong_path)
        for dyn in replay:
            dyn.reset_pipeline_state()

        diff = self.renamer.recover()
        penalty = base_penalty
        if self._shadow_recovery:
            penalty += diff * self.config.recovery_cycles_per_entry
        self.stats.recovery_cycles += penalty

        self.iq.flush()
        self.lsq.flush()
        self.fus.flush()
        if self.read_ports is not None:
            self.read_ports.flush()
        self.completion.clear()
        self._rebuild_scoreboard()
        self.fetch.inject_replay(replay, self.cycle, penalty)
        self._last_progress = self.cycle
        return penalty

    def _handle_exception(self, head: DynInst) -> None:
        self.stats.exceptions += 1
        # service the fault so the replayed instruction succeeds
        if self.fault_model is not None and head.mem_addr is not None:
            self.fault_model.service(head.mem_addr)
        head.faults = False
        self._flush_and_replay(self.config.exception_flush_penalty)

    def _squash_wrong_path(self, branch: DynInst) -> int:
        """The mispredicted branch resolved: walk back everything younger.

        With wrong-path modelling, every ROB entry younger than the branch
        is wrong-path (correct-path fetch stopped at the misprediction).
        Returns the extra recovery cycles (shadow-cell restores).
        """
        squashed = self.rob.pop_younger_than(branch)
        for dyn in squashed:
            dyn.squashed = True
            self.iq.discard(dyn)
            if dyn.info.is_mem:
                self.lsq.discard(dyn)
            if dyn.dest_tag is not None:
                self.scoreboard.pop(dyn.dest_tag, None)
        restores = self.renamer.squash_to(squashed)
        extra = restores * self.config.recovery_cycles_per_entry
        self.stats.recovery_cycles += extra
        self.stats.wrong_path_squashed += len(squashed)
        self._last_progress = self.cycle
        return extra

    def _handle_interrupt(self) -> int:
        """Asynchronous interrupt at the commit boundary (Section IV-B)."""
        self.stats.interrupts += 1
        return self._flush_and_replay(
            self.config.exception_flush_penalty
            + self.config.interrupt_handler_cycles
        )

    def _rebuild_scoreboard(self) -> None:
        self.scoreboard = {}
        for idx in range(INT_REGS):
            tag = self.renamer.committed_tag(RegRef(RegClass.INT, idx))
            self.scoreboard[tag] = True
        for idx in range(FP_REGS):
            tag = self.renamer.committed_tag(RegRef(RegClass.FP, idx))
            self.scoreboard[tag] = True

    # ------------------------------------------------------------------ writeback
    def _writeback(self) -> None:
        completion = self.completion
        if not completion or completion[0][0] > self.cycle:
            return  # nothing completes this cycle: stay allocation-free
        write_ports = self.config.rf_write_ports
        ports = self.read_ports
        writes_used = [0, 0]  # per register class
        while self.completion and self.completion[0][0] <= self.cycle:
            _, _, dyn = heapq.heappop(self.completion)
            if dyn.squashed:
                continue
            if (write_ports is not None and dyn.dest_tag is not None
                    and writes_used[dyn.dest_tag[0]] >= write_ports):
                # out of register-file write ports: retry next cycle
                heapq.heappush(self.completion,
                               (self.cycle + 1, next(self._ticket), dyn))
                break
            if dyn.dest_tag is not None:
                writes_used[dyn.dest_tag[0]] += 1
            dyn.completed = True
            dyn.complete_cycle = self.cycle
            if dyn.dest_tag is not None:
                if dyn.result is not None:
                    self.renamer.write(dyn.dest_tag, dyn.result)
                self.scoreboard[dyn.dest_tag] = True
                if ports is not None:
                    ports.note_writeback(dyn.dest_tag, self.cycle)
                self.iq_wakeup(dyn.dest_tag)
            if dyn.info.is_branch:
                extra = 0
                if dyn.mispredicted and not dyn.wrong_path \
                        and self.config.model_wrong_path:
                    extra = self._squash_wrong_path(dyn)
                self.fetch.branch_resolved(dyn, self.cycle, extra)
            self._last_progress = self.cycle

    def iq_wakeup(self, tag: Tag) -> None:
        self.iq.wakeup(tag)

    # ------------------------------------------------------------------ issue
    def _issue(self) -> None:
        ready = self.iq.ready_entries()
        if not ready:
            return
        issued = 0
        issue_width = self.config.issue_width
        ports = self.read_ports
        if ports is not None:
            # port-reduction scheme active: it subsumes the flat
            # rf_read_ports accounting (repro.core.read_ports)
            ports.begin_cycle(self.cycle)
            read_ports = None
        else:
            read_ports = self.config.rf_read_ports
        reads_used = [0, 0] if read_ports is not None else None
        for dyn in ready:
            if issued >= issue_width:
                break
            info = dyn.info
            if info.is_load and not dyn.faults and not self.lsq.load_can_issue(dyn):
                continue
            if ports is not None:
                plan = ports.plan(dyn, self.cycle)
                if plan is None:
                    self.stats.rf_port_stalls += 1
                    continue  # bank/port conflict beyond the delay window
            elif read_ports is not None:
                needed = [0, 0]
                for tag in dyn.src_tags:
                    needed[tag[0]] += 1
                if any(reads_used[c] + needed[c] > read_ports for c in (0, 1)):
                    continue  # out of register-file read ports this cycle
            latency = self.fus.try_issue(info.fu, self.cycle)
            if latency is None:
                continue
            if ports is not None:
                port_delay = ports.commit(plan, self.stats)
            elif read_ports is not None:
                reads_used[0] += needed[0]
                reads_used[1] += needed[1]

            if dyn.faults:
                total = latency
                dyn.exception_raised = True
            elif info.is_load:
                forwarding = self.lsq.forwarding_store(dyn)
                if forwarding is not None:
                    total = latency + 1
                    self.stats.store_forwards += 1
                else:
                    total = latency + self.hierarchy.data_access(
                        dyn.pc, dyn.mem_addr, False, self.cycle
                    )
                self.lsq.mark_issued(dyn)
            elif info.is_store:
                total = latency  # address generation; data written at commit
                self.lsq.mark_issued(dyn)
            else:
                total = latency
            if ports is not None:
                total += port_delay  # delayed banked reads (arbiter)

            if self.config.verify_values:
                self._verify_operands(dyn)
            if self._track_reads:
                for tag in dyn.src_tags:
                    self.renamer.on_operand_read(tag)

            self.iq.remove(dyn)
            dyn.issue_cycle = self.cycle
            heapq.heappush(self.completion, (self.cycle + total, next(self._ticket), dyn))
            self.stats.issued += 1
            issued += 1
            self._last_progress = self.cycle

    def _verify_operands(self, dyn: DynInst) -> None:
        if dyn.wrong_path:
            return  # wrong-path inputs are meaningless by construction
        for ref, tag, expected in zip(dyn.srcs, dyn.src_tags, dyn.src_values):
            if expected is None:
                continue
            actual = self.renamer.read(tag)
            if not _values_equal(actual, expected):
                raise VerificationError(
                    f"operand mismatch at {dyn}: {ref} renamed to {tag} "
                    f"reads {actual!r}, expected {expected!r}"
                )

    # ------------------------------------------------------------------ rename
    def _rename(self) -> None:
        dispatched = 0
        while dispatched < self.config.rename_width:
            dyn = self.fetch.peek()
            if dyn is None:
                return
            # worst case group: two repaired sources (3 µops each) + dyn
            if self.rob.free_slots >= 7 and self.iq.free_slots >= 7:
                slots = 1  # plenty of room; rename() sizes the real group
            else:
                uops = self.renamer.uops_needed(dyn, self.is_ready)
                slots = uops + 1
                if self.rob.free_slots < slots:
                    self.stats.rename_stall_rob += 1
                    return
                if self.iq.free_slots < slots:
                    self.stats.rename_stall_iq += 1
                    return
            if dyn.info.is_mem and not self.lsq.can_insert(dyn):
                self.stats.rename_stall_lsq += 1
                return
            if not self.renamer.can_rename(dyn):
                self.stats.rename_stall_regs += 1
                return
            self.fetch.pop()
            group = self.renamer.rename(dyn, self.is_ready)
            for renamed in group:
                renamed.rename_cycle = self.cycle
                if renamed.dest_tag is not None:
                    self.scoreboard[renamed.dest_tag] = False
                self.rob.push(renamed)
                self.iq.insert(renamed, self.is_ready)
                if renamed.info.is_mem:
                    self.lsq.insert(renamed)
            dispatched += len(group)  # repair µops occupy dispatch slots
            self._last_progress = self.cycle


def simulate(
    config: MachineConfig,
    workload: Union[Program, InstSource, Iterable[DynInst]],
    fault_model: Optional[FaultModel] = None,
    max_insts: Optional[int] = None,
    program_budget: int = 10_000_000,
    oracle: bool = False,
    pool=None,
    naive_loop: Optional[bool] = None,
    sampling=None,
    sampling_seed: int = 1,
) -> SimStats:
    """Run one simulation and return its statistics.

    ``workload`` may be an assembled :class:`Program` (executed
    functionally), an :class:`InstSource`, or any iterable of
    :class:`DynInst` (e.g. a workload generator).

    With ``oracle=True`` the commit-time differential oracle
    (:mod:`repro.verify.oracle`) is attached: program workloads get the
    full lockstep golden-model comparison, other workloads the stream-mode
    checks.

    ``pool`` is an optional :class:`~repro.isa.dyninst.DynInstPool`; for
    program workloads one is created automatically when no oracle is
    attached, so committed instructions are recycled instead of
    re-allocated.

    ``sampling`` selects interval-sampled simulation: a
    :class:`~repro.sampling.SamplingSchedule` or a ``"P:W:U"`` spec
    string.  The run then returns a
    :class:`~repro.pipeline.stats.SampledStats` estimate instead of exact
    :class:`SimStats`; ``sampling_seed`` seeds the schedule's random
    phase offset.  Sampled runs cannot attach the oracle (measurement
    windows start from warm, unverifiable microarchitectural state).
    """
    if sampling is not None:
        if oracle:
            raise ValueError(
                "sampled simulation cannot attach the oracle; use exact mode")
        from repro.sampling import as_schedule, sampled_simulate

        return sampled_simulate(
            config, workload, schedule=as_schedule(sampling, seed=sampling_seed),
            total_insts=max_insts, fault_model=fault_model,
            program_budget=program_budget, pool=pool, naive_loop=naive_loop)
    checker = False
    if isinstance(workload, Program):
        if pool is None and not oracle:
            from repro.isa.dyninst import DynInstPool

            pool = DynInstPool()
        executor = FunctionalExecutor(workload, fault_model=fault_model,
                                      pool=pool)
        source: InstSource = IterSource(executor.run(program_budget))
        if oracle:
            from repro.verify.oracle import OracleChecker

            checker = OracleChecker(program=workload,
                                    source_state=executor.state)
    elif hasattr(workload, "next_inst"):
        source = workload  # type: ignore[assignment]
        checker = oracle
    else:
        source = IterSource(workload)
        checker = oracle
    processor = Processor(config, source, fault_model=fault_model,
                          oracle=checker, recycle=pool,
                          naive_loop=naive_loop)
    return processor.run(max_insts=max_insts)
