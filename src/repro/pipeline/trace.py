"""Pipeline trace rendering: per-instruction stage timeline.

Run a :class:`~repro.pipeline.processor.Processor` with ``keep_trace=True``
and render the committed instructions as a classic pipeline diagram —
useful for debugging renaming behaviour (reuses show up as instructions
whose destination tag shares a physical register with an older one).

::

    seq  pc  instruction           F     R     I     W     C    tags
    0    0   movi x1         |F R  I W  C            ...

Stage letters: F fetch, R rename/dispatch, I issue, W writeback
(completion), C commit.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.isa.dyninst import DynInst


def _tag_str(tag) -> str:
    if tag is None:
        return ""
    cls, phys, version = tag
    prefix = "P" if cls == 0 else "Q"
    return f"{prefix}{phys}.{version}"


def trace_table(insts: Iterable[DynInst], limit: Optional[int] = None) -> str:
    """Stage-cycle table for committed instructions."""
    rows = []
    header = (f"{'seq':>5s} {'pc':>5s} {'instruction':24s} "
              f"{'F':>6s} {'R':>6s} {'I':>6s} {'W':>6s} {'C':>6s}  tags")
    rows.append(header)
    rows.append("-" * len(header))
    for index, dyn in enumerate(insts):
        if limit is not None and index >= limit:
            rows.append(f"... ({index}+ instructions)")
            break
        text = str(dyn).split("] ", 1)[-1]
        dest = _tag_str(dyn.dest_tag)
        srcs = ",".join(_tag_str(t) for t in dyn.src_tags)
        tag_info = f"{dest} <- {srcs}" if dest or srcs else ""
        marker = " u" if dyn.micro_op else ("  " if not dyn.mispredicted else " !")
        rows.append(
            f"{dyn.seq:>5d} {dyn.pc:>5d} {text[:24]:24s} "
            f"{dyn.fetch_cycle:>6d} {dyn.rename_cycle:>6d} {dyn.issue_cycle:>6d} "
            f"{dyn.complete_cycle:>6d} {dyn.commit_cycle:>6d}  {tag_info}{marker}"
        )
    return "\n".join(rows)


def trace_gantt(insts: Iterable[DynInst], width: int = 72,
                limit: int = 40) -> str:
    """ASCII Gantt chart of the pipeline occupancy of each instruction."""
    insts = list(insts)[:limit]
    if not insts:
        return "(empty trace)"
    start = min(d.fetch_cycle for d in insts if d.fetch_cycle >= 0)
    end = max(d.commit_cycle for d in insts)
    span = max(1, end - start + 1)
    scale = min(1.0, width / span)

    def col(cycle: int) -> int:
        return int((cycle - start) * scale)

    lines = []
    for dyn in insts:
        row = [" "] * (col(end) + 1)
        stages = [
            (dyn.fetch_cycle, "F"),
            (dyn.rename_cycle, "R"),
            (dyn.issue_cycle, "I"),
            (dyn.complete_cycle, "W"),
            (dyn.commit_cycle, "C"),
        ]
        previous = None
        for cycle, letter in stages:
            if cycle < 0:
                continue
            position = col(cycle)
            if previous is not None:
                for fill in range(previous + 1, position):
                    if row[fill] == " ":
                        row[fill] = "-"
            row[position] = letter
            previous = position
        text = str(dyn).split("] ", 1)[-1]
        lines.append(f"{dyn.seq:>4d} {text[:18]:18s} |{''.join(row)}")
    return "\n".join(lines)


def reuse_annotations(insts: Iterable[DynInst]) -> str:
    """Summarise which committed instructions reused a register."""
    lines = []
    for dyn in insts:
        if dyn.reused_src is not None and dyn.dest_tag is not None:
            lines.append(
                f"seq {dyn.seq}: {str(dyn).split('] ')[-1]} reused "
                f"{_tag_str(dyn.dest_tag)} (version {dyn.dest_tag[2]}) "
                f"via source {dyn.reused_src}"
            )
        elif dyn.micro_op:
            lines.append(f"seq {dyn.seq}: repair micro-op -> {_tag_str(dyn.dest_tag)}")
    return "\n".join(lines) if lines else "(no reuses)"
