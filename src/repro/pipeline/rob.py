"""Reorder buffer: a bounded FIFO of in-flight instructions."""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.isa.dyninst import DynInst


class ReorderBuffer:
    """In-order window of renamed instructions awaiting commit."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._entries: deque[DynInst] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self._entries)

    @property
    def free_slots(self) -> int:
        return self.size - len(self._entries)

    def push(self, dyn: DynInst) -> None:
        if len(self._entries) >= self.size:
            raise AssertionError("ROB overflow")
        self._entries.append(dyn)

    def head(self) -> Optional[DynInst]:
        return self._entries[0] if self._entries else None

    def pop_head(self) -> DynInst:
        return self._entries.popleft()

    def drain(self) -> list[DynInst]:
        """Remove and return all entries in order (pipeline flush)."""
        entries = list(self._entries)
        self._entries.clear()
        return entries

    def pop_younger_than(self, anchor: DynInst) -> list[DynInst]:
        """Remove every entry younger than ``anchor`` (which must be in the
        buffer); returns them youngest-first (walk-back order)."""
        popped: list[DynInst] = []
        while self._entries and self._entries[-1] is not anchor:
            popped.append(self._entries.pop())
        if not self._entries:
            raise AssertionError("anchor not in ROB")
        return popped
