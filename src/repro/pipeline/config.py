"""Machine configuration (paper Table I) and register-file configurations
(paper Table III)."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.core.conventional import ConventionalRenamer
from repro.core.register_file import RegisterFileConfig
from repro.core.renamer import BaseRenamer
from repro.core.sharing import SharingRenamer
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy

#: Paper Table I, kept verbatim for the Table I bench.
TABLE_I: dict[str, dict[str, str]] = {
    "Core": {
        "ISA": "ARMv8-like toy RISC",
        "Frequency": "2.0 GHz",
        "ROB": "128 entries",
        "Issue Queue": "40 entries",
        "Decode/Dispatch width": "3",
        "Fetch Queue": "32 instructions",
        "Branch predictor": "gshare + 2K BTB, 15-cycle misprediction penalty",
    },
    "Caches": {
        "L1-D": "32 KB, 2-way, 1 cycle",
        "L1-I": "48 KB, 3-way, 1 cycle",
        "L2": "1 MB, 16-way, 12 cycles",
        "Line size": "64 bytes",
        "TLB": "48-entry fully-associative L1 TLB",
    },
    "Prefetcher": {"Type": "Stride (degree 1)"},
    "DRAM": {
        "Type": "DDR3 1600 MHz, 2 ranks/channel, 8 banks/rank, 8 KB rows",
        "Timings": "tCAS = tRCD = tRP = 13.75 ns",
    },
}

#: Paper Table III: baseline register count -> proposed bank sizes
#: (0-shadow, 1-shadow, 2-shadow, 3-shadow) at equal area.
TABLE_III: dict[int, tuple[int, int, int, int]] = {
    48: (28, 4, 4, 4),
    56: (28, 6, 6, 6),
    64: (36, 6, 6, 6),
    72: (36, 8, 8, 8),
    80: (42, 8, 8, 8),
    96: (58, 8, 8, 8),
    112: (75, 8, 8, 8),
}


def rf_config_for(baseline_regs: int, bits: int = 64) -> RegisterFileConfig:
    """Equal-area banked configuration for a baseline register count.

    Derived from the calibrated CACTI-lite area model, following the
    paper's methodology ("we adjust the number of registers in the
    register file for our renaming scheme in such a way that the total
    area becomes the same as the baseline").  The paper's own Table III
    rows are kept in :data:`TABLE_III` for the Table III experiment; they
    are *more conservative* than equal area under our calibration (see
    EXPERIMENTS.md), so the performance experiments use the area-model
    result, exactly as the paper's method prescribes.
    """
    from repro.area.equal_area import equal_area_banks  # avoid import cycle

    return RegisterFileConfig(bank_sizes=equal_area_banks(baseline_regs, bits))


@dataclass
class MachineConfig:
    """Everything the processor model needs; defaults follow Table I."""

    # widths
    fetch_width: int = 3
    rename_width: int = 3  # decode/dispatch width
    issue_width: int = 4
    commit_width: int = 3

    # structures
    rob_size: int = 128
    iq_size: int = 40
    fetch_queue: int = 32
    lq_size: int = 32
    sq_size: int = 32

    # branch handling
    branch_predictor: str = "gshare"
    predictor_table: int = 4096
    btb_entries: int = 2048
    ras_depth: int = 16
    mispredict_penalty: int = 15

    # functional units: kind -> (count, latency, pipelined)
    fu_config: dict = field(
        default_factory=lambda: {
            "alu": (3, 1, True),
            "mul": (1, 3, True),
            "div": (1, 12, False),
            "fpu": (2, 4, True),
            "fpdiv": (1, 16, False),
            "branch": (1, 1, True),
            "mem": (2, 1, True),  # latency here = address generation only
        }
    )

    # renaming scheme
    scheme: str = "conventional"  # 'conventional' | 'sharing'
    int_regs: int = 128  # baseline size (conventional) / Table III key (sharing)
    fp_regs: int = 128
    int_banks: Optional[tuple[int, ...]] = None  # explicit banks override
    fp_banks: Optional[tuple[int, ...]] = None
    counter_bits: int = 2
    type_predictor_entries: int = 512

    # precise exceptions
    exception_flush_penalty: int = 20  # pipeline flush + handler redirect
    recovery_cycles_per_entry: int = 1  # shadow-cell recover commands

    # wrong-path speculation: when set, mispredicted branches keep
    # fetching synthetic wrong-path instructions that are renamed and
    # executed speculatively, then squashed by a rename walk-back when the
    # branch resolves (shadow-cell restores under the sharing scheme).
    # When clear, fetch stalls at the misprediction (DESIGN.md section 2).
    model_wrong_path: bool = False

    # asynchronous interrupts: deliver one every N cycles (None = never).
    # Each interrupt flushes the pipeline at the commit boundary, recovers
    # precise state (shadow cells under the sharing scheme) and replays —
    # the Section IV-B "interrupts" case.
    interrupt_interval: Optional[int] = None
    interrupt_handler_cycles: int = 50  # time spent in the handler

    # memory hierarchy
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    # register-file port limits per class per cycle (None = unlimited;
    # the area model assumes 8R/4W — set 8/4 to model port contention)
    rf_read_ports: Optional[int] = None
    rf_write_ports: Optional[int] = None

    # read-port-reduction scheme on the register file (arXiv 2502.00147,
    # repro.core.read_ports): 'none' | 'bypass_filter' | 'banked_arbiter'.
    # bypass_filter exempts bypass-network operands from the rf_read_ports
    # budget; banked_arbiter arbitrates rf_read_banks banks of
    # rf_bank_read_ports reads each, charging up to rf_max_read_delay
    # extra cycles before stalling issue.
    rf_port_scheme: str = "none"
    rf_read_banks: int = 4
    rf_bank_read_ports: int = 2
    rf_max_read_delay: int = 1
    rf_bypass_depth: int = 1

    # verification of dataflow values at issue/writeback (disable for speed)
    verify_values: bool = True

    # safety valve for the cycle loop
    max_cycles: int = 50_000_000

    # ------------------------------------------------------------------ tables
    def opcode_table(self) -> dict:
        """Per-opcode decode table: Op -> (fu kind, latency, pipelined).

        Joins the static opcode metadata with this machine's functional-unit
        configuration once, so consumers (the bench harness, custom
        reporting) never re-derive latency per instruction.  Cached on the
        instance; invalidated implicitly by ``dataclasses.replace`` because
        that builds a new instance.
        """
        table = getattr(self, "_opcode_table", None)
        if table is None:
            from repro.isa.opcodes import OPCODES  # avoid import cycle

            table = {
                op: (info.fu, self.fu_config[info.fu][1],
                     self.fu_config[info.fu][2])
                for op, info in OPCODES.items()
            }
            object.__setattr__(self, "_opcode_table", table)
        return table

    def kernel_payload(self) -> dict:
        """Every config field, as plain data, for kernel fingerprinting.

        ``dataclasses.asdict`` recurses into the hierarchy config and
        copies the fu_config dict, so any field edit — including nested
        ones — changes the generated-kernel cache key.
        """
        return asdict(self)

    # ------------------------------------------------------------------ factories
    def make_renamer(self) -> BaseRenamer:
        if self.scheme == "conventional":
            return ConventionalRenamer(self.int_regs, self.fp_regs)
        if self.scheme == "early":
            from repro.core.early_release import EarlyReleaseRenamer

            return EarlyReleaseRenamer(self.int_regs, self.fp_regs)
        if self.scheme == "hinted":
            from repro.core.hinted import HintedSharingRenamer

            int_cfg = (
                RegisterFileConfig(bank_sizes=tuple(self.int_banks))
                if self.int_banks
                else rf_config_for(self.int_regs)
            )
            fp_cfg = (
                RegisterFileConfig(bank_sizes=tuple(self.fp_banks))
                if self.fp_banks
                else rf_config_for(self.fp_regs, bits=128)
            )
            return HintedSharingRenamer(
                int_cfg, fp_cfg, counter_bits=self.counter_bits,
                predictor_entries=self.type_predictor_entries,
            )
        if self.scheme == "sharing":
            int_cfg = (
                RegisterFileConfig(bank_sizes=tuple(self.int_banks))
                if self.int_banks
                else rf_config_for(self.int_regs)
            )
            fp_cfg = (
                RegisterFileConfig(bank_sizes=tuple(self.fp_banks))
                if self.fp_banks
                else rf_config_for(self.fp_regs, bits=128)
            )
            return SharingRenamer(
                int_cfg,
                fp_cfg,
                counter_bits=self.counter_bits,
                predictor_entries=self.type_predictor_entries,
            )
        raise ValueError(f"unknown scheme {self.scheme!r}")

    def make_hierarchy(self) -> MemoryHierarchy:
        return MemoryHierarchy(self.hierarchy)

    def with_scheme(self, scheme: str, **overrides) -> "MachineConfig":
        return replace(self, scheme=scheme, **overrides)
