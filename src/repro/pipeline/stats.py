"""Simulation statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

#: SimStats fields that hold component-stats objects rather than counters.
_COMPONENT_FIELDS = ("renamer_stats", "branch_stats", "predictor_stats")


@dataclass
class SimStats:
    """Counters collected by one simulation run."""

    cycles: int = 0
    committed: int = 0  # architectural instructions (micro-ops excluded)
    committed_uops: int = 0

    # stalls, classified at the rename/dispatch boundary
    rename_stall_regs: int = 0  # no free register and no reuse possible
    rename_stall_rob: int = 0
    rename_stall_iq: int = 0
    rename_stall_lsq: int = 0

    # memory behaviour
    loads: int = 0
    stores: int = 0
    store_forwards: int = 0

    # speculation / exceptions / interrupts
    exceptions: int = 0
    interrupts: int = 0
    recovery_cycles: int = 0
    wrong_path_squashed: int = 0  # wrong-path instructions walked back

    # issue activity
    issued: int = 0

    # register-file read-port schemes (repro.core.read_ports); all zero
    # when rf_port_scheme is 'none'
    rf_port_stalls: int = 0    # issue attempts denied a port grant
    rf_port_reads: int = 0     # physical read ports actually claimed
    rf_bypass_reads: int = 0   # operands satisfied from the bypass network
    rf_delayed_reads: int = 0  # instructions charged extra read latency
    rf_delay_cycles: int = 0   # total extra cycles charged by the arbiter

    # structure occupancy (accumulated every cycle)
    rob_occupancy_sum: int = 0
    iq_occupancy_sum: int = 0
    free_regs_sum: int = 0
    occupancy_samples: int = 0

    # references to component stats filled in by the processor
    renamer_stats: Optional[object] = None
    branch_stats: Optional[object] = None
    predictor_stats: Optional[object] = None
    cache_stats: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def avg_rob_occupancy(self) -> float:
        return self.rob_occupancy_sum / self.occupancy_samples \
            if self.occupancy_samples else 0.0

    @property
    def avg_iq_occupancy(self) -> float:
        return self.iq_occupancy_sum / self.occupancy_samples \
            if self.occupancy_samples else 0.0

    @property
    def avg_free_regs(self) -> float:
        return self.free_regs_sum / self.occupancy_samples \
            if self.occupancy_samples else 0.0

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        """Plain-dict snapshot: JSON-able, and much cheaper to pickle than
        the live object graph (used by the result cache and when shipping
        results back from sweep worker processes)."""
        payload = dict(vars(self))
        for name in _COMPONENT_FIELDS:
            component = payload[name]
            payload[name] = None if component is None else dict(vars(component))
        payload["cache_stats"] = {
            name: dict(vars(component))
            for name, component in self.cache_stats.items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SimStats":
        """Inverse of :meth:`to_dict`; rebuilds the component-stats
        dataclasses so properties (``ipc``, ``miss_rate``, ...) work."""
        # lazy imports: stats is a leaf module and must stay cheap to import
        from repro.core.renamer import RenameStats
        from repro.core.type_predictor import PredictorStats
        from repro.frontend.branch_predictor import BranchStats
        from repro.mem.cache import CacheStats
        from repro.mem.dram import DRAMStats
        from repro.mem.tlb import TLBStats

        component_types = {"renamer_stats": RenameStats,
                           "branch_stats": BranchStats,
                           "predictor_stats": PredictorStats}
        cache_types = {"l1i": CacheStats, "l1d": CacheStats, "l2": CacheStats,
                       "tlb": TLBStats, "dram": DRAMStats}
        data = dict(payload)
        components = {name: data.pop(name, None) for name in _COMPONENT_FIELDS}
        caches = data.pop("cache_stats", {}) or {}
        stats = cls(**data)
        for name, fields_dict in components.items():
            if fields_dict is not None:
                setattr(stats, name, component_types[name](**fields_dict))
        stats.cache_stats = {
            name: cache_types[name](**fields_dict)
            for name, fields_dict in caches.items() if name in cache_types
        }
        return stats

    @property
    def total_rename_stalls(self) -> int:
        return (
            self.rename_stall_regs
            + self.rename_stall_rob
            + self.rename_stall_iq
            + self.rename_stall_lsq
        )

    def detailed_report(self) -> str:
        """gem5-style full statistics dump."""
        lines = [self.summary(), ""]
        lines.append(f"avg ROB occupancy {self.avg_rob_occupancy:8.1f}")
        lines.append(f"avg IQ occupancy  {self.avg_iq_occupancy:8.1f}")
        lines.append(f"avg free int regs {self.avg_free_regs:8.1f}")
        lines.append(f"issued            {self.issued}")
        if self.interrupts:
            lines.append(f"interrupts        {self.interrupts}")
        if self.wrong_path_squashed:
            lines.append(f"wrong-path squashed {self.wrong_path_squashed}")

        renamer = self.renamer_stats
        if renamer is not None and renamer.dest_insts:
            lines.append("")
            lines.append(f"dest renames      {renamer.dest_insts}")
            lines.append(f"  allocations     {renamer.allocations} "
                         f"(per bank {renamer.allocations_per_bank}, "
                         f"fallbacks {renamer.fallback_allocations})")
            lines.append(f"  reuses          {renamer.reuses} "
                         f"[guaranteed {renamer.reuses_guaranteed}, "
                         f"predicted {renamer.reuses_predicted}]")
            lines.append(f"  lost reuse      no-shadow {renamer.lost_reuse_no_shadow}, "
                         f"saturated {renamer.lost_reuse_saturated}, "
                         f"not-first {renamer.lost_reuse_not_first_use}, "
                         f"predicted-no {renamer.lost_reuse_not_predicted}")
            if renamer.repairs:
                lines.append(f"  repairs         {renamer.repairs} "
                             f"({renamer.repair_uops} uops)")
            lines.append(f"  releases        {renamer.releases}, "
                         f"recoveries {renamer.recoveries} "
                         f"({renamer.recovered_map_entries} map entries)")

        branch = self.branch_stats
        if branch is not None and branch.branches:
            lines.append("")
            lines.append(f"branches          {branch.branches} "
                         f"(mispredicted {branch.mispredicted}, "
                         f"accuracy {100 * branch.accuracy:.1f}%, "
                         f"BTB misses {branch.btb_misses})")

        predictor = self.predictor_stats
        if predictor is not None and predictor.releases:
            lines.append(f"type predictor    {predictor.releases} classified "
                         f"releases: reuse-ok {predictor.reuse_correct}, "
                         f"repairs {predictor.reuse_incorrect}, "
                         f"no-reuse-ok {predictor.no_reuse_correct}, "
                         f"missed {predictor.no_reuse_incorrect}, "
                         f"unused {predictor.reuse_unused}")

        if self.cache_stats:
            lines.append("")
            for name in ("l1i", "l1d", "l2"):
                cache = self.cache_stats.get(name)
                if cache is not None and cache.accesses:
                    lines.append(
                        f"{name.upper():5s} accesses {cache.accesses:8d}  "
                        f"miss rate {100 * cache.miss_rate:5.1f}%  "
                        f"writebacks {cache.writebacks}")
            tlb = self.cache_stats.get("tlb")
            if tlb is not None and tlb.accesses:
                lines.append(f"TLB   accesses {tlb.accesses:8d}  "
                             f"miss rate {100 * tlb.miss_rate:5.1f}%")
            dram = self.cache_stats.get("dram")
            if dram is not None and dram.accesses:
                lines.append(f"DRAM  accesses {dram.accesses:8d}  "
                             f"row hits {dram.row_hits}")
        return "\n".join(lines)

    def summary(self) -> str:
        lines = [
            f"cycles            {self.cycles}",
            f"instructions      {self.committed} (+{self.committed_uops} repair uops)",
            f"IPC               {self.ipc:.4f}",
            f"rename stalls     regs={self.rename_stall_regs} rob={self.rename_stall_rob} "
            f"iq={self.rename_stall_iq} lsq={self.rename_stall_lsq}",
            f"loads/stores      {self.loads}/{self.stores} (forwards {self.store_forwards})",
            f"exceptions        {self.exceptions} (recovery cycles {self.recovery_cycles})",
        ]
        return "\n".join(lines)


# ====================================================================== counter arithmetic
def delta_counters(end, start):
    """Recursive ``end - start`` over :meth:`SimStats.to_dict` snapshots.

    Numbers subtract, dicts/lists recurse elementwise, everything else
    (None components, strings) keeps the ``end`` value.  Used by the
    sampling engine to isolate one measurement window's counters from a
    processor's cumulative statistics.
    """
    if isinstance(end, dict):
        start = start if isinstance(start, dict) else {}
        return {key: delta_counters(value, start.get(key))
                for key, value in end.items()}
    if isinstance(end, list):
        start = start if isinstance(start, list) else [0] * len(end)
        return [delta_counters(value, before)
                for value, before in zip(end, start)]
    if isinstance(end, (int, float)) and not isinstance(end, bool):
        return end - (start if isinstance(start, (int, float)) else 0)
    return end


def add_counters(a, b):
    """Recursive ``a + b`` over snapshot dicts (inverse of deltas)."""
    if isinstance(a, dict):
        b = b if isinstance(b, dict) else {}
        return {key: add_counters(value, b.get(key)) for key, value in a.items()}
    if isinstance(a, list):
        b = b if isinstance(b, list) else [0] * len(a)
        return [add_counters(value, other) for value, other in zip(a, b)]
    if isinstance(a, (int, float)) and not isinstance(a, bool):
        return a + (b if isinstance(b, (int, float)) else 0)
    return a


def scale_counters(value, ratio: float):
    """Recursively scale counters by ``ratio``; ints stay ints (rounded)."""
    if isinstance(value, dict):
        return {key: scale_counters(item, ratio) for key, item in value.items()}
    if isinstance(value, list):
        return [scale_counters(item, ratio) for item in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return round(value * ratio)
    if isinstance(value, float):
        return value * ratio
    return value


def _mean(values) -> float:
    return sum(values) / len(values) if values else 0.0


def _stderr(values) -> float:
    n = len(values)
    if n < 2:
        return 0.0
    mean = _mean(values)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return math.sqrt(variance / n)


# ====================================================================== sampled stats
@dataclass
class SampledStats:
    """Whole-stream estimate produced by interval-sampled simulation.

    ``est`` holds per-window counters scaled to the full instruction
    stream; attribute access falls through to it, so figure/report code
    written against :class:`SimStats` (``.ipc``, ``.renamer_stats``, ...)
    works unchanged.  The per-window metric lists carry the statistical
    quality of the estimate: ``*_mean``/``*_stderr``/``*_ci95`` expose a
    normal-approximation 95% confidence interval for IPC and the paper's
    key renaming metrics.
    """

    est: SimStats
    schedule: tuple  # (period, window, warmup) in instructions
    schedule_seed: int
    phase_offset: int
    windows: int
    insts_total: int
    insts_sampled: int  # committed inside measurement windows
    insts_warmup: int  # committed in detailed warmup (measured, discarded)
    insts_fast_forwarded: int  # consumed functionally between windows
    cycles_sampled: int
    window_ipc: list = field(default_factory=list)
    window_reuse_rate: list = field(default_factory=list)  # reuses / dest renames
    window_alloc_saved_rate: list = field(default_factory=list)  # reuses / committed
    window_shadow_occupancy: list = field(default_factory=list)  # shadow cells in use

    #: metric name -> per-window sample list (CI reporting)
    _METRICS = {
        "ipc": "window_ipc",
        "reuse_rate": "window_reuse_rate",
        "alloc_saved_rate": "window_alloc_saved_rate",
        "shadow_occupancy": "window_shadow_occupancy",
    }

    def __getattr__(self, name):
        # only called for attributes not found on SampledStats itself:
        # delegate the SimStats API to the scaled whole-stream estimate
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.est, name)

    # ------------------------------------------------------------------ CI
    def metric_samples(self, metric: str) -> list:
        return getattr(self, self._METRICS[metric])

    def mean(self, metric: str) -> float:
        return _mean(self.metric_samples(metric))

    def stderr(self, metric: str) -> float:
        return _stderr(self.metric_samples(metric))

    def ci95(self, metric: str) -> float:
        """Half-width of the 95% confidence interval (normal approx)."""
        return 1.96 * self.stderr(metric)

    def ci_report(self) -> dict:
        """{metric: {"mean", "stderr", "ci95"}} for every sampled metric."""
        return {
            metric: {"mean": self.mean(metric), "stderr": self.stderr(metric),
                     "ci95": self.ci95(metric)}
            for metric in self._METRICS
        }

    @property
    def detail_fraction(self) -> float:
        """Fraction of the stream simulated in detailed mode."""
        if not self.insts_total:
            return 0.0
        return (self.insts_sampled + self.insts_warmup) / self.insts_total

    def sampling_report(self) -> str:
        period, window, warmup = self.schedule
        ipc = self.mean("ipc")
        lines = [
            f"sampling          {period}:{window}:{warmup} "
            f"(seed {self.schedule_seed}, phase offset {self.phase_offset})",
            f"windows           {self.windows} "
            f"({self.insts_sampled} measured + {self.insts_warmup} warmup insts, "
            f"{self.insts_fast_forwarded} fast-forwarded, "
            f"{100 * self.detail_fraction:.1f}% detailed)",
            f"IPC estimate      {ipc:.4f} ± {self.ci95('ipc'):.4f} (95% CI)",
            f"reuse rate        {self.mean('reuse_rate'):.4f} "
            f"± {self.ci95('reuse_rate'):.4f}",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        return {
            "__sampled__": True,
            "est": self.est.to_dict(),
            "schedule": list(self.schedule),
            "schedule_seed": self.schedule_seed,
            "phase_offset": self.phase_offset,
            "windows": self.windows,
            "insts_total": self.insts_total,
            "insts_sampled": self.insts_sampled,
            "insts_warmup": self.insts_warmup,
            "insts_fast_forwarded": self.insts_fast_forwarded,
            "cycles_sampled": self.cycles_sampled,
            "window_ipc": list(self.window_ipc),
            "window_reuse_rate": list(self.window_reuse_rate),
            "window_alloc_saved_rate": list(self.window_alloc_saved_rate),
            "window_shadow_occupancy": list(self.window_shadow_occupancy),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SampledStats":
        data = dict(payload)
        data.pop("__sampled__", None)
        data["est"] = SimStats.from_dict(data["est"])
        data["schedule"] = tuple(data["schedule"])
        return cls(**data)


def stats_from_dict(payload: dict):
    """Rebuild a :class:`SimStats` or :class:`SampledStats` snapshot.

    The sampled variant is marked with ``"__sampled__": True`` in its
    :meth:`SampledStats.to_dict` payload; everything else is a plain
    :class:`SimStats` dict.  This is the single deserialization entry
    point for the result cache and the sweep worker processes.
    """
    if payload.get("__sampled__"):
        return SampledStats.from_dict(payload)
    return SimStats.from_dict(payload)
