"""Issue queue with version-tagged wakeup.

This is where the paper's scheme touches the issue logic: source and
destination tags are ``(class, physical register, version)``, so when a
shared register's new version is produced only the consumers waiting for
*that* version wake up (Section IV-A, the P1.1 / P1.2 example).  The 4
extra tag bits per entry are charged to the scheme's area overhead in
Table II.

Implementation note: wakeup is indexed (tag -> waiting entries) and the
ready list is maintained incrementally, so the per-cycle cost is
proportional to activity, not to queue size.
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Optional

from repro.core.renamer import Tag
from repro.isa.dyninst import DynInst


def _ticket_of(entry: "_Entry") -> int:
    return entry.ticket


class _Entry:
    __slots__ = ("dyn", "waiting", "ticket", "removed", "in_ready")

    def __init__(self, dyn: DynInst, waiting: Optional[set[Tag]],
                 ticket: int) -> None:
        self.dyn = dyn
        self.waiting = waiting  # source tags not yet produced (None = none)
        self.ticket = ticket
        self.removed = False
        self.in_ready = waiting is None


class IssueQueue:
    """Unified issue queue, oldest-first select.

    The ready list is maintained incrementally and only re-filtered /
    re-sorted / re-materialised when something actually changed since the
    last select — an idle or stalled cycle costs O(1), not O(ready).
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self._size = 0
        self._ticket = count()
        self._by_dyn: dict[int, _Entry] = {}
        self._by_tag: dict[Tag, list[_Entry]] = {}
        self._ready: list[_Entry] = []
        self._ready_dirty = False  # appended since the last sort
        self._ready_stale = False  # removals left dead entries in the list
        self._ready_view: Optional[list[DynInst]] = None

    def __len__(self) -> int:
        return self._size

    @property
    def free_slots(self) -> int:
        return self.size - self._size

    def insert(self, dyn: DynInst, is_ready: Callable[[Tag], bool]) -> None:
        if self._size >= self.size:
            raise AssertionError("issue queue overflow")
        # build the waiting set lazily: the common case (all sources
        # already produced) allocates nothing
        waiting: Optional[set[Tag]] = None
        for tag in dyn.src_tags:
            if not is_ready(tag):
                if waiting is None:
                    waiting = {tag}
                else:
                    waiting.add(tag)
        entry = _Entry(dyn, waiting, next(self._ticket))
        self._by_dyn[id(dyn)] = entry
        self._size += 1
        if waiting:
            by_tag = self._by_tag
            for tag in waiting:
                by_tag.setdefault(tag, []).append(entry)
        else:
            # a fresh entry holds the highest ticket yet, so appending it
            # keeps a sorted ready list sorted — no re-sort needed
            self._ready.append(entry)
            self._ready_view = None

    def wakeup(self, tag: Tag) -> None:
        """Broadcast a produced tag: wake consumers waiting on this version."""
        entries = self._by_tag.pop(tag, None)
        if not entries:
            return
        ready = self._ready
        for entry in entries:
            if entry.removed:
                continue
            entry.waiting.discard(tag)
            if not entry.waiting:
                entry.in_ready = True
                # woken entries may be older than the current tail; only
                # then does the append break sorted order
                if ready and ready[-1].ticket > entry.ticket:
                    self._ready_dirty = True
                ready.append(entry)
                self._ready_view = None

    def ready_entries(self) -> list[DynInst]:
        """Ready instructions, oldest first."""
        ready = self._ready
        if not ready:
            return ready  # empty; callers only iterate
        if self._ready_stale:
            # filtering preserves order, so no re-sort needed for removals
            ready = [entry for entry in ready if not entry.removed]
            self._ready = ready
            self._ready_stale = False
            self._ready_view = None
        if self._ready_dirty:
            ready.sort(key=_ticket_of)
            self._ready_dirty = False
            self._ready_view = None
        if self._ready_view is None:
            self._ready_view = [entry.dyn for entry in ready]
        return self._ready_view

    def remove(self, dyn: DynInst) -> None:
        entry = self._by_dyn.pop(id(dyn), None)
        if entry is None:
            raise AssertionError("instruction not in issue queue")
        entry.removed = True
        self._size -= 1
        if entry.in_ready:
            self._ready_stale = True
            self._ready_view = None

    def discard(self, dyn: DynInst) -> bool:
        """Remove ``dyn`` if present (squash); returns whether it was."""
        entry = self._by_dyn.pop(id(dyn), None)
        if entry is None:
            return False
        entry.removed = True
        self._size -= 1
        if entry.in_ready:
            self._ready_stale = True
            self._ready_view = None
        return True

    def flush(self) -> None:
        self._by_dyn.clear()
        self._by_tag.clear()
        self._ready.clear()
        self._size = 0
        self._ready_dirty = False
        self._ready_stale = False
        self._ready_view = None
