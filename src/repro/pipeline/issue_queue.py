"""Issue queue with version-tagged wakeup.

This is where the paper's scheme touches the issue logic: source and
destination tags are ``(class, physical register, version)``, so when a
shared register's new version is produced only the consumers waiting for
*that* version wake up (Section IV-A, the P1.1 / P1.2 example).  The 4
extra tag bits per entry are charged to the scheme's area overhead in
Table II.

Implementation note: wakeup is indexed (tag -> waiting entries) and the
ready list is maintained incrementally, so the per-cycle cost is
proportional to activity, not to queue size.
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Iterable

from repro.core.renamer import Tag
from repro.isa.dyninst import DynInst


class _Entry:
    __slots__ = ("dyn", "waiting", "ticket", "removed")

    def __init__(self, dyn: DynInst, waiting: set[Tag], ticket: int) -> None:
        self.dyn = dyn
        self.waiting = waiting  # source tags not yet produced
        self.ticket = ticket
        self.removed = False


class IssueQueue:
    """Unified issue queue, oldest-first select."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._size = 0
        self._ticket = count()
        self._by_dyn: dict[int, _Entry] = {}
        self._by_tag: dict[Tag, list[_Entry]] = {}
        self._ready: list[_Entry] = []

    def __len__(self) -> int:
        return self._size

    @property
    def free_slots(self) -> int:
        return self.size - self._size

    def insert(self, dyn: DynInst, is_ready: Callable[[Tag], bool]) -> None:
        if self._size >= self.size:
            raise AssertionError("issue queue overflow")
        waiting = {tag for tag in dyn.src_tags if not is_ready(tag)}
        entry = _Entry(dyn, waiting, next(self._ticket))
        self._by_dyn[id(dyn)] = entry
        self._size += 1
        if waiting:
            for tag in waiting:
                self._by_tag.setdefault(tag, []).append(entry)
        else:
            self._ready.append(entry)

    def wakeup(self, tag: Tag) -> None:
        """Broadcast a produced tag: wake consumers waiting on this version."""
        entries = self._by_tag.pop(tag, None)
        if not entries:
            return
        for entry in entries:
            if entry.removed:
                continue
            entry.waiting.discard(tag)
            if not entry.waiting:
                self._ready.append(entry)

    def ready_entries(self) -> list[DynInst]:
        """Ready instructions, oldest first."""
        if not self._ready:
            return []
        live = [entry for entry in self._ready if not entry.removed]
        live.sort(key=lambda entry: entry.ticket)
        self._ready = live
        return [entry.dyn for entry in live]

    def remove(self, dyn: DynInst) -> None:
        entry = self._by_dyn.pop(id(dyn), None)
        if entry is None:
            raise AssertionError("instruction not in issue queue")
        entry.removed = True
        self._size -= 1

    def discard(self, dyn: DynInst) -> bool:
        """Remove ``dyn`` if present (squash); returns whether it was."""
        entry = self._by_dyn.pop(id(dyn), None)
        if entry is None:
            return False
        entry.removed = True
        self._size -= 1
        return True

    def flush(self) -> None:
        self._by_dyn.clear()
        self._by_tag.clear()
        self._ready.clear()
        self._size = 0
