"""Cycle-level out-of-order pipeline (the gem5-O3 stand-in)."""

from repro.pipeline.config import MachineConfig, TABLE_I, TABLE_III, rf_config_for
from repro.pipeline.stats import SimStats
from repro.pipeline.processor import Processor, simulate

__all__ = [
    "MachineConfig",
    "TABLE_I",
    "TABLE_III",
    "rf_config_for",
    "SimStats",
    "Processor",
    "simulate",
]
