#!/usr/bin/env python3
"""GMM acoustic scoring (one of the paper's cognitive workloads).

Runs the GMM log-likelihood kernel end-to-end through the out-of-order
pipeline under both renaming schemes across register-file sizes, verifies
the computed scores against the pure-Python reference, and prints the
speedup curve — a miniature of the paper's Figure 10c.

Run:  python examples/gmm_scoring.py
"""

from repro import MachineConfig
from repro.frontend.fetch import IterSource
from repro.isa.executor import FunctionalExecutor, run_to_completion
from repro.pipeline.processor import Processor
from repro.workloads.kernels import gmm_kernel


def run(kernel, scheme: str, fp_regs: int):
    config = MachineConfig(scheme=scheme, int_regs=128, fp_regs=fp_regs)
    executor = FunctionalExecutor(kernel.program)
    processor = Processor(config, IterSource(executor.run(2_000_000)))
    stats = processor.run()
    return processor, stats


def main() -> None:
    kernel = gmm_kernel(n_components=8, dim=16)
    reference = run_to_completion(kernel.program, 2_000_000)
    expected = kernel.expected(reference.mem)
    print(f"GMM: 8 components x 16 dims, best score = {expected['best']:.4f}\n")

    print(f"{'fp regs':>8s} {'baseline IPC':>13s} {'sharing IPC':>12s} {'speedup':>8s}")
    for fp_regs in (48, 56, 64, 80, 96):
        _, base = run(kernel, "conventional", fp_regs)
        proc, prop = run(kernel, "sharing", fp_regs)

        # verify architectural state against the in-order reference
        int_regs, fp_state = proc.architectural_state()
        assert int_regs == reference.int_regs, "int state mismatch!"
        assert fp_state == reference.fp_regs, "fp state mismatch!"

        print(f"{fp_regs:8d} {base.ipc:13.3f} {prop.ipc:12.3f} "
              f"{100 * (prop.ipc / base.ipc - 1):+7.1f}%")

    print("\nThe accumulation chains of the scoring loop are single-use")
    print("chains, so the sharing renamer collapses them onto shared")
    print("physical registers; the benefit shrinks as the fp file grows.")


if __name__ == "__main__":
    main()
