#!/usr/bin/env python3
"""Scheme showdown: all four renaming schemes on directed microbenchmarks.

Runs the conventional baseline, the paper's sharing scheme, the
compiler-hinted variant and the early-release comparator on each
microbenchmark, printing IPC and reuse behaviour — the schemes' best and
worst cases side by side.

Run:  python examples/scheme_showdown.py
"""

from repro import MachineConfig, simulate
from repro.workloads import BENCHMARKS, SyntheticWorkload
from repro.workloads.microbench import MICROBENCHES, build

SCHEMES = ("conventional", "sharing", "early")
SIZE = 44


def run_micro(name: str, scheme: str):
    config = MachineConfig(scheme=scheme, int_regs=SIZE, fp_regs=48,
                           verify_values=False)
    return simulate(config, build(name), program_budget=2_000_000)


def main() -> None:
    print(f"Integer register file: {SIZE} entries (starved on purpose)\n")
    header = f"{'microbenchmark':18s}" + "".join(f"{s:>14s}" for s in SCHEMES)
    print(header + f"{'reuse%':>8s}")
    print("-" * len(header) + "--------")
    for name in sorted(MICROBENCHES):
        ipcs = {}
        reuse = 0.0
        for scheme in SCHEMES:
            stats = run_micro(name, scheme)
            ipcs[scheme] = stats.ipc
            if scheme == "sharing":
                reuse = stats.renamer_stats.reuse_fraction
        row = f"{name:18s}" + "".join(f"{ipcs[s]:14.3f}" for s in SCHEMES)
        print(row + f"{100 * reuse:7.1f}%")

    print("\nchain_ladder / producer_consumer: single-use values -> the")
    print("sharing scheme reuses registers and closes in on early release")
    print("(which, unlike sharing, cannot take precise exceptions at all).")
    print("register_hog / pointer_chase: nothing to reuse -> all schemes tie.")

    print("\nOn a SPEC-like trace (hmmer, fp side ample):")
    for scheme in SCHEMES:
        workload = SyntheticWorkload(BENCHMARKS["hmmer"], total_insts=8000)
        config = MachineConfig(scheme=scheme, int_regs=SIZE, fp_regs=128,
                               verify_values=False)
        stats = simulate(config, iter(workload))
        extra = ""
        if scheme == "sharing":
            extra = (f"  ({stats.renamer_stats.reuses} reuses, "
                     f"{stats.renamer_stats.repairs} repairs)")
        print(f"  {scheme:14s} IPC {stats.ipc:.3f}{extra}")


if __name__ == "__main__":
    main()
