#!/usr/bin/env python3
"""SPEC-style workload study: motivation stats + equal-area speedups.

Reproduces, for a handful of benchmarks, the paper's motivation analysis
(Figures 1-3: how many values are single-use, how long the reuse chains
are) and then the equal-area performance comparison of Figure 10.

Run:  python examples/spec_study.py [benchmark ...]
"""

import sys

from repro import MachineConfig, simulate
from repro.analysis import analyze_chains, analyze_stream
from repro.harness.runner import class_sizes
from repro.workloads import BENCHMARKS, SyntheticWorkload

DEFAULT = ["gcc", "mcf", "bwaves", "lbm", "jpeg", "gmm"]


def study(name: str, insts: int = 10_000) -> None:
    profile = BENCHMARKS[name]
    stream = list(SyntheticWorkload(profile, total_insts=insts))

    consumers = analyze_stream(iter(stream))
    chains = analyze_chains(iter(stream))
    series = chains.figure3_series()

    print(f"\n=== {name} ({profile.suite}) ===")
    print(f"  single-consumer values (Fig 2 'one'):     "
          f"{100 * consumers.single_use_value_fraction:5.1f}%")
    print(f"  single-consumer instructions (Fig 1):     "
          f"{100 * consumers.single_consumer_inst_fraction:5.1f}% "
          f"(redefine-same {100 * consumers.redefine_same_fraction:.1f}%, "
          f"other {100 * consumers.redefine_other_fraction:.1f}%)")
    print(f"  reuse-chain buckets (Fig 3):              "
          f"one {100 * series['one']:.1f}%  two {100 * series['two']:.1f}%  "
          f"three {100 * series['three']:.1f}%  more {100 * series['more']:.1f}%")

    print(f"  equal-area speedups (Fig 10):             ", end="")
    for size in (48, 64, 96):
        int_regs, fp_regs = class_sizes(profile, size)
        results = {}
        for scheme in ("conventional", "sharing"):
            cfg = MachineConfig(scheme=scheme, int_regs=int_regs,
                                fp_regs=fp_regs, verify_values=False)
            results[scheme] = simulate(
                cfg, iter(SyntheticWorkload(profile, total_insts=insts)))
        speedup = results["sharing"].ipc / results["conventional"].ipc - 1
        print(f"RF{size}: {100 * speedup:+5.1f}%  ", end="")
    print()


def main() -> None:
    names = sys.argv[1:] or DEFAULT
    for name in names:
        if name not in BENCHMARKS:
            print(f"unknown benchmark {name!r}; available: "
                  f"{', '.join(sorted(BENCHMARKS))}")
            return
        study(name)


if __name__ == "__main__":
    main()
