#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

This drives the same harness the benchmark suite uses.  By default it runs
at the quick scale (representative benchmark subsets, short runs, a few
minutes); set REPRO_SCALE=full for the full benchmark lists and longer
simulations.

Run:  python examples/reproduce_paper.py [fig1|...|headline] [--export results.json]

``--export`` additionally writes every generated result as JSON
(`repro.harness.export`) for plotting or regression tracking.
"""

import sys

from repro.harness import (
    Scale,
    figure1,
    figure2,
    figure3,
    figure9,
    figure10,
    figure11,
    figure12,
    headline,
    table1,
    table2_result,
    table3,
)


def main() -> None:
    scale = Scale.from_env()
    args = list(sys.argv[1:])
    export_path = None
    if "--export" in args:
        position = args.index("--export")
        export_path = args[position + 1]
        del args[position:position + 2]
    wanted = set(args) or {
        "tables", "fig1", "fig2", "fig3", "fig9", "fig10", "fig11", "fig12",
        "headline",
    }
    exported = {}

    if "tables" in wanted:
        print(table1(), "\n")
        table2 = table2_result()
        print(table2.render(), "\n")
        table3_result = table3()
        print(table3_result.render(), "\n")
        exported["table2"] = table2
        exported["table3"] = table3_result
    for key, fn in (("fig1", figure1), ("fig2", figure2), ("fig3", figure3),
                    ("fig9", figure9), ("fig11", figure11),
                    ("fig12", figure12)):
        if key in wanted:
            result = fn(scale)
            print(result.render(), "\n")
            exported[key] = result
    if "fig10" in wanted:
        for suite in ("specfp", "specint", "media+cog"):
            result = figure10(suite, scale)
            print(result.render(), "\n")
            exported[f"fig10_{suite}"] = result
    if "headline" in wanted:
        result = headline(scale)
        print(result.render())
        exported["headline"] = result

    if export_path:
        from repro.harness.export import export_results

        export_results(exported, export_path)
        print(f"\nexported {len(exported)} results to {export_path}")


if __name__ == "__main__":
    main()
