#!/usr/bin/env python3
"""Precise exceptions with shared physical registers (paper Section IV-B).

Recreates the paper's running example: a load page-faults while younger
instructions in a reuse chain have already overwritten the shared physical
register.  The shadow cells recover the old values at the exception, the
pipeline replays, and the final architectural state matches the in-order
reference exactly.

Run:  python examples/precise_exceptions.py
"""

from repro import MachineConfig, assemble
from repro.frontend.fetch import IterSource
from repro.isa import FirstTouchFaults
from repro.isa.executor import FunctionalExecutor, run_to_completion
from repro.pipeline.processor import Processor

PROGRAM = """
# I2-style faulting load with a younger reuse chain (paper Figure 4 + IV-B)
.data
v: .word 17

.text
main:   movi x1, v
        movi x2, 1
        ld   x3, 0(x1)     # page-faults on first touch
        add  x2, x2, x2    # x2 chain: versions share one physical register
        add  x2, x2, x2
        add  x2, x2, x2    # x2 = 8
        add  x4, x3, x2    # needs the faulted load's value: x4 = 25
        halt
"""


def run(scheme: str):
    program = assemble(PROGRAM)
    faults = FirstTouchFaults()
    config = MachineConfig(scheme=scheme, int_regs=48, fp_regs=48)
    executor = FunctionalExecutor(program, fault_model=faults)
    processor = Processor(config, IterSource(executor.run(10_000)),
                          fault_model=faults)
    stats = processor.run()
    return processor, stats


def main() -> None:
    reference = run_to_completion(assemble(PROGRAM))
    print("in-order reference: x2=%d x3=%d x4=%d\n"
          % (reference.int_regs[2], reference.int_regs[3], reference.int_regs[4]))

    for scheme in ("conventional", "sharing"):
        processor, stats = run(scheme)
        int_regs, _ = processor.architectural_state()
        ok = int_regs == reference.int_regs
        renamer = stats.renamer_stats
        print(f"{scheme}:")
        print(f"  exceptions taken:        {stats.exceptions}")
        print(f"  recovery cycles charged: {stats.recovery_cycles}")
        print(f"  map entries recovered:   {renamer.recovered_map_entries}")
        print(f"  register reuses:         {renamer.reuses}")
        print(f"  precise state restored:  {'YES' if ok else 'NO'}"
              f"  (x2={int_regs[2]} x3={int_regs[3]} x4={int_regs[4]})")
        print()

    print("Under the sharing scheme the x2 chain overwrote its register")
    print("three times before the load's fault was taken; the shadow-cell")
    print("recovery walked the map-table diff and restored the committed")
    print("versions, so the replay observes precise state.")


if __name__ == "__main__":
    main()
