#!/usr/bin/env python3
"""Quickstart: run one program under both renaming schemes.

Assembles a small kernel in the toy ISA, executes it on the cycle-level
out-of-order core with (a) conventional merged-RF renaming and (b) the
paper's physical-register-sharing renaming at equal area, and prints the
performance and reuse statistics.

Run:  python examples/quickstart.py
"""

from repro import MachineConfig, assemble, simulate

PROGRAM = """
# dot product with a scaling chain: the r1-style single-use chains the
# paper exploits (each fmul/fadd result has exactly one consumer)
.data
a:   .word 1.0 2.0 3.0 4.0 5.0 6.0 7.0 8.0
b:   .word 0.5 1.5 2.5 3.5 4.5 5.5 6.5 7.5
out: .zero 1

.text
main:   movi x1, a
        movi x2, b
        movi x3, 8          # elements
        fli  f1, 0.0        # accumulator
loop:   fld  f2, 0(x1)
        fld  f3, 0(x2)
        fmul f4, f2, f3     # single consumer: the fadd below
        fadd f1, f1, f4
        addi x1, x1, 8
        addi x2, x2, 8
        subi x3, x3, 1
        bnez x3, loop
        fli  f5, 0.25
        fmul f1, f1, f5     # guaranteed reuse: redefines f1
        movi x4, out
        fst  f1, 0(x4)
        halt
"""


def main() -> None:
    program = assemble(PROGRAM)

    print(f"{'scheme':14s} {'IPC':>6s} {'cycles':>7s} {'reuses':>7s} "
          f"{'allocs':>7s} {'reuse%':>7s}")
    for scheme in ("conventional", "sharing"):
        config = MachineConfig(scheme=scheme, int_regs=48, fp_regs=48)
        stats = simulate(config, program)
        renamer = stats.renamer_stats
        print(f"{scheme:14s} {stats.ipc:6.3f} {stats.cycles:7d} "
              f"{renamer.reuses:7d} {renamer.allocations:7d} "
              f"{100 * renamer.reuse_fraction:6.1f}%")

    print("\nWith the sharing scheme, chained single-use values (the fmul")
    print("feeding the fadd, and the f1 accumulator chain) share physical")
    print("registers instead of allocating fresh ones.")


if __name__ == "__main__":
    main()
