#!/usr/bin/env python3
"""Pipeline visualiser: watch physical register sharing happen.

Runs a short chain-heavy kernel with trace collection and prints
(a) the stage-timeline table, (b) an ASCII Gantt chart, (c) the reuse
annotations showing which instructions shared a physical register, and
(d) the register-lifetime summary that motivates the whole paper.

Run:  python examples/pipeline_visualizer.py [conventional|sharing]
"""

import sys

from repro import MachineConfig, assemble
from repro.analysis import analyze_lifetimes
from repro.frontend.fetch import IterSource
from repro.isa.executor import FunctionalExecutor
from repro.pipeline.processor import Processor
from repro.pipeline.trace import reuse_annotations, trace_gantt, trace_table

PROGRAM = """
# Figure 4's shape: a chain of single-use redefinitions of x1
main: movi x2, 3
      movi x3, 4
      movi x4, 5
      add  x1, x2, x3     # I1
      ld   x5, 0(x6)      # I2 (x6 = 0: loads address 0)
      mul  x2, x5, x4     # I3
      add  x1, x1, x4     # I4: reuses I1's register (guaranteed)
      mul  x1, x1, x1     # I5: version 2
      mul  x1, x1, x5     # I6: version 3
      add  x7, x1, x2     # I7
      sub  x2, x7, x1     # I8
      halt
"""


def main() -> None:
    scheme = sys.argv[1] if len(sys.argv) > 1 else "sharing"
    program = assemble(PROGRAM)
    config = MachineConfig(scheme=scheme, int_regs=48, fp_regs=48)
    executor = FunctionalExecutor(program)
    processor = Processor(config, IterSource(executor.run(10_000)),
                          keep_trace=True)
    stats = processor.run()

    print(f"=== {scheme} scheme: {stats.committed} instructions, "
          f"{stats.cycles} cycles ===\n")
    print(trace_table(processor.trace))
    print("\n--- pipeline occupancy (F fetch, R rename, I issue, "
          "W writeback, C commit) ---")
    print(trace_gantt(processor.trace))
    print("\n--- register reuse ---")
    print(reuse_annotations(processor.trace))

    analysis = analyze_lifetimes(processor.trace)
    if analysis.lifetimes:
        print(f"\n--- lifetimes: mean dead interval "
              f"{analysis.mean_dead_interval:.1f} cycles "
              f"({100 * analysis.dead_fraction:.0f}% of live time) ---")
    renamer = stats.renamer_stats
    print(f"\nallocations: {renamer.allocations}, reuses: {renamer.reuses} "
          f"(run with the other scheme to compare)")


if __name__ == "__main__":
    main()
