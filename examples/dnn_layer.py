#!/usr/bin/env python3
"""DNN layer inference (the paper's second cognitive workload).

Runs a fully-connected layer with ReLU through the pipeline and shows how
the register-type predictor learns the layer's reuse behaviour: the MAC
chain's values are single-use, so their producers migrate into shadow-cell
banks and get reused.

Run:  python examples/dnn_layer.py
"""

from repro import MachineConfig
from repro.frontend.fetch import IterSource
from repro.isa.executor import FunctionalExecutor, run_to_completion
from repro.pipeline.processor import Processor
from repro.workloads.kernels import dnn_kernel


def main() -> None:
    kernel = dnn_kernel(in_dim=24, out_dim=12)
    reference = run_to_completion(kernel.program, 2_000_000)
    expected = kernel.expected(reference.mem)
    active = sum(1 for v in expected["y"] if v > 0)
    print(f"DNN layer: 24 -> 12, {active}/12 neurons active after ReLU\n")

    config = MachineConfig(scheme="sharing", int_regs=64, fp_regs=64)
    executor = FunctionalExecutor(kernel.program)
    processor = Processor(config, IterSource(executor.run(2_000_000)))
    stats = processor.run()

    int_regs, fp_regs = processor.architectural_state()
    assert fp_regs == reference.fp_regs and int_regs == reference.int_regs

    renamer = stats.renamer_stats
    predictor = stats.predictor_stats
    print(f"committed instructions:  {stats.committed}")
    print(f"IPC:                     {stats.ipc:.3f}")
    print(f"register reuses:         {renamer.reuses} "
          f"({100 * renamer.reuse_fraction:.1f}% of destination renames)")
    print(f"  guaranteed (chains):   {renamer.reuses_guaranteed}")
    print(f"  predicted single-use:  {renamer.reuses_predicted}")
    print(f"allocations per bank:    {renamer.allocations_per_bank}")
    print(f"single-use mispredicts:  {renamer.repairs} "
          f"({renamer.repair_uops} repair micro-ops)")
    print(f"predictor releases:      {predictor.releases} "
          f"(exact hits {predictor.exact_hits})")

    print("\nBank 0 holds multi-use values; banks 1-3 fill with the MAC")
    print("chain's single-use values as the type predictor learns the")
    print("layer's PCs — that is Figure 7's mechanism at work.")


if __name__ == "__main__":
    main()
