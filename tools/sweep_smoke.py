#!/usr/bin/env python
"""CI smoke test for the sweep data plane.

Drives a small figure grid through every data-plane configuration and
asserts the determinism contract end to end:

* serial (jobs=1), parallel with the full data plane (binary codec +
  shared-memory broadcast + affinity scheduling) and parallel with the
  legacy path (gzip JSON-lines, no broadcast, FIFO dispatch) all produce
  bit-identical per-point stats;
* the shared-memory broadcast actually engages (one segment per distinct
  workload) and leaves nothing behind after the sweep;
* the binary trace cache is populated cold and served warm.

Writes a small bench JSON (decode + grid timings, for the CI artifact)
to the path given as argv[1], if any.  Exits non-zero with a diagnostic
on any violation.
"""

import json
import os
import pathlib
import sys
import tempfile
import time

try:
    import repro  # noqa: F401  (installed package)
except ImportError:  # fall back to a source checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import repro.harness.parallel as parallel_mod
from repro.harness.bench_sweep import bench_decode
from repro.harness.cache import TraceCache, reset_trace_memo
from repro.harness.parallel import SweepPoint, WorkloadBroadcast, run_points
from repro.workloads.profiles import BENCHMARKS


def _grid() -> list[SweepPoint]:
    return [SweepPoint(BENCHMARKS[name], scheme, size, 1_500, 1)
            for name in ("gsm", "adpcm")
            for scheme in ("sharing", "conventional")
            for size in (48, 96)]


def _run(points, jobs, trace_dir, fmt, shm, affinity):
    env = {"REPRO_TRACE_DIR": str(trace_dir), "REPRO_TRACE_FORMAT": fmt,
           "REPRO_NO_SHM": "" if shm else "1",
           "REPRO_NO_AFFINITY": "" if affinity else "1"}
    saved = {key: os.environ.get(key) for key in env}
    try:
        for key, value in env.items():
            if value:
                os.environ[key] = value
            else:
                os.environ.pop(key, None)
        reset_trace_memo()
        start = time.perf_counter()
        results = run_points(points, jobs=jobs)
        wall = time.perf_counter() - start
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    failures = [r for r in results if not r.ok]
    if failures:
        raise RuntimeError(f"point failed: {failures[0].error}")
    return wall, [r.stats.to_dict() for r in results]


def main() -> int:
    points = _grid()
    workloads = {(p.profile.name, p.insts, p.seed) for p in points}

    # observe the broadcast engaging without changing its behaviour
    published: list[int] = []
    original_publish = WorkloadBroadcast.publish

    def spying_publish(self, pts, pending):
        original_publish(self, pts, pending)
        published.append(len(self._segments))

    WorkloadBroadcast.publish = spying_publish
    try:
        with tempfile.TemporaryDirectory(prefix="repro-sweep-smoke-") as tmp:
            serial_wall, serial = _run(points, 1, tmp + "/s", "binary",
                                       shm=False, affinity=False)
            plane_wall, plane = _run(points, 2, tmp + "/p", "binary",
                                     shm=True, affinity=True)
            legacy_wall, legacy = _run(points, 2, tmp + "/l", "jsonl",
                                       shm=False, affinity=False)

            if not (serial == plane == legacy):
                print("FAIL: serial / data-plane / legacy results diverge")
                return 1
            # publish fires once per multi-process run: the data-plane
            # run broadcasts one segment per workload, the legacy run
            # (shm disabled) correctly broadcasts none
            if published != [len(workloads), 0]:
                print(f"FAIL: broadcast published {published} segments "
                      f"across runs, expected [{len(workloads)}, 0]")
                return 1
            if parallel_mod._SHM_WORKLOADS:
                print(f"FAIL: shared-memory segments leaked: "
                      f"{parallel_mod._SHM_WORKLOADS}")
                return 1

            cache = TraceCache(tmp + "/p", fingerprint=None)
            if len(cache) != len(workloads):
                print(f"FAIL: trace cache holds {len(cache)} entries, "
                      f"expected {len(workloads)}")
                return 1
    finally:
        WorkloadBroadcast.publish = original_publish

    decode = bench_decode(insts=2_000, reps=2)
    report = {
        "points": len(points),
        "workloads": len(workloads),
        "serial_seconds": round(serial_wall, 3),
        "dataplane_seconds": round(plane_wall, 3),
        "legacy_seconds": round(legacy_wall, 3),
        "decode": decode,
        "identical": True,
    }
    if len(sys.argv) > 1:
        pathlib.Path(sys.argv[1]).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"sweep smoke OK: {len(points)} points bit-identical across "
          f"serial, 2-job data plane (shm broadcast: {published[0]} "
          f"segments, 0 leaked) and 2-job legacy jsonl; binary decode "
          f"{decode['speedup_per_pass']:.1f}x per pass")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
