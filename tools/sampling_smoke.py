#!/usr/bin/env python
"""CI smoke test for the interval-sampling engine + trace cache.

Runs a tiny sampled sweep twice against throwaway cache directories and
asserts that

* every point returns a SampledStats estimate with populated confidence
  intervals (windows, per-window IPC samples, nonzero stderr),
* sampled results are deterministic: the warm run is served entirely
  from the result cache and reproduces the cold run bit-for-bit,
* sampled and exact executions of the same grid never share cache keys,
* the pregenerated-trace cache engaged (cold workers decoded traces
  from disk rather than re-running the generator).

Writes a JSON artifact (point labels, IPC estimates, CI widths, cache
counters) for CI upload; exits non-zero with a diagnostic on violation.
"""

import json
import os
import pathlib
import sys
import tempfile

try:
    import repro  # noqa: F401  (installed package)
except ImportError:  # fall back to a source checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

SPEC = "1000:150:80"


def build_points(sampling):
    from repro.harness.parallel import SweepPoint
    from repro.workloads.profiles import BENCHMARKS

    return [SweepPoint(profile=BENCHMARKS[name], scheme=scheme, size=48,
                       insts=4_000, seed=1, sampling=sampling)
            for name in ("gsm", "adpcm")
            for scheme in ("conventional", "sharing")]


def main() -> int:
    out_path = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                            else "sampling-smoke.json")

    with tempfile.TemporaryDirectory(prefix="repro-sampling-smoke-") as tmp:
        os.environ["REPRO_TRACE_DIR"] = str(pathlib.Path(tmp) / "traces")
        from repro.harness.cache import ResultCache, TraceCache
        from repro.harness.parallel import run_points
        from repro.pipeline.stats import SampledStats

        points = build_points(SPEC)

        cold_cache = ResultCache(pathlib.Path(tmp) / "results")
        cold = run_points(points, jobs=1, cache=cold_cache)
        if cold_cache.hits != 0 or cold_cache.misses != len(points):
            print(f"FAIL: cold run expected 0 hits / {len(points)} misses, "
                  f"got {cold_cache.hits} / {cold_cache.misses}")
            return 1

        for result in cold:
            stats = result.stats
            if not result.ok or not isinstance(stats, SampledStats):
                print(f"FAIL: {result.point.label()}: not a sampled result "
                      f"({result.error})")
                return 1
            if stats.windows < 2 or len(stats.window_ipc) != stats.windows:
                print(f"FAIL: {result.point.label()}: degenerate window set "
                      f"({stats.windows} windows)")
                return 1
            if not (stats.ipc > 0.0 and stats.ci95("ipc") > 0.0):
                print(f"FAIL: {result.point.label()}: empty CI "
                      f"(ipc={stats.ipc}, ci95={stats.ci95('ipc')})")
                return 1

        warm_cache = ResultCache(pathlib.Path(tmp) / "results")
        warm = run_points(points, jobs=1, cache=warm_cache)
        if warm_cache.hits != len(points) or warm_cache.misses != 0:
            print(f"FAIL: warm run expected {len(points)} hits / 0 misses, "
                  f"got {warm_cache.hits} / {warm_cache.misses}")
            return 1
        for c, w in zip(cold, warm):
            if c.stats.to_dict() != w.stats.to_dict():
                print(f"FAIL: {c.point.label()}: cached result diverges")
                return 1

        # sampled and exact runs of the same grid must never collide
        keys = ResultCache(pathlib.Path(tmp) / "results")
        exact_keys = {keys.key_for_point(p) for p in build_points(None)}
        sampled_keys = {keys.key_for_point(p) for p in points}
        if exact_keys & sampled_keys:
            print("FAIL: sampled and exact sweep points share cache keys")
            return 1

        traces = TraceCache()
        if len(traces) == 0:
            print("FAIL: trace cache never populated — workers re-ran "
                  "the generator")
            return 1

        artifact = {
            "spec": SPEC,
            "points": [
                {"label": r.point.label(),
                 "ipc": round(r.stats.ipc, 4),
                 "ipc_ci95": round(r.stats.ci95("ipc"), 4),
                 "reuse_ci95": round(r.stats.ci95("reuse_rate"), 4),
                 "windows": r.stats.windows,
                 "detail_fraction": round(r.stats.detail_fraction, 4)}
                for r in cold
            ],
            "result_cache": {"cold_misses": cold_cache.misses,
                             "warm_hits": warm_cache.hits},
            "trace_cache_entries": len(traces),
        }
    out_path.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"sampling smoke OK: {len(points)} sampled points, warm run served "
          f"{warm_cache.hits}/{len(points)} from cache, CIs populated, "
          f"{artifact['trace_cache_entries']} trace(s) cached; "
          f"artifact at {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
