#!/usr/bin/env python
"""CI smoke test for the fault-injection campaign + resilient sweep fleet.

Two independent gates:

* **Campaign gate** — a seeded 200-injection campaign across the
  conventional, sharing and early-release schemes must classify every
  injection, land every outcome inside its kind's expected set, and
  report zero silent data corruption (an injection that completes with a
  commit stream differing from the fault-free reference).

* **Resume gate** — a journaled sweep is started in a child process and
  SIGKILLed mid-flight; re-running with the same journal must re-simulate
  only the points the journal does not hold, and the resumed results must
  be bit-identical to an uninterrupted serial run.

Writes a JSON artifact (outcome counts, resume accounting) for CI upload;
exits non-zero with a diagnostic on violation.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

try:
    import repro  # noqa: F401  (installed package)
except ImportError:  # fall back to a source checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

INJECTIONS = 200
CAMPAIGN_SEED = 0

#: sweep grid for the SIGKILL/resume gate — big enough that the child is
#: reliably mid-flight when killed, small enough to finish quickly
RESUME_POINTS = 6
RESUME_INSTS = 8_000

_CHILD_SCRIPT = """\
import sys
sys.path.insert(0, {src!r})
from repro.harness.parallel import SweepJournal, SweepPoint, run_points
from repro.workloads.profiles import BENCHMARKS

points = [SweepPoint(profile=BENCHMARKS["gsm"], scheme="conventional",
                     size=48, insts={insts}, seed=seed + 1)
          for seed in range({count})]
run_points(points, jobs=1, journal=SweepJournal({journal!r}))
"""


def run_campaign_gate(artifact: dict) -> int:
    from repro.faults import run_campaign

    started = time.monotonic()
    report = run_campaign(injections=INJECTIONS, seed=CAMPAIGN_SEED)
    elapsed = time.monotonic() - started

    if report.classified != INJECTIONS:
        print(f"FAIL: {report.classified}/{INJECTIONS} injections classified")
        return 1
    if report.total("silent"):
        print(f"FAIL: {report.total('silent')} silent-data-corruption "
              f"outcome(s) — the checkers let corrupted state commit")
        return 1
    if report.total("error"):
        print(f"FAIL: {report.total('error')} injection(s) crashed the "
              f"harness outside any checker")
        return 1
    if not report.clean:
        print(f"FAIL: {len(report.unexpected)} injection(s) outside their "
              f"expected outcome set "
              f"({len(report.reproducers)} shrunk reproducer(s)):")
        for raw in report.unexpected[:5]:
            print(f"  {raw['spec']['kind']}/{raw['spec']['scheme']} "
                  f"-> {raw['outcome']}")
        return 1

    artifact["campaign"] = {
        "seed": CAMPAIGN_SEED,
        "injections": INJECTIONS,
        "seconds": round(elapsed, 2),
        "counts": report.counts,
        "clean": report.clean,
    }
    for line in report.summary_lines():
        print(line)
    return 0


def run_resume_gate(tmp: pathlib.Path, artifact: dict) -> int:
    from repro.harness import parallel
    from repro.harness.parallel import SweepJournal, SweepPoint, run_points
    from repro.workloads.profiles import BENCHMARKS

    journal_path = tmp / "resume.jsonl"
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    script = _CHILD_SCRIPT.format(src=src, insts=RESUME_INSTS,
                                  count=RESUME_POINTS,
                                  journal=str(journal_path))
    env = dict(os.environ)
    child = subprocess.Popen([sys.executable, "-c", script], env=env,
                             stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL)

    # wait until the child has journaled some — but not all — points,
    # then SIGKILL it mid-sweep (no cleanup, no atexit, nothing)
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if journal_path.exists() and \
                0 < len(SweepJournal(journal_path)) < RESUME_POINTS:
            break
        if child.poll() is not None:
            break
        time.sleep(0.02)
    if child.poll() is None:
        child.send_signal(signal.SIGKILL)
        child.wait()

    journaled = len(SweepJournal(journal_path))
    if not 0 < journaled < RESUME_POINTS:
        print(f"FAIL: could not interrupt the child mid-sweep "
              f"({journaled}/{RESUME_POINTS} points journaled — "
              f"tune RESUME_INSTS)")
        return 1

    points = [SweepPoint(profile=BENCHMARKS["gsm"], scheme="conventional",
                         size=48, insts=RESUME_INSTS, seed=seed + 1)
              for seed in range(RESUME_POINTS)]

    simulated = []
    original = parallel._POINT_RUNNER

    def counting(point):
        simulated.append(point.seed)
        return original(point)

    parallel._POINT_RUNNER = counting
    try:
        resumed = run_points(points, jobs=1,
                             journal=SweepJournal(journal_path))
    finally:
        parallel._POINT_RUNNER = original

    if len(simulated) != RESUME_POINTS - journaled:
        print(f"FAIL: resume re-simulated {len(simulated)} point(s), "
              f"expected {RESUME_POINTS - journaled} "
              f"({journaled} already journaled)")
        return 1
    served = sum(1 for r in resumed if r.journaled)
    if served != journaled:
        print(f"FAIL: resume served {served} point(s) from the journal, "
              f"expected {journaled}")
        return 1

    # the resumed sweep must be bit-identical to an uninterrupted run
    baseline = run_points(points, jobs=1)
    for b, r in zip(baseline, resumed):
        if not (b.ok and r.ok) or b.stats.to_dict() != r.stats.to_dict():
            print(f"FAIL: {r.point.label()}: resumed result diverges from "
                  f"the uninterrupted run")
            return 1

    artifact["resume"] = {
        "points": RESUME_POINTS,
        "journaled_at_kill": journaled,
        "resimulated": len(simulated),
        "bit_identical": True,
    }
    print(f"resume gate OK: child SIGKILLed with {journaled}/{RESUME_POINTS} "
          f"points journaled; resume re-simulated exactly "
          f"{len(simulated)} and matched the uninterrupted run bit-for-bit")
    return 0


def main() -> int:
    out_path = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                            else "faults-smoke.json")
    artifact: dict = {}
    with tempfile.TemporaryDirectory(prefix="repro-faults-smoke-") as tmp:
        tmp = pathlib.Path(tmp)
        os.environ["REPRO_TRACE_DIR"] = str(tmp / "traces")
        status = run_campaign_gate(artifact)
        if status:
            return status
        status = run_resume_gate(tmp, artifact)
        if status:
            return status
    out_path.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"faults smoke OK: {INJECTIONS} injections clean, SIGKILL resume "
          f"exact; artifact at {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
