#!/usr/bin/env python
"""CI smoke test for the sweep engine + result cache.

Runs a tiny 2-job sweep twice against a throwaway cache directory and
asserts that

* the cold run computes every point (all misses),
* the warm run is served entirely from cache (hit count == point count),
* both runs and a serial no-cache run produce bit-identical speedups.

Exits non-zero (with a diagnostic) on any violation; prints the hit
count on success so CI logs show the cache actually engaged.
"""

import pathlib
import sys
import tempfile

try:
    import repro  # noqa: F401  (installed package)
except ImportError:  # fall back to a source checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.harness.cache import ResultCache
from repro.harness.runner import Scale, sweep_speedups
from repro.workloads.profiles import BENCHMARKS


def main() -> int:
    profiles = [BENCHMARKS["gsm"], BENCHMARKS["adpcm"]]
    scale = Scale(insts=1_500, sizes=(48, 96), seeds=(1,))
    n_points = len(profiles) * len(scale.sizes) * len(scale.seeds) * 2

    def rows(result):
        return [(row.benchmark, row.speedups) for row in result]

    serial = rows(sweep_speedups(profiles, scale, jobs=1))

    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as tmp:
        cold_cache = ResultCache(tmp)
        cold = rows(sweep_speedups(profiles, scale, jobs=2, cache=cold_cache))
        if cold_cache.hits != 0 or cold_cache.misses != n_points:
            print(f"FAIL: cold run expected 0 hits / {n_points} misses, "
                  f"got {cold_cache.hits} / {cold_cache.misses}")
            return 1

        warm_cache = ResultCache(tmp)
        warm = rows(sweep_speedups(profiles, scale, jobs=2, cache=warm_cache))
        if warm_cache.hits != n_points or warm_cache.misses != 0:
            print(f"FAIL: warm run expected {n_points} hits / 0 misses, "
                  f"got {warm_cache.hits} / {warm_cache.misses}")
            return 1

        if not (serial == cold == warm):
            print("FAIL: serial / parallel-cold / cached-warm results diverge")
            print("  serial:", serial)
            print("  cold:  ", cold)
            print("  warm:  ", warm)
            return 1

    print(f"cache smoke OK: {n_points} points, warm run served "
          f"{warm_cache.hits}/{n_points} from cache, results bit-identical "
          f"across serial, 2-job cold and cached warm executions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
