#!/usr/bin/env python
"""CI smoke test for the code-generated cycle kernels.

For every rename scheme the generator supports, runs the same workload
through the generated kernel and the interpreted event loop and asserts

* the kernel actually engaged (``loop_used == "generated"`` — a silent
  fallback to the event loop would make the bit-identity check
  vacuous),
* bit-identity: SimStats, renamer stats, architectural state and the
  committed-instruction stream are identical across both loops,
* the kernel pays for itself: the sharing scheme's generated kernel
  must run at least ``SPEEDUP_FLOOR``x faster than the event loop,
  measured in-process in the same run (so machine speed cancels out).

Writes a JSON artifact (per-scheme throughput, speedups, kernel
fingerprints) for CI upload; exits non-zero with a diagnostic on
violation.
"""

import dataclasses
import json
import os
import pathlib
import sys
import tempfile
import time

try:
    import repro  # noqa: F401  (installed package)
except ImportError:  # fall back to a source checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

SCHEMES = ("conventional", "sharing", "early", "hinted")
INSTS = 16_000
SEED = 1
PROFILE = "mcf"  # pointer-chasing profile with the widest kernel/event gap
REPS = 3
SPEEDUP_FLOOR = 2.0  # sharing kernel vs event loop, same process


def _stream():
    from repro.workloads import BENCHMARKS
    from repro.workloads.generator import SyntheticWorkload

    return iter(list(SyntheticWorkload(BENCHMARKS[PROFILE],
                                       total_insts=INSTS, seed=SEED)))


def _run(config, kernel, collect_commits=True):
    from repro.pipeline.processor import IterSource, Processor

    commits = []
    hook = ((lambda _p, d: commits.append((d.seq, d.pc, d.op, d.result)))
            if collect_commits else None)
    proc = Processor(config, IterSource(_stream()), kernel=kernel,
                     on_commit=hook)
    start = time.perf_counter()
    proc.run()
    wall = time.perf_counter() - start
    return proc, commits, wall


def _snapshot(proc):
    return {
        "stats": dataclasses.asdict(proc.stats),
        "renamer": dataclasses.asdict(proc.renamer.stats),
        "arch": proc.architectural_state(),
        "cycles": proc.stats.cycles,
    }


def main() -> int:
    out_path = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                            else "kernel-smoke.json")

    with tempfile.TemporaryDirectory(prefix="repro-kernel-smoke-") as tmp:
        os.environ["REPRO_KERNEL_DIR"] = str(pathlib.Path(tmp) / "kernels")
        os.environ.pop("REPRO_NO_KERNEL", None)
        from repro.codegen import kernel_fingerprint
        from repro.pipeline.config import MachineConfig

        report = {"insts": INSTS, "profile": PROFILE, "seed": SEED,
                  "speedup_floor": SPEEDUP_FLOOR, "schemes": {}}

        for scheme in SCHEMES:
            config = MachineConfig(scheme=scheme, verify_values=False)

            gen_proc, gen_commits, _ = _run(config, kernel=True)
            if gen_proc.loop_used != "generated":
                print(f"FAIL: {scheme}: kernel did not engage "
                      f"(loop_used={gen_proc.loop_used!r})")
                return 1
            ev_proc, ev_commits, _ = _run(config, kernel=False)
            assert ev_proc.loop_used == "event"

            gen_snap, ev_snap = _snapshot(gen_proc), _snapshot(ev_proc)
            if gen_snap != ev_snap:
                diverged = [k for k in gen_snap if gen_snap[k] != ev_snap[k]]
                print(f"FAIL: {scheme}: generated kernel diverged from the "
                      f"event loop in {diverged}")
                return 1
            if gen_commits != ev_commits:
                print(f"FAIL: {scheme}: commit streams diverged "
                      f"({len(gen_commits)} vs {len(ev_commits)} commits)")
                return 1

            # timing pass: no hooks, so the kernel takes its fast-commit
            # path (the configuration `Processor.run` uses by default)
            gen_best = ev_best = float("inf")
            for _ in range(REPS):
                _, _, wall = _run(config, kernel=True, collect_commits=False)
                gen_best = min(gen_best, wall)
                _, _, wall = _run(config, kernel=False, collect_commits=False)
                ev_best = min(ev_best, wall)
            speedup = ev_best / gen_best

            report["schemes"][scheme] = {
                "identical": True,
                "commits": len(gen_commits),
                "cycles": gen_snap["cycles"],
                "cycles_skipped": gen_proc.cycles_skipped,
                "kernel": kernel_fingerprint(config),
                "generated_insts_per_sec": round(INSTS / gen_best, 1),
                "event_insts_per_sec": round(INSTS / ev_best, 1),
                "speedup": round(speedup, 2),
            }
            print(f"ok: {scheme:12s} identical over {len(gen_commits)} "
                  f"commits / {gen_snap['cycles']} cycles, "
                  f"kernel {speedup:.2f}x event loop")

        sharing = report["schemes"]["sharing"]["speedup"]
        if sharing < SPEEDUP_FLOOR:
            print(f"FAIL: sharing kernel speedup {sharing:.2f}x is below "
                  f"the floor {SPEEDUP_FLOOR:.1f}x: the generated kernel "
                  f"no longer pays for itself")
            return 1
        print(f"ok: sharing kernel speedup {sharing:.2f}x >= "
              f"floor {SPEEDUP_FLOOR:.1f}x")

    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
