#!/usr/bin/env python
"""CI smoke test for the distributed sweep fleet.

Stands up a real localhost fleet — one TCP coordinator, three forked
worker processes — and attacks it while it works:

* one worker is SIGKILLed mid-sweep (its leases must expire and requeue);
* one worker truncates its first result upload (the digest gate must
  reject it and the re-upload must land clean);

then asserts the contract that makes the fleet trustworthy: the
surviving results are **bit-identical** to an in-process ``jobs=1``
serial reference — byte equality of the stats dicts, not approximation —
and the coordinator's event counters prove both faults actually fired
where the harness aimed them.

Writes a JSON artifact (reference IPCs, coordinator counters, per-worker
summaries, timings) to the path given as argv[1], if any.  Exits
non-zero with a diagnostic on any violation.
"""

import json
import os
import pathlib
import signal
import sys
import tempfile
import threading
import time

try:
    import repro  # noqa: F401  (installed package)
except ImportError:  # fall back to a source checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.fleet import ContentStore, FleetConfig, FleetCoordinator
from repro.fleet.worker import WorkerChaos, WorkerConfig, worker_main
from repro.harness.parallel import SweepPoint, run_points
from repro.workloads.profiles import BENCHMARKS

WORKERS = 3
KILLED_SLOT = 0
TRUNCATING_SLOT = 1


def _grid() -> list[SweepPoint]:
    points = []
    for name in ("gsm", "hmmer"):
        for scheme in ("sharing", "conventional"):
            for size in (48, 64):
                points.append(SweepPoint(BENCHMARKS[name], scheme, size,
                                         2_500, 1))
    return points


def fail(message: str) -> None:
    print(f"FLEET SMOKE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    import multiprocessing
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()

    artifact_path = sys.argv[1] if len(sys.argv) > 1 else None
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="fleet-smoke-"))
    os.environ["REPRO_CACHE_DIR"] = str(tmp / "coordinator-cache")
    os.environ["REPRO_TRACE_DIR"] = str(tmp / "coordinator-trace")

    points = _grid()
    t0 = time.perf_counter()
    reference = run_points(points, jobs=1)
    if any(not r.ok for r in reference):
        fail("serial reference failed — fix the simulator, not the fleet")
    ref_dicts = [r.stats.to_dict() for r in reference]
    t_serial = time.perf_counter() - t0

    results: dict[int, object] = {}
    lock = threading.Lock()

    def finish(index: int, result) -> None:
        with lock:
            results[index] = result

    config = FleetConfig(host="127.0.0.1", port=0,
                         lease_deadline=2.0,
                         # the faults must land on remote executions:
                         # don't let the coordinator race its own fleet
                         local_fallback_after=20.0,
                         socket_timeout=30.0)
    coordinator = FleetCoordinator(points, list(range(len(points))), finish,
                                   config, retries=4, store=ContentStore())
    host, port = coordinator.start()
    print(f"coordinator at {host}:{port}, {len(points)} points, "
          f"{WORKERS} workers (kill w{KILLED_SLOT}, "
          f"truncate w{TRUNCATING_SLOT})")

    processes = {}
    for slot in range(WORKERS):
        chaos = WorkerChaos(truncate_uploads=1) \
            if slot == TRUNCATING_SLOT else None
        wcfg = WorkerConfig(
            host=host, port=port, name=f"smoke-w{slot}",
            heartbeat_interval=0.25, reconnect_attempts=20,
            reconnect_delay=0.2, socket_timeout=30.0, seed=slot,
            events_path=str(tmp / f"worker{slot}.json"),
            trace_dir=str(tmp / f"trace{slot}"),
            cache_dir=str(tmp / f"cache{slot}"),
            close_fds=(coordinator.listener_fd,))
        process = ctx.Process(target=worker_main, args=(wcfg, chaos),
                              daemon=True)
        process.start()
        processes[slot] = process

    # kill deterministically: wait until the victim actually holds a
    # lease, so the SIGKILL is guaranteed to land mid-point
    kill_done = threading.Event()

    def kill_when_leased() -> None:
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            with coordinator._lock:
                holding = any(lease.worker == f"smoke-w{KILLED_SLOT}"
                              for lease in coordinator._leases.values())
            if holding:
                os.kill(processes[KILLED_SLOT].pid, signal.SIGKILL)
                kill_done.set()
                return
            time.sleep(0.005)

    killer = threading.Thread(target=kill_when_leased, daemon=True)
    killer.start()

    t1 = time.perf_counter()
    completed = coordinator.run()
    coordinator.drain()
    coordinator.stop()
    t_fleet = time.perf_counter() - t1
    for process in processes.values():
        process.join(timeout=8)
        if process.is_alive():  # pragma: no cover - cleanup only
            process.kill()

    if not completed:
        fail("coordinator did not resolve every point")
    counters = coordinator.events.snapshot()["counters"]

    # ---------------------------------------------------------- bit identity
    for i, point in enumerate(points):
        result = results.get(i)
        if result is None or not result.ok:
            detail = result.error if result is not None else "missing"
            fail(f"{point.label()}: no clean result ({detail})")
        if result.stats.to_dict() != ref_dicts[i]:
            fail(f"{point.label()}: fleet result DIVERGES from the "
                 f"serial reference — silent corruption")
    print(f"bit-identical: all {len(points)} points match the serial "
          f"reference (serial {t_serial:.1f}s, fleet {t_fleet:.1f}s)")

    # ------------------------------------------------------- faults landed
    summaries = {}
    for slot in range(WORKERS):
        path = tmp / f"worker{slot}.json"
        if path.exists():
            summaries[slot] = json.loads(path.read_text())
    if not kill_done.is_set():
        fail(f"worker {KILLED_SLOT} never held a lease to be killed over")
    if KILLED_SLOT in summaries and summaries[KILLED_SLOT].get("finished"):
        fail(f"worker {KILLED_SLOT} survived its SIGKILL")
    if counters.get("leases_expired", 0) < 1:
        fail("SIGKILL cost no lease: the kill landed on nothing")
    truncated = sum(1 for e in summaries.get(TRUNCATING_SLOT, {})
                    .get("chaos", []) if e["event"] == "chaos_truncate_upload")
    if truncated != 1:
        fail(f"truncating worker mangled {truncated} uploads, wanted 1")
    if counters.get("uploads_rejected", 0) < 1:
        fail("truncated upload was not rejected — the digest gate "
             "did not fire")
    print(f"faults landed: leases_expired={counters.get('leases_expired', 0)} "
          f"uploads_rejected={counters.get('uploads_rejected', 0)} "
          f"requeues={counters.get('requeues', 0)}")

    if artifact_path:
        artifact = {
            "points": len(points),
            "workers": WORKERS,
            "killed_worker": KILLED_SLOT,
            "truncating_worker": TRUNCATING_SLOT,
            "serial_seconds": round(t_serial, 3),
            "fleet_seconds": round(t_fleet, 3),
            "reference_ipc": {points[i].label(): round(reference[i].stats.ipc, 6)
                              for i in range(len(points))},
            "coordinator_counters": counters,
            "worker_summaries": {str(k): v for k, v in summaries.items()},
            "bit_identical": True,
        }
        pathlib.Path(artifact_path).write_text(
            json.dumps(artifact, indent=2) + "\n")
        print(f"artifact written to {artifact_path}")

    print("FLEET SMOKE PASSED")


if __name__ == "__main__":
    main()
