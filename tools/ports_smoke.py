#!/usr/bin/env python
"""CI smoke test for the read-port-reduction schemes.

For both port schemes (``bypass_filter``, ``banked_arbiter``) on two
benchmark profiles, runs the same workload through the generated kernel,
the event loop and the naive loop and asserts

* three-way bit-identity: SimStats, renamer stats, architectural state
  and the committed-instruction stream agree across all loops (and the
  kernel actually engaged — ``loop_used == "generated"``),
* the commit-time oracle accepts a verified run of the same point
  (``simulate(..., oracle=True)`` matches the unverified stats),
* the scheme is actually exercising its machinery: the port counters
  (``rf_port_reads`` plus ``rf_bypass_reads`` or ``rf_delay_cycles``)
  are non-zero.

Writes a JSON artifact for CI upload; exits non-zero with a diagnostic
on violation.
"""

import dataclasses
import json
import os
import pathlib
import sys
import tempfile

try:
    import repro  # noqa: F401  (installed package)
except ImportError:  # fall back to a source checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

PORT_SCHEMES = ("bypass_filter", "banked_arbiter")
PROFILES = ("hmmer", "milc")  # one integer-heavy, one fp-heavy
INSTS = 8_000
SEED = 1
SIZE = 64


def _stream(profile_name):
    from repro.workloads import BENCHMARKS
    from repro.workloads.generator import SyntheticWorkload

    return iter(list(SyntheticWorkload(BENCHMARKS[profile_name],
                                       total_insts=INSTS, seed=SEED)))


def _run(config, profile_name, loop):
    from repro.pipeline.processor import IterSource, Processor

    commits = []
    proc = Processor(config, IterSource(_stream(profile_name)),
                     naive_loop=(loop == "naive"),
                     kernel=(loop == "generated"),
                     on_commit=lambda _p, d: commits.append(
                         (d.seq, d.pc, d.op, d.result)))
    proc.run()
    return proc, commits


def _snapshot(proc):
    return {
        "stats": dataclasses.asdict(proc.stats),
        "renamer": dataclasses.asdict(proc.renamer.stats),
        "arch": proc.architectural_state(),
    }


def main() -> int:
    out_path = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                            else "ports-smoke.json")

    with tempfile.TemporaryDirectory(prefix="repro-ports-smoke-") as tmp:
        os.environ["REPRO_KERNEL_DIR"] = str(pathlib.Path(tmp) / "kernels")
        os.environ.pop("REPRO_NO_KERNEL", None)
        from repro.harness.runner import make_config
        from repro.pipeline.processor import simulate
        from repro.workloads import BENCHMARKS
        from repro.workloads.generator import shared_workload

        report = {"insts": INSTS, "seed": SEED, "size": SIZE, "points": {}}

        for port_scheme in PORT_SCHEMES:
            for profile_name in PROFILES:
                label = f"{profile_name}/{port_scheme}"
                profile = BENCHMARKS[profile_name]
                config = make_config(profile, "conventional", SIZE,
                                     port_scheme=port_scheme)

                gen_proc, gen_commits = _run(config, profile_name,
                                             "generated")
                if gen_proc.loop_used != "generated":
                    print(f"FAIL: {label}: kernel did not engage "
                          f"(loop_used={gen_proc.loop_used!r})")
                    return 1
                ev_proc, ev_commits = _run(config, profile_name, "event")
                nv_proc, nv_commits = _run(config, profile_name, "naive")

                gen_snap = _snapshot(gen_proc)
                for other_name, other_proc, other_commits in (
                        ("event", ev_proc, ev_commits),
                        ("naive", nv_proc, nv_commits)):
                    other_snap = _snapshot(other_proc)
                    if gen_snap != other_snap:
                        diverged = [k for k in gen_snap
                                    if gen_snap[k] != other_snap[k]]
                        print(f"FAIL: {label}: generated kernel diverged "
                              f"from the {other_name} loop in {diverged}")
                        return 1
                    if gen_commits != other_commits:
                        print(f"FAIL: {label}: commit stream diverged from "
                              f"the {other_name} loop")
                        return 1

                # commit-time oracle on the identical point
                workload = shared_workload(profile, INSTS, SEED)
                oracle_stats = simulate(config, iter(workload), oracle=True)
                if oracle_stats.to_dict() != dataclasses.asdict(
                        gen_proc.stats):
                    print(f"FAIL: {label}: oracle-checked run disagrees "
                          f"with the kernel run")
                    return 1

                stats = gen_proc.stats
                exercised = stats.rf_port_reads > 0 and (
                    stats.rf_bypass_reads > 0
                    if port_scheme == "bypass_filter"
                    else stats.rf_delay_cycles > 0
                    or stats.rf_port_stalls > 0)
                if not exercised:
                    print(f"FAIL: {label}: port counters are zero — the "
                          f"scheme never engaged "
                          f"(reads={stats.rf_port_reads}, "
                          f"bypass={stats.rf_bypass_reads}, "
                          f"delay={stats.rf_delay_cycles})")
                    return 1

                report["points"][label] = {
                    "identical": True,
                    "oracle_verified": True,
                    "commits": len(gen_commits),
                    "cycles": stats.cycles,
                    "ipc": round(stats.ipc, 4),
                    "int_regs": config.int_regs,
                    "fp_regs": config.fp_regs,
                    "rf_port_stalls": stats.rf_port_stalls,
                    "rf_port_reads": stats.rf_port_reads,
                    "rf_bypass_reads": stats.rf_bypass_reads,
                    "rf_delayed_reads": stats.rf_delayed_reads,
                    "rf_delay_cycles": stats.rf_delay_cycles,
                }
                print(f"ok: {label:24s} three-way identical + oracle over "
                      f"{len(gen_commits)} commits / {stats.cycles} cycles "
                      f"(stalls={stats.rf_port_stalls}, "
                      f"reads={stats.rf_port_reads})")

    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
