"""Ablation: hardware predictors vs static compiler hints (Section VII).

The paper dismisses compiler-directed approaches (Jones et al.) because
they need ISA changes and compiler support.  This ablation runs the
sharing scheme with (a) the paper's learned predictors and (b) static
plan-level single-use hints embedded in the trace, and shows the learned
design achieves at least comparable reuse and performance — i.e. the
hardware-only scheme does not sacrifice anything for its ISA neutrality.
"""

from conftest import run_once

from repro.harness.runner import geomean
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import simulate
from repro.workloads import BENCHMARKS, SyntheticWorkload

NAMES = ("bwaves", "lbm", "gcc", "mcf")


def run(scheme, name, scale):
    workload = SyntheticWorkload(BENCHMARKS[name], total_insts=scale.insts)
    config = MachineConfig(scheme=scheme, int_regs=64, fp_regs=64,
                           verify_values=False)
    return simulate(config, iter(workload))


def test_predictors_vs_compiler_hints(benchmark, scale):
    def sweep():
        results = {}
        for name in NAMES:
            results[name] = {
                scheme: run(scheme, name, scale)
                for scheme in ("sharing", "hinted")
            }
        return results

    results = run_once(benchmark, sweep)
    print()
    ipc_ratios, reuse_deltas = [], []
    for name, stats in results.items():
        predicted = stats["sharing"]
        hinted = stats["hinted"]
        ipc_ratios.append(predicted.ipc / hinted.ipc)
        reuse_deltas.append(predicted.renamer_stats.reuse_fraction
                            - hinted.renamer_stats.reuse_fraction)
        print(f"  {name:8s} predicted: reuse "
              f"{predicted.renamer_stats.reuse_fraction:.2f} IPC {predicted.ipc:.3f}"
              f"   hinted: reuse {hinted.renamer_stats.reuse_fraction:.2f} "
              f"IPC {hinted.ipc:.3f}")

    # the learned predictors are at least competitive with static hints
    assert geomean(ipc_ratios) >= 0.98
    assert sum(reuse_deltas) / len(reuse_deltas) >= -0.03

    # hints are conservative: they avoid repairs entirely, while the
    # learned design pays a small repair tax for its extra reuses
    for name, stats in results.items():
        assert stats["hinted"].renamer_stats.repairs == 0
