"""Figure 11: average IPC vs number of registers, baseline vs proposed.

Paper's shape: both curves rise with the register count and saturate; the
proposed curve sits on or above the baseline and reaches the baseline's
IPC with fewer registers (the paper quotes a 56-register proposed file
matching a 64-register baseline).
"""

from conftest import run_once

from repro.harness.figures import figure11


def test_figure11(benchmark, scale, engine):
    result = run_once(benchmark, lambda: figure11(scale, **engine))
    print("\n" + result.render())

    sizes = sorted(result.sizes)

    # IPC grows (weakly) with register count for both schemes
    base_curve = [result.baseline_ipc[s] for s in sizes]
    prop_curve = [result.proposed_ipc[s] for s in sizes]
    assert base_curve[-1] > base_curve[0]
    assert prop_curve[-1] > prop_curve[0]

    # the proposed scheme never trails the baseline by more than noise
    for s in sizes:
        assert result.proposed_ipc[s] >= result.baseline_ipc[s] * 0.97

    # under pressure the proposed curve is strictly better
    assert result.proposed_ipc[sizes[0]] >= result.baseline_ipc[sizes[0]]

    # iso-IPC register saving exists (paper: 10.5%)
    assert result.iso_ipc_saving() >= 0.0
