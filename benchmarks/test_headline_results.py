"""Headline results: ~6% average SPEC speedup at equal area, and the same
performance from a smaller register file (paper: 10.5% area saving)."""

from conftest import run_once

from repro.harness.headline import headline


def test_headline(benchmark, scale, engine):
    result = run_once(benchmark, lambda: headline(scale, **engine))
    print("\n" + result.render())

    # positive average speedup over the pressured register-file range
    assert result.average_speedup > 1.0

    # the benefit is in single-digit percent territory, like the paper's 6%
    assert result.average_speedup < 1.35

    # matching baseline performance needs no more registers than the
    # baseline, usually fewer (paper: 10.5% fewer)
    assert result.iso_ipc_saving >= 0.0
    assert result.iso_ipc_saving < 0.5
