"""Table III: equal-area register-file configurations."""

from conftest import run_once

from repro.harness.tables import table3


def test_table3(benchmark):
    result = run_once(benchmark, table3)
    print("\n" + result.render())
    assert len(result.rows) == 7

    for baseline, paper_banks, paper_util, derived_banks, derived_util in result.rows:
        # the paper's rows are within budget (conservative under our model)
        assert paper_util <= 1.0
        # our derived configurations use the budget almost exactly
        assert 0.97 <= derived_util <= 1.0
        # both trade registers for shadow cells: fewer total registers
        assert sum(paper_banks) < baseline
        assert sum(derived_banks) < baseline
        # shadow banks exist in every configuration
        assert all(b > 0 for b in paper_banks[1:])
        assert all(b > 0 for b in derived_banks[1:])

    # shadow-bank sizes grow with the baseline then saturate (4 -> 6 -> 8)
    shadow_sizes = [row[3][1] for row in result.rows]
    assert shadow_sizes == sorted(shadow_sizes)
    assert shadow_sizes[0] == 4 and shadow_sizes[-1] == 8
