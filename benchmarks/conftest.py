"""Shared configuration for the reproduction benches.

Each bench regenerates one of the paper's tables or figures and asserts
the reproduced *shape* (who wins, orderings, trends) rather than absolute
numbers — the substrate is a simulator with synthetic workloads, not the
authors' gem5 + SPEC testbed (see EXPERIMENTS.md).

Scale: benches default to a trimmed quick scale so the whole suite runs
in minutes; set REPRO_SCALE=full for the full benchmark lists.

Execution: the simulation-heavy benches enumerate their sweep grids
declaratively and run them through the sweep engine — set REPRO_JOBS=N
to fan points out over N worker processes and REPRO_CACHE=1 to serve
repeated runs from the persistent result cache (REPRO_CACHE_DIR).
"""

import os

import pytest

from repro.harness.runner import Scale


@pytest.fixture(scope="session")
def scale() -> Scale:
    if os.environ.get("REPRO_SCALE") == "full":
        return Scale.full()
    return Scale(insts=6_000, benchmarks_per_suite=4, sizes=(48, 64, 96))


@pytest.fixture(scope="session")
def engine() -> dict:
    """Sweep-engine kwargs (jobs, cache) resolved from the environment."""
    from repro.harness.cache import ResultCache
    from repro.harness.parallel import resolve_jobs

    cache = ResultCache() if os.environ.get("REPRO_CACHE") == "1" else None
    return {"jobs": resolve_jobs(None), "cache": cache}


@pytest.fixture(scope="session")
def results_cache() -> dict:
    """Session-wide memo so related benches don't re-simulate."""
    return {}


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
