"""Figure 12: register-type predictor accuracy breakdown.

Paper's numbers for SPECfp: 3.1% of instructions reuse a register
incorrectly (needing value recovery) and 2.28% miss a reuse opportunity;
the overwhelming majority of predictions are correct.
"""

from conftest import run_once

from repro.harness.figures import figure12


def test_figure12(benchmark, scale, engine):
    result = run_once(benchmark, lambda: figure12(scale, **engine))
    print("\n" + result.render())

    for suite in ("specint", "specfp"):
        breakdown = result.breakdown[suite]
        assert abs(sum(breakdown.values()) - 1.0) < 1e-6

        # incorrect reuses (the expensive class: repairs) stay rare
        assert breakdown["reuse incorrect"] < 0.08, suite
        # correct predictions dominate
        assert result.accuracy(suite) > 0.55, suite
        # correct reuses form a substantial share — the scheme's benefit
        assert breakdown["reuse correct"] > 0.10, suite

    # fp reuses more than int (more single-use values)
    assert result.breakdown["specfp"]["reuse correct"] > \
        result.breakdown["specint"]["reuse correct"]
