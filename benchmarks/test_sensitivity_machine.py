"""Sensitivity studies: does the scheme's benefit survive machine changes?

The paper evaluates one 3-wide core (Table I).  A natural reviewer
question is whether the equal-area win is an artefact of that design
point, so we sweep (a) the pipeline width and (b) the branch predictor,
and check that the sharing scheme never loses and keeps helping where the
register file is the bottleneck.
"""

import dataclasses

from conftest import run_once

from repro.harness.runner import geomean
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import simulate
from repro.workloads import BENCHMARKS, SyntheticWorkload

NAMES = ("bwaves", "hmmer", "gmm")
SIZE = 56


def speedup(scale, name, **overrides):
    ipcs = {}
    for scheme in ("conventional", "sharing"):
        workload = SyntheticWorkload(BENCHMARKS[name], total_insts=scale.insts)
        config = MachineConfig(scheme=scheme, int_regs=128, fp_regs=SIZE,
                               verify_values=False, **overrides)
        ipcs[scheme] = simulate(config, iter(workload)).ipc
    return ipcs["sharing"] / ipcs["conventional"]


def test_width_sensitivity(benchmark, scale):
    def sweep():
        results = {}
        for width in (2, 3, 4):
            fu = {
                "alu": (width, 1, True), "mul": (1, 3, True),
                "div": (1, 12, False), "fpu": (max(1, width - 1), 4, True),
                "fpdiv": (1, 16, False), "branch": (1, 1, True),
                "mem": (2, 1, True),
            }
            speedups = [
                speedup(scale, name, fetch_width=width, rename_width=width,
                        issue_width=width + 1, commit_width=width,
                        fu_config=fu)
                for name in NAMES
            ]
            results[width] = geomean(speedups)
        return results

    results = run_once(benchmark, sweep)
    print()
    for width, value in results.items():
        print(f"  {width}-wide: speedup {100 * (value - 1):+5.1f}%")
    for width, value in results.items():
        assert value > 0.97, f"{width}-wide: sharing should not lose"
    # at least one width shows a clear benefit
    assert max(results.values()) > 1.005


def test_branch_predictor_sensitivity(benchmark, scale):
    def sweep():
        return {
            kind: geomean([speedup(scale, name, branch_predictor=kind)
                           for name in NAMES])
            for kind in ("bimodal", "gshare", "tournament")
        }

    results = run_once(benchmark, sweep)
    print()
    for kind, value in results.items():
        print(f"  {kind:10s}: speedup {100 * (value - 1):+5.1f}%")
    for kind, value in results.items():
        assert value > 0.97, f"{kind}: sharing should not lose"
