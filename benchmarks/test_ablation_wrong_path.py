"""Ablation: does the equal-area win survive real wrong-path modelling?

The base experiments use the standard stall-on-mispredict simplification
(DESIGN.md section 2).  With ``model_wrong_path=True`` mispredicted
branches keep fetching: wrong-path instructions consume rename bandwidth,
physical registers (including *reuses* of shared registers that the
walk-back must roll back through shadow cells) and cache bandwidth.  The
paper's benefit must not be an artefact of the simplification.
"""

from conftest import run_once

from repro.harness.runner import geomean
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import simulate
from repro.workloads import BENCHMARKS, SyntheticWorkload

NAMES = ("gobmk", "bwaves", "hmmer")
SIZE = 56


def speedup(name, scale, wrong_path):
    ipcs = {}
    stats = {}
    for scheme in ("conventional", "sharing"):
        workload = SyntheticWorkload(BENCHMARKS[name], total_insts=scale.insts)
        config = MachineConfig(scheme=scheme, int_regs=SIZE, fp_regs=SIZE,
                               model_wrong_path=wrong_path,
                               verify_values=False)
        stats[scheme] = simulate(config, iter(workload))
        ipcs[scheme] = stats[scheme].ipc
    return ipcs["sharing"] / ipcs["conventional"], stats["sharing"]


def test_wrong_path_ablation(benchmark, scale):
    def sweep():
        results = {}
        for wrong_path in (False, True):
            per_bench = {}
            for name in NAMES:
                per_bench[name] = speedup(name, scale, wrong_path)
            results[wrong_path] = per_bench
        return results

    results = run_once(benchmark, sweep)
    print()
    for wrong_path, per_bench in results.items():
        label = "wrong-path" if wrong_path else "stall     "
        speedups = [ratio for ratio, _stats in per_bench.values()]
        print(f"  {label}: " + "  ".join(
            f"{name}:{100 * (ratio - 1):+5.1f}%"
            for name, (ratio, _s) in per_bench.items()
        ) + f"   geomean {100 * (geomean(speedups) - 1):+5.1f}%")

    # speculation actually happened in the wrong-path runs
    for name, (_ratio, stats) in results[True].items():
        assert stats.wrong_path_squashed > 0, name

    # the benefit's direction survives wrong-path modelling
    stall_mean = geomean(r for r, _s in results[False].values())
    wrong_mean = geomean(r for r, _s in results[True].values())
    assert wrong_mean > 0.97
    assert abs(wrong_mean - stall_mean) < 0.15
