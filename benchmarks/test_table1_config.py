"""Table I: system configuration."""

from conftest import run_once

from repro.harness.tables import table1
from repro.mem.hierarchy import MemoryHierarchy
from repro.pipeline.config import MachineConfig, TABLE_I


def test_table1_renders(benchmark):
    text = run_once(benchmark, table1)
    print("\n" + text)
    assert "128 entries" in text  # ROB
    assert "40 entries" in text  # issue queue
    assert "DDR3 1600" in text


def test_table1_machine_matches(benchmark):
    """The default MachineConfig implements Table I."""

    def build():
        return MachineConfig(), MemoryHierarchy()

    config, hierarchy = run_once(benchmark, build)
    assert config.rob_size == 128
    assert config.iq_size == 40
    assert config.rename_width == 3
    assert config.fetch_queue == 32
    assert config.mispredict_penalty == 15
    assert config.btb_entries == 2048
    assert hierarchy.config.l1d_size == 32 * 1024 and hierarchy.config.l1d_assoc == 2
    assert hierarchy.config.l1i_size == 48 * 1024 and hierarchy.config.l1i_assoc == 3
    assert hierarchy.config.l2_size == 1024 * 1024 and hierarchy.config.l2_assoc == 16
    assert hierarchy.config.l1d_latency == 1 and hierarchy.config.l2_latency == 12
    assert hierarchy.tlb.entries == 48
    assert hierarchy.dram.timings.tcas_ns == 13.75
    assert TABLE_I["Prefetcher"]["Type"].startswith("Stride")
