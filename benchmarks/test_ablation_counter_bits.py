"""Ablation: PRT version-counter width (paper Section IV-A).

The paper generalises the 2-bit counter to N bits and argues 2 bits are
the sweet spot: chains longer than four instructions are unusual
(Figure 3), while wider counters cost PRT and issue-queue bits.  We sweep
1/2/3 bits at a fixed banked configuration and check the saturation.
"""

from conftest import run_once

from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import simulate
from repro.workloads import BENCHMARKS, SyntheticWorkload

BANKS = (33, 4, 4, 4)


def sweep(scale):
    results = {}
    for bits in (1, 2, 3):
        reuse, ipc = [], []
        for name in ("bwaves", "lbm", "hmmer"):
            profile = BENCHMARKS[name]
            workload = SyntheticWorkload(profile, total_insts=scale.insts)
            config = MachineConfig(
                scheme="sharing", int_banks=BANKS, fp_banks=BANKS,
                counter_bits=bits, verify_values=False,
            )
            stats = simulate(config, iter(workload))
            reuse.append(stats.renamer_stats.reuse_fraction)
            ipc.append(stats.ipc)
        results[bits] = (sum(reuse) / len(reuse), sum(ipc) / len(ipc))
    return results


def test_counter_bits_ablation(benchmark, scale):
    results = run_once(benchmark, lambda: sweep(scale))
    print()
    for bits, (reuse, ipc) in results.items():
        print(f"  {bits}-bit counter: reuse {100 * reuse:5.1f}%  IPC {ipc:.3f}")

    # more counter bits never reduce reuse opportunity
    assert results[2][0] >= results[1][0] - 0.01
    # but the 2 -> 3 bit step adds little: chains beyond four are unusual
    gain_1_to_2 = results[2][0] - results[1][0]
    gain_2_to_3 = results[3][0] - results[2][0]
    assert gain_2_to_3 <= max(gain_1_to_2, 0.02) + 0.01
