"""Sensitivity: window size (ROB) vs register-file pressure.

The paper fixes a 128-entry ROB.  Register-file pressure exists exactly
when the ROB can hold more in-flight destinations than the file can back;
this bench sweeps the ROB and checks the expected interaction: with a
tiny window the register file stops being the bottleneck and the sharing
scheme's benefit fades; with the paper's window it appears.
"""

from conftest import run_once

from repro.harness.runner import geomean
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import simulate
from repro.workloads import BENCHMARKS, SyntheticWorkload

NAMES = ("bwaves", "hmmer")
SIZE = 56


def speedup(name, rob, scale):
    ipcs = {}
    for scheme in ("conventional", "sharing"):
        workload = SyntheticWorkload(BENCHMARKS[name], total_insts=scale.insts)
        config = MachineConfig(scheme=scheme, int_regs=128, fp_regs=SIZE,
                               rob_size=rob, verify_values=False)
        ipcs[scheme] = simulate(config, iter(workload)).ipc
    return ipcs["sharing"] / ipcs["conventional"]


def test_rob_sensitivity(benchmark, scale):
    def sweep():
        return {rob: geomean([speedup(name, rob, scale) for name in NAMES])
                for rob in (16, 64, 128, 256)}

    results = run_once(benchmark, sweep)
    print()
    for rob, value in results.items():
        print(f"  ROB {rob:4d}: speedup {100 * (value - 1):+5.1f}%")

    # a 16-entry window cannot create register pressure at 56 registers:
    # the benefit there is ~zero
    assert abs(results[16] - 1.0) < 0.02
    # the paper's window (or larger) shows the benefit
    assert max(results[128], results[256]) >= results[16] - 0.005
    # never a material loss anywhere
    assert all(v > 0.97 for v in results.values())
