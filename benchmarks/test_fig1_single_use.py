"""Figure 1: single-consumer instruction fractions.

Paper's claims: more than 50% of SPECfp instructions and more than 30% of
SPECint instructions with a destination register are the only consumer of
some value; a large share of those redefine the consumed register.
"""

from conftest import run_once

from repro.harness.figures import figure1


def test_figure1(benchmark, scale):
    result = run_once(benchmark, lambda: figure1(scale))
    print("\n" + result.render())

    fp = result.suite_average("specfp")
    si = result.suite_average("specint")
    mc = result.suite_average("media+cog")

    assert fp > 0.45, "SPECfp single-consumer fraction should exceed ~50%"
    assert si > 0.30, "SPECint single-consumer fraction should exceed 30%"
    assert fp > si, "fp exceeds int (the paper's headline ordering)"
    assert mc > si, "media/cognitive behave like fp-heavy codes"

    # redefine-same dominates redefine-other in every suite (chains are
    # the common case, enabling the guaranteed-reuse path)
    for suite, rows in result.series.items():
        same = sum(r[1] for r in rows)
        other = sum(r[2] for r in rows)
        assert same > other, f"{suite}: chains should dominate"
