"""Figure 10: equal-area speedups across register-file sizes.

Paper's shape: the proposed scheme wins at small register files (12.2% fp
/ up to 47% int at RF 48 on their substrate) and the benefit decays to
under 1% as the file grows, because the register file stops being the
bottleneck.  We assert the decay shape and the no-regression property at
large files; absolute gains on our substrate are smaller (see
EXPERIMENTS.md).
"""

import pytest
from conftest import run_once

from repro.harness.figures import figure10
from repro.harness.runner import geomean


@pytest.mark.parametrize("suite", ["specfp", "specint", "media+cog"])
def test_figure10(benchmark, scale, suite, results_cache, engine):
    result = run_once(benchmark, lambda: figure10(suite, scale, **engine))
    results_cache[("fig10", suite)] = result
    print("\n" + result.render())

    sizes = sorted(result.sizes)
    small, large = sizes[0], sizes[-1]

    # gains exist under pressure and shrink for large files (they do not
    # fully vanish for high-MLP streaming benchmarks: with a 128-entry ROB
    # even a 96-register file still bounds the in-flight window)
    small_avg = geomean([result.average(s) for s in sizes[:2]])
    assert small_avg > 1.0, f"{suite}: no benefit at small register files"
    assert 0.92 < result.average(large) < 1.10, \
        f"{suite}: large files should be mostly insensitive"

    # decay shape: pressured sizes beat the largest size
    assert small_avg >= result.average(large) - 0.01

    # the scheme never loses badly anywhere (equal-area comparison)
    for row in result.rows:
        for size, speedup in row.speedups.items():
            assert speedup > 0.90, f"{row.benchmark}@RF{size}: {speedup:.3f}"
