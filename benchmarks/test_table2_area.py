"""Table II: area of the register files and the scheme's overheads."""

import pytest
from conftest import run_once

from repro.harness.tables import table2_result


def test_table2(benchmark):
    result = run_once(benchmark, table2_result)
    print("\n" + result.render())
    rows = result.rows

    # paper's absolute numbers (the model is calibrated against them)
    assert rows["Integer Register File (64-bit registers)"][1] == \
        pytest.approx(0.2834, rel=0.01)
    assert rows["Floating-point Register File (128-bit registers)"][1] == \
        pytest.approx(0.4988, rel=0.01)
    assert rows["PRT"][1] == pytest.approx(5.08e-4, rel=0.02)
    assert rows["Issue Queue"][1] == pytest.approx(1.48e-3, rel=0.02)
    assert rows["Register Predictor"][1] == pytest.approx(3.1e-3, rel=0.02)
    assert result.total_overhead() == pytest.approx(5.085e-3, rel=0.02)

    # the paper's qualitative point: overheads are small vs the RF
    assert result.total_overhead() < 0.02 * rows[
        "Integer Register File (64-bit registers)"][1] * 10
