"""Ablation: hybrid 4-bank register file vs uniform shadow provisioning.

Paper Section IV-C: giving *every* register three shadow cells is not
cost-effective — at equal area the uniform design affords fewer registers
than the hybrid design that concentrates shadows where Figure 9 says they
are needed.  We compare three equal-area organisations.
"""

from conftest import run_once

from repro.area.equal_area import baseline_area, proposed_area
from repro.pipeline.config import MachineConfig
from repro.pipeline.processor import simulate
from repro.workloads import BENCHMARKS, SyntheticWorkload


def uniform_3shadow_banks(baseline_regs: int) -> tuple[int, int, int, int]:
    """Largest all-3-shadow configuration fitting the baseline's area."""
    budget = baseline_area(baseline_regs)
    n = 36
    while proposed_area((0, 0, 0, n + 1)) <= budget:
        n += 1
    return (0, 0, 0, n)


def run(banks, scale, names=("bwaves", "hmmer", "libquantum")):
    ipcs = []
    for name in names:
        workload = SyntheticWorkload(BENCHMARKS[name], total_insts=scale.insts)
        config = MachineConfig(scheme="sharing", int_banks=banks,
                               fp_banks=banks, verify_values=False)
        ipcs.append(simulate(config, iter(workload)).ipc)
    return sum(ipcs) / len(ipcs)


def test_bank_organisation_ablation(benchmark, scale):
    baseline_regs = 64
    from repro.area.equal_area import equal_area_banks

    hybrid = equal_area_banks(baseline_regs)
    uniform = uniform_3shadow_banks(baseline_regs)
    no_shadow = (baseline_regs, 0, 0, 0)

    def sweep():
        return {
            "hybrid": run(hybrid, scale),
            "uniform": run(uniform, scale),
            "no_shadow": run(no_shadow, scale),
        }

    results = run_once(benchmark, sweep)
    print(f"\n  hybrid {hybrid}: IPC {results['hybrid']:.3f}")
    print(f"  uniform 3-shadow {uniform}: IPC {results['uniform']:.3f}")
    print(f"  no shadows {no_shadow}: IPC {results['no_shadow']:.3f}")

    # uniform provisioning buys fewer registers at equal area
    assert sum(uniform) < sum(hybrid)
    # Under our calibrated shadow-cell cost (~10% of a multi-ported
    # register), uniform provisioning is competitive with the hybrid —
    # the paper's preference for the hybrid follows from a pricier shadow
    # cell.  We assert the two designs are within noise of each other and
    # record the sensitivity in EXPERIMENTS.md.
    assert results["hybrid"] >= results["uniform"] * 0.95
    # shadow cells are what enables reuse: removing them forfeits the win
    assert results["hybrid"] >= results["no_shadow"] * 0.97
    assert results["uniform"] > results["no_shadow"]
